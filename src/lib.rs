//! # pnsym — symbolic analysis of Petri nets with dense SMC-based encodings
//!
//! `pnsym` is a reproduction of Pastor & Cortadella, *Efficient Encoding
//! Schemes for Symbolic Analysis of Petri Nets* (DATE 1998): BDD-based
//! reachability analysis of safe Petri nets whose state encoding is derived
//! from the net's State Machine Components, halving the variable count and
//! shrinking the BDDs compared to the conventional one-variable-per-place
//! scheme.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`net`] — Petri-net model, explicit reachability, benchmark generators
//!   ([`pnsym_net`]);
//! * [`structural`] — P-invariants, SMC extraction, unate covering
//!   ([`pnsym_structural`]);
//! * [`bdd`] — the BDD/ZDD package ([`pnsym_bdd`]);
//! * the paper's encoding schemes and symbolic engines at the crate root
//!   ([`pnsym_core`]).
//!
//! ## Quick start
//!
//! ```
//! use pnsym::net::nets::philosophers;
//! use pnsym::{analyze, AnalysisOptions};
//!
//! # fn main() -> Result<(), pnsym::AnalysisError> {
//! let net = philosophers(2);                       // the paper's Figure 4
//! let sparse = analyze(&net, &AnalysisOptions::sparse())?;
//! let dense = analyze(&net, &AnalysisOptions::dense())?;
//! assert_eq!(sparse.num_markings, 22.0);
//! assert_eq!(sparse.num_variables, 14);            // one variable per place
//! assert_eq!(dense.num_variables, 8);              // Table 1 of the paper
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for runnable walkthroughs and the
//! `pnsym-bench` crate for the harness that regenerates the paper's tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The decision-diagram substrate (BDDs and ZDDs).
pub use pnsym_bdd as bdd;
/// The Petri-net model, explicit reachability and benchmark generators.
pub use pnsym_net as net;
/// Structural theory: P-invariants, SMCs and covering.
pub use pnsym_structural as structural;

/// The `pnsymd` daemon: line-JSON protocol, warm-context pool, scheduler.
pub use pnsym_core::server;
pub use pnsym_core::{
    analyze, analyze_zdd, analyze_zdd_governed, analyze_zdd_with, build_encoding,
    toggling_activity, toggling_of_state_codes, AnalysisError, AnalysisOptions, AnalysisReport,
    AssignmentStrategy, Block, Budget, ChainingOrder, CheckReport, DegradationStep, Encoding,
    ExplicitChecker, FixpointStrategy, ImageCluster, ImagePlan, Interrupt, PassObserver,
    PortfolioReport, PreImageCluster, PreImagePlan, Property, PropertyParseError,
    ReachabilityResult, SchemeKind, SiftPolicy, SymbolicContext, TogglingReport, TraceKind,
    TransitionEffect, TraversalOptions, TruncationReason, WitnessTrace, ZddAnalysisReport,
    ZddContext, ZddReachabilityResult,
};
#[cfg(feature = "fault-inject")]
pub use pnsym_core::{DiskFaultSchedule, DiskFaultSite, FaultSchedule, FaultSite};

/// Commonly used items for quick scripting against the library.
pub mod prelude {
    pub use crate::bdd::{BddManager, Ref, VarId, ZddManager};
    pub use crate::net::nets;
    pub use crate::net::{Marking, NetBuilder, PetriNet, PlaceId, TransitionId};
    pub use crate::structural::{
        find_smcs, minimal_invariants, select_smc_cover, CoverStrategy, Smc,
    };
    pub use crate::{
        analyze, analyze_zdd, AnalysisOptions, AssignmentStrategy, ChainingOrder, Encoding,
        FixpointStrategy, Property, SchemeKind, SymbolicContext, TraversalOptions, WitnessTrace,
    };
}
