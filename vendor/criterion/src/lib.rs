//! An offline, API-compatible subset of the [`criterion`] benchmarking crate.
//!
//! The pnsym build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched. This shim implements the surface the
//! workspace's five bench targets use — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock sampler instead of criterion's statistical machinery.
//!
//! Reported numbers are the mean and best wall-clock time over up to
//! `sample_size` samples bounded by `measurement_time`; there are no plots,
//! no outlier analysis and no saved baselines. Swap this for the real crate
//! when building with network access to regain those.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    /// Sets the default time budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.default_measurement_time = t;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &id.to_string(),
            self.default_sample_size,
            self.default_measurement_time,
            f,
        );
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
            _criterion: self,
        }
    }

    /// Prints the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the time budget for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for API compatibility; the shim does not warm up.
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Runs one benchmark parameterised by a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function_name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: name,
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting one duration per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, budget: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
    };
    let start = Instant::now();
    for _ in 0..sample_size.max(1) {
        f(&mut b);
        if start.elapsed() > budget {
            break;
        }
    }
    if b.samples.is_empty() {
        println!("{label}: no samples (routine never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let best = b.samples.iter().min().copied().unwrap_or_default();
    let median = {
        let mut sorted = b.samples.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2
        } else {
            sorted[mid]
        }
    };
    println!(
        "{label}: median {median:?}, mean {mean:?}, best {best:?} over {} sample(s)",
        b.samples.len()
    );
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
