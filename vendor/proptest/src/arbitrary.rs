//! `any::<T>()` — default strategies for primitive types.

use std::fmt;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + fmt::Debug + 'static {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool()
    }
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<A> {
    _marker: std::marker::PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `A` over its whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
