//! The [`Strategy`] trait and the combinators the workspace suites use.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Self::Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a pure function from RNG state to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves and `recurse`
    /// wraps an inner strategy into branches, up to `depth` levels.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for signature
    /// compatibility but unused — depth alone bounds the shim's recursion.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            let leaf = leaf.clone();
            // Mostly branch (so trees get deep) but keep a leaf escape at
            // every level so generated sizes stay diverse.
            strat = BoxedStrategy::from_fn(move |rng| {
                if rng.below(4) == 0 {
                    leaf.generate(rng)
                } else {
                    branch.generate(rng)
                }
            });
        }
        strat
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let this = self;
        BoxedStrategy::from_fn(move |rng| this.generate(rng))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among several boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! requires at least one arm");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, R, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}..{:?}",
                    self.start,
                    self.end
                );
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo:?}..={hi:?}");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    )*};
}

int_range_strategies!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategies {
    ($($ty:ty : $uty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "empty range strategy {:?}..{:?}",
                    self.start,
                    self.end
                );
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo:?}..={hi:?}");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $ty
            }
        }
    )*};
}

signed_range_strategies!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($(ref $name,)+) = *self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}
