//! Configuration, errors and the deterministic RNG backing the shim.

use std::fmt;

/// Per-test configuration; only the knobs the workspace uses are present.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (used by CI to cap the suite's runtime).
    ///
    /// # Panics
    ///
    /// Panics on a malformed or zero `PROPTEST_CASES` value — silently
    /// falling back would let a typo disable the property suites while CI
    /// stays green.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(n) if n > 0 => n,
                Ok(_) => panic!("PROPTEST_CASES must be positive, got 0"),
                Err(_) => panic!("malformed PROPTEST_CASES value: {v:?}"),
            },
            Err(_) => self.cases,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected (e.g. by a filter); it is skipped, not failed.
    Reject(String),
    /// The property was falsified.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A small, fast, deterministic RNG (splitmix64).
/// Twin of `SplitMix64` in `crates/pnet/src/nets/random.rs` — kept separate
/// so `pnsym-net` stays dependency-free; fix bugs in both places.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG starting from the given seed.
    pub fn with_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded generation (Lemire); the slight modulo bias
        // of the fallback is irrelevant for test-input generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform bool.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}
