//! An offline, API-compatible subset of the [`proptest`] crate.
//!
//! The pnsym build environment has no network access, so the real crates.io
//! `proptest` cannot be fetched. This shim implements exactly the surface the
//! workspace's property suites use — [`Strategy`](strategy::Strategy) with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, integer-range / tuple / `any` /
//! `collection::vec` strategies, the [`proptest!`], [`prop_oneof!`] and
//! `prop_assert*` macros, and [`ProptestConfig`](test_runner::ProptestConfig) — over a small deterministic
//! RNG.
//!
//! Deliberate simplifications relative to the real crate:
//!
//! * **No shrinking.** A failing case panics immediately with the generated
//!   inputs in the message; there is no minimisation pass and therefore no
//!   `proptest-regressions/` persistence (CI never has to manage seed files).
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so runs are reproducible across machines; set
//!   `PROPTEST_SEED=<u64>` to perturb the seed stream.
//! * **`PROPTEST_CASES` overrides case counts.** When set, the environment
//!   variable replaces every in-source `ProptestConfig::with_cases` value,
//!   which lets CI cap the suite's runtime.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Generation of arbitrary values for primitive types (`any::<T>()`).
pub mod arbitrary_impl {}

#[doc(hidden)]
pub mod macro_support {
    use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};

    /// Seeds the RNG for one property test deterministically from its name.
    pub fn rng_for_test(full_name: &str) -> TestRng {
        // FNV-1a over the test's full path, perturbed by PROPTEST_SEED.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in full_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                h = h.wrapping_add(seed.wrapping_mul(0x9e3779b97f4a7c15));
            }
        }
        TestRng::with_seed(h)
    }

    /// Runs the per-case closure `cases` times, panicking with the inputs on
    /// the first failure.
    pub fn run_cases<F>(config: &ProptestConfig, full_name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (Vec<String>, Result<(), TestCaseError>),
    {
        let cases = config.effective_cases();
        let mut rng = rng_for_test(full_name);
        for i in 0..cases {
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => {}
                Err(TestCaseError::Reject(reason)) => {
                    // No shrinking/resampling machinery: treat an explicit
                    // rejection as a skipped case.
                    let _ = reason;
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest: {} failed at case {}/{}:\n  {}\n  inputs:\n    {}",
                        full_name,
                        i + 1,
                        cases,
                        msg,
                        inputs.join("\n    ")
                    );
                }
            }
        }
    }
}

/// Defines property tests over generated inputs.
///
/// Supports the standard forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, y in any::<bool>()) {
///         prop_assert!(x < 10 || y);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __pnsym_config = $config;
                let __pnsym_full_name = concat!(module_path!(), "::", stringify!($name));
                $crate::macro_support::run_cases(
                    &__pnsym_config,
                    __pnsym_full_name,
                    |__pnsym_rng| {
                        // Snapshot the RNG so the inputs of a failing case can
                        // be regenerated for the report; passing cases then
                        // pay no Debug-formatting cost.
                        let __pnsym_snapshot = __pnsym_rng.clone();
                        $(
                            let $pat =
                                $crate::strategy::Strategy::generate(&($strat), __pnsym_rng);
                        )+
                        let __pnsym_outcome: ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > = (move || {
                            $body
                            Ok(())
                        })();
                        match __pnsym_outcome {
                            Ok(()) => (Vec::new(), Ok(())),
                            Err(__pnsym_err) => {
                                let mut __pnsym_replay = __pnsym_snapshot;
                                let mut __pnsym_inputs: Vec<String> = Vec::new();
                                $(
                                    __pnsym_inputs.push(format!(
                                        "{} = {:?}",
                                        stringify!($pat),
                                        $crate::strategy::Strategy::generate(
                                            &($strat),
                                            &mut __pnsym_replay
                                        )
                                    ));
                                )+
                                (__pnsym_inputs, Err(__pnsym_err))
                            }
                        }
                    },
                );
            }
        )*
    };
}

/// Uniform choice between several strategies producing the same value type.
///
/// The real macro supports `weight => strategy` arms; this subset picks
/// uniformly, which is all the workspace suites use.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current property case (without panicking the whole process)
/// when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    format!($($fmt)+)
                ),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pnsym_l, __pnsym_r) = (&$left, &$right);
        if !(*__pnsym_l == *__pnsym_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __pnsym_l,
                    __pnsym_r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pnsym_l, __pnsym_r) = (&$left, &$right);
        if !(*__pnsym_l == *__pnsym_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}: {}\n  left:  {:?}\n  right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    __pnsym_l,
                    __pnsym_r
                ),
            ));
        }
    }};
}

/// `prop_assert!` for inequality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pnsym_l, __pnsym_r) = (&$left, &$right);
        if *__pnsym_l == *__pnsym_r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __pnsym_l
            )));
        }
    }};
}
