//! Walkthrough of Sections 4.3–5.4 of the paper: the dining-philosophers net
//! of Figure 4, its SMC decomposition (Figure 3), the improved encoding
//! (Table 1) and the characteristic functions (Table 2) — then scales the
//! family up and detects the classic deadlock symbolically.
//!
//! Run with `cargo run --example dining_philosophers [n]`.

use pnsym::net::nets::philosophers;
use pnsym::structural::find_smcs;
use pnsym::{
    analyze, AnalysisError, AnalysisOptions, AssignmentStrategy, Block, Encoding, SymbolicContext,
    TraversalOptions,
};

fn main() -> Result<(), AnalysisError> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let net = philosophers(n.max(2));
    println!("net: {net}");

    // The SMC decomposition (Figure 3 for n = 2).
    let smcs = find_smcs(&net).map_err(AnalysisError::Structural)?;
    println!("\n{} one-token SMCs found:", smcs.len());
    for (i, smc) in smcs.iter().enumerate() {
        let names: Vec<&str> = smc.places().iter().map(|&p| net.place_name(p)).collect();
        println!("  SM{}: {{{}}}", i + 1, names.join(", "));
    }

    // The improved encoding (Table 1 for n = 2: 8 variables for 14 places).
    let encoding = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
    println!(
        "\nimproved encoding: {} variables for {} places",
        encoding.num_vars(),
        net.num_places()
    );
    for (i, block) in encoding.blocks().iter().enumerate() {
        match block {
            Block::Place { place, var } => {
                println!("  block {i}: place {} -> x{var}", net.place_name(*place));
            }
            Block::Smc {
                places,
                codes,
                vars,
                ..
            } => {
                let vars_s: Vec<String> = vars.iter().map(|v| format!("x{v}")).collect();
                println!("  block {i}: SMC on [{}]", vars_s.join(" "));
                for (j, &p) in places.iter().enumerate() {
                    println!(
                        "      {} = {:0width$b}",
                        net.place_name(p),
                        codes[j],
                        width = vars.len()
                    );
                }
            }
        }
    }

    // Symbolic reachability + deadlock detection.
    let mut ctx = SymbolicContext::new(&net, encoding);
    let result = ctx.reachable_markings_with(TraversalOptions::default());
    let deadlocks = ctx.deadlocks_in(result.reached);
    let num_deadlocks = ctx.count_markings(deadlocks);
    println!(
        "\nreachable markings: {} ({} BDD nodes, {} iterations)",
        result.num_markings, result.bdd_nodes, result.iterations
    );
    println!("reachable deadlocks: {num_deadlocks} (every philosopher holding their left fork)");

    // Compare against the sparse scheme.
    let sparse = analyze(&net, &AnalysisOptions::sparse())?;
    println!(
        "\nsparse encoding: {} variables, {} BDD nodes — dense saves {:.0}% of the variables",
        sparse.num_variables,
        sparse.bdd_nodes,
        100.0 * (1.0 - ctx.encoding().num_vars() as f64 / sparse.num_variables as f64)
    );
    Ok(())
}
