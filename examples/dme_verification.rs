//! Symbolic model checking of the distributed mutual-exclusion ring (the
//! Table-4 workload family): mutual exclusion as an AG invariant, and
//! accessibility of every cell's critical section as EF properties, checked
//! under the dense encoding.
//!
//! Run with `cargo run --release --example dme_verification [cells] [spec|circuit]`.

use pnsym::net::nets::{dme, DmeStyle};
use pnsym::structural::find_smcs;
use pnsym::{AnalysisError, AssignmentStrategy, Encoding, Property, SymbolicContext};

fn main() -> Result<(), AnalysisError> {
    let cells: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
        .max(2);
    let style = match std::env::args().nth(2).as_deref() {
        Some("circuit") => DmeStyle::Circuit,
        _ => DmeStyle::Spec,
    };
    let net = dme(cells, style);
    println!("net: {net} ({style:?})");

    let smcs = find_smcs(&net).map_err(AnalysisError::Structural)?;
    let encoding = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
    println!(
        "dense encoding: {} variables (sparse would use {})",
        encoding.num_vars(),
        net.num_places()
    );
    let mut ctx = SymbolicContext::new(&net, encoding);
    let result = ctx.reachable_markings();
    println!(
        "reachable markings: {} ({} BDD nodes, {:.1} ms)",
        result.num_markings,
        result.bdd_nodes,
        result.duration.as_secs_f64() * 1e3
    );

    // AG: no two cells are ever in their critical section simultaneously.
    let critical: Vec<_> = (0..cells)
        .map(|i| net.place_by_name(&format!("critical.{i}")).expect("place"))
        .collect();
    let mut violations = 0usize;
    for i in 0..cells {
        for j in i + 1..cells {
            let both = Property::place(critical[i]).and(Property::place(critical[j]));
            if !ctx.check_invariant(&both.not()) {
                violations += 1;
            }
        }
    }
    println!(
        "mutual exclusion: {} violated pairs out of {} (expected 0)",
        violations,
        cells * (cells - 1) / 2
    );

    // EF: every cell can reach its critical section.
    let mut unreachable = 0usize;
    for &cs in &critical {
        if !ctx.check_reachable(&Property::place(cs)) {
            unreachable += 1;
        }
    }
    println!("cells that can never enter their critical section: {unreachable} (expected 0)");

    // Deadlock freedom.
    let deadlocks = ctx.deadlocks_in(result.reached);
    println!(
        "reachable deadlocks: {} (expected 0)",
        ctx.count_markings(deadlocks)
    );
    Ok(())
}
