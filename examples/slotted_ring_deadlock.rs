//! Property checking on the slotted-ring protocol: symbolic reachability,
//! deadlock detection, and verification of the per-node mutual-exclusion
//! invariants — all under the dense encoding.
//!
//! Run with `cargo run --release --example slotted_ring_deadlock [nodes]`.

use pnsym::net::nets::slotted_ring;
use pnsym::structural::find_smcs;
use pnsym::{AnalysisError, AssignmentStrategy, Encoding, SymbolicContext, TraversalOptions};

fn main() -> Result<(), AnalysisError> {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let net = slotted_ring(nodes.max(2));
    println!("net: {net}");

    let smcs = find_smcs(&net).map_err(AnalysisError::Structural)?;
    let encoding = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
    println!(
        "dense encoding: {} variables (sparse would use {})",
        encoding.num_vars(),
        net.num_places()
    );

    let mut ctx = SymbolicContext::new(&net, encoding);
    let result = ctx.reachable_markings_with(TraversalOptions::default());
    println!(
        "reachable markings: {} ({} BDD nodes, {} iterations, {:.1} ms)",
        result.num_markings,
        result.bdd_nodes,
        result.iterations,
        result.duration.as_secs_f64() * 1e3
    );

    // Deadlock: all nodes simultaneously waiting to send.
    let deadlocks = ctx.deadlocks_in(result.reached);
    let num_deadlocks = ctx.count_markings(deadlocks);
    println!("reachable deadlocks: {num_deadlocks}");
    if num_deadlocks > 0.0 {
        println!("  (all nodes holding a full slot while none is idle to receive)");
    }

    // Safety-style invariant check: a slot is never both free and full.
    let mut violations = 0u32;
    for i in 0..nodes.max(2) {
        let free = net.place_by_name(&format!("free.{i}")).expect("place");
        let full = net.place_by_name(&format!("full.{i}")).expect("place");
        let chi_free = ctx.place_fn(free);
        let chi_full = ctx.place_fn(full);
        let both = ctx.manager_mut().and(chi_free, chi_full);
        let bad = ctx.manager_mut().and(result.reached, both);
        if bad != ctx.manager().zero() {
            violations += 1;
        }
    }
    println!("slots that can be free and full at once: {violations} (expected 0)");
    Ok(())
}
