//! Scaling experiment on the Muller-pipeline family (the `muller-N` rows of
//! Table 3): compares sparse and dense encodings as the pipeline grows and
//! prints a small table in the paper's format.
//!
//! Run with `cargo run --release --example muller_pipeline [max_stages]`.

use pnsym::net::nets::muller;
use pnsym::{analyze, AnalysisError, AnalysisOptions};

fn main() -> Result<(), AnalysisError> {
    let max_stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    println!(
        "{:<12} {:>14} | {:>5} {:>8} {:>9} | {:>5} {:>8} {:>9}",
        "net", "markings", "V", "BDD", "CPU(ms)", "V", "BDD", "CPU(ms)"
    );
    println!(
        "{:<12} {:>14} | {:^25} | {:^25}",
        "", "", "sparse encoding", "dense encoding"
    );

    let mut n = 2;
    while n <= max_stages {
        let net = muller(n);
        let sparse = analyze(&net, &AnalysisOptions::sparse())?;
        let dense = analyze(&net, &AnalysisOptions::dense())?;
        assert_eq!(sparse.num_markings, dense.num_markings);
        println!(
            "{:<12} {:>14.3e} | {:>5} {:>8} {:>9.1} | {:>5} {:>8} {:>9.1}",
            net.name(),
            sparse.num_markings,
            sparse.num_variables,
            sparse.bdd_nodes,
            sparse.total_time.as_secs_f64() * 1e3,
            dense.num_variables,
            dense.bdd_nodes,
            dense.total_time.as_secs_f64() * 1e3,
        );
        n += 2;
    }
    println!("\nthe dense encoding always halves the variable count (2 bits per 4-phase stage)");
    Ok(())
}
