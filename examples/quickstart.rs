//! Quickstart: analyse the paper's running example (Figure 1) with both the
//! sparse and the dense encoding and print the comparison.
//!
//! Run with `cargo run --example quickstart`.

use pnsym::net::nets::figure1;
use pnsym::structural::{find_smcs, minimal_invariants};
use pnsym::{analyze, AnalysisError, AnalysisOptions};

fn main() -> Result<(), AnalysisError> {
    // The 7-place example net of Figure 1 of the paper.
    let net = figure1();
    println!("net: {net}");

    // Structural analysis: P-invariants and State Machine Components.
    let invariants = minimal_invariants(&net).map_err(AnalysisError::Structural)?;
    println!("\nminimal semi-positive P-invariants:");
    for inv in &invariants {
        println!("  {inv}");
    }
    let smcs = find_smcs(&net).map_err(AnalysisError::Structural)?;
    println!("\nstate machine components (Figure 2.e):");
    for smc in &smcs {
        let names: Vec<&str> = smc.places().iter().map(|&p| net.place_name(p)).collect();
        println!(
            "  {{{}}} -> {} encoding bits",
            names.join(", "),
            smc.encoding_cost()
        );
    }

    // Symbolic reachability under both encodings.
    let sparse = analyze(&net, &AnalysisOptions::sparse())?;
    let dense = analyze(&net, &AnalysisOptions::dense())?;

    println!(
        "\n{:<10} {:>10} {:>6} {:>10} {:>10}",
        "scheme", "markings", "vars", "BDD nodes", "CPU (ms)"
    );
    for report in [&sparse, &dense] {
        println!(
            "{:<10} {:>10} {:>6} {:>10} {:>10.2}",
            report.scheme.to_string(),
            report.num_markings,
            report.num_variables,
            report.bdd_nodes,
            report.total_time.as_secs_f64() * 1e3
        );
    }

    assert_eq!(sparse.num_markings, dense.num_markings);
    println!(
        "\nthe dense encoding uses {} variables instead of {} and represents the same {} markings",
        dense.num_variables, sparse.num_variables, dense.num_markings
    );
    Ok(())
}
