//! A tour of the encoding schemes of Section 3 on the Figure 1 net:
//! variable counts, encoding density, and the toggling activity that
//! motivates the Gray-like code assignment (the 15/11 vs 19/11 comparison
//! of Figure 2).
//!
//! Run with `cargo run --example encoding_tour`.

use pnsym::net::nets::figure1;
use pnsym::net::Marking;
use pnsym::structural::find_smcs;
use pnsym::{
    toggling_activity, toggling_of_state_codes, AnalysisError, AssignmentStrategy, Encoding,
};

fn main() -> Result<(), AnalysisError> {
    let net = figure1();
    let rg = net.explore().expect("figure1 is safe and tiny");
    let smcs = find_smcs(&net).map_err(AnalysisError::Structural)?;
    println!(
        "net: {net}\nreachable markings: {} ({} edges)",
        rg.num_markings(),
        rg.num_edges()
    );

    // The three encoding schemes of Section 3.
    let sparse = Encoding::sparse(&net);
    let dense_gray = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
    let dense_seq = Encoding::improved(&net, &smcs, AssignmentStrategy::Sequential);
    let optimal_bits = (rg.num_markings() as f64).log2().ceil() as usize;

    println!(
        "\n{:<28} {:>6} {:>10} {:>14}",
        "scheme", "vars", "density", "toggled bits"
    );
    let describe = |name: &str, enc: &Encoding| {
        let toggling = toggling_activity(&net, enc, &rg);
        println!(
            "{:<28} {:>6} {:>10.3} {:>9}/{:<4}",
            name,
            enc.num_vars(),
            enc.density(rg.num_markings() as f64),
            toggling.total_bits,
            toggling.num_edges
        );
    };
    describe("one variable per place", &sparse);
    describe("SMC-based, Gray codes", &dense_gray);
    describe("SMC-based, binary codes", &dense_seq);
    println!(
        "{:<28} {:>6} {:>10.3} {:>14}",
        "optimal (needs markings!)",
        optimal_bits,
        rg.num_markings() as f64 / 2f64.powi(optimal_bits as i32),
        "see below"
    );

    // The hand-made 3-variable assignments of Figure 2.c and a naive
    // sequential assignment (2.d uses 19/11 in the paper).
    let index_of = |names: &[&str]| {
        let places: Vec<_> = names
            .iter()
            .map(|n| net.place_by_name(n).unwrap())
            .collect();
        rg.index_of(&Marking::from_places(net.num_places(), &places))
            .unwrap()
    };
    let paper_order = [
        index_of(&["p1"]),
        index_of(&["p2", "p3"]),
        index_of(&["p4", "p5"]),
        index_of(&["p3", "p6"]),
        index_of(&["p2", "p7"]),
        index_of(&["p5", "p6"]),
        index_of(&["p4", "p7"]),
        index_of(&["p6", "p7"]),
    ];
    let fig2c = [0b000, 0b001, 0b100, 0b011, 0b101, 0b110, 0b111, 0b010];
    let mut codes_c = vec![0u32; rg.num_markings()];
    let mut codes_d = vec![0u32; rg.num_markings()];
    for (m, &idx) in paper_order.iter().enumerate() {
        codes_c[idx] = fig2c[m];
        codes_d[idx] = m as u32;
    }
    let tc = toggling_of_state_codes(&rg, &codes_c);
    let td = toggling_of_state_codes(&rg, &codes_d);
    println!(
        "\n3-variable assignment of Figure 2.c : {}/{} toggled bits (paper: 15/11)",
        tc.total_bits, tc.num_edges
    );
    println!(
        "3-variable assignment, BFS order    : {}/{} toggled bits (paper's 2.d: 19/11)",
        td.total_bits, td.num_edges
    );
    println!("\nderiving the optimal encoding requires knowing the markings up front —");
    println!("the SMC-based scheme gets close using structure alone (Section 3).");
    Ok(())
}
