//! T-invariants (transition invariants) and structural bounds.
//!
//! A T-invariant is a solution of `C·X = 0`: a firing-count vector whose
//! complete occurrence reproduces the starting marking. The benchmark
//! families of the paper are all cyclic protocols, so their behaviour is
//! covered by semi-positive T-invariants; exposing them rounds out the
//! structural-theory substrate (Section 2.2 mentions the place-side only,
//! but the same Farkas elimination applies to the transposed matrix).
//! Structural place bounds derived from P-invariants are provided here as
//! well: they are the justification for treating the nets as safe.

use crate::invariants::{minimal_invariants_with, Invariant, InvariantError, InvariantOptions};
use pnsym_net::{IncidenceMatrix, PetriNet, PlaceId, TransitionId};
use std::cmp::Ordering;
use std::collections::BTreeSet;

/// A transition-indexed firing-count vector with `C·X = 0`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TInvariant {
    counts: Vec<i64>,
}

impl TInvariant {
    /// The firing count of each transition.
    pub fn counts(&self) -> &[i64] {
        &self.counts
    }

    /// The firing count of a single transition.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn count(&self, t: TransitionId) -> i64 {
        self.counts[t.index()]
    }

    /// The transitions with a strictly positive count.
    pub fn support(&self) -> Vec<TransitionId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| TransitionId(i as u32))
            .collect()
    }

    /// Verifies `C·X = 0` against the net.
    pub fn verify(&self, net: &PetriNet) -> bool {
        let matrix = IncidenceMatrix::from_net(net);
        net.places().all(|p| {
            matrix
                .row(p)
                .iter()
                .zip(&self.counts)
                .map(|(c, x)| c * x)
                .sum::<i64>()
                == 0
        })
    }
}

/// Computes the minimal semi-positive T-invariants of `net` by running the
/// Farkas elimination on the transposed incidence matrix.
///
/// # Errors
///
/// Returns [`InvariantError::RowLimit`] if the tableau exceeds
/// `options.max_rows` rows.
pub fn minimal_t_invariants(
    net: &PetriNet,
    options: InvariantOptions,
) -> Result<Vec<TInvariant>, InvariantError> {
    // Reuse the P-invariant engine on the transposed net: swap the roles of
    // places and transitions by building a mirror net whose incidence matrix
    // is -Cᵀ; its "P-invariants" are exactly our T-invariants (the sign does
    // not matter for the kernel).
    let transposed = transpose_net(net);
    let invariants = minimal_invariants_with(&transposed, options)?;
    // The first |T| places of the transposed net correspond to the original
    // transitions; any additional entries belong to the dummy places added
    // for source/sink places and are dropped (an invariant touching a dummy
    // cannot correspond to a realisable firing cycle anyway).
    Ok(invariants
        .into_iter()
        .filter(|inv| {
            inv.weights()[net.num_transitions()..]
                .iter()
                .all(|&w| w == 0)
        })
        .map(|inv| TInvariant {
            counts: inv.weights()[..net.num_transitions()].to_vec(),
        })
        .collect())
}

/// Builds a net whose incidence matrix is the transpose of `net`'s
/// (places become transitions and vice versa). Only used internally for the
/// T-invariant computation; the initial marking is irrelevant and left
/// empty, and pre/post direction is chosen so the matrix is exactly `-Cᵀ`,
/// whose kernel equals that of `Cᵀ`.
fn transpose_net(net: &PetriNet) -> PetriNet {
    use pnsym_net::NetBuilder;
    let mut b = NetBuilder::new(format!("{}^T", net.name()));
    // One place per original transition.
    let places: Vec<_> = net
        .transitions()
        .map(|t| b.place(format!("t_{}", net.transition_name(t))))
        .collect();
    // One transition per original place. The original row C(p, ·) becomes
    // the column of the new transition: +1 entries become consumed places,
    // -1 entries produced ones (any consistent choice works for the kernel).
    for p in net.places() {
        let consumed: Vec<_> = net
            .place_pre_set(p)
            .iter()
            .map(|&t| places[t.index()])
            .collect();
        let produced: Vec<_> = net
            .place_post_set(p)
            .iter()
            .map(|&t| places[t.index()])
            .collect();
        if consumed.is_empty() || produced.is_empty() {
            // A source/sink place cannot participate in any T-invariant;
            // model it with a self-loop on a fresh dummy place so the
            // builder accepts the transition and the kernel is unchanged
            // only when the place is isolated — otherwise keep the side
            // that exists and a dummy for the other.
            let dummy = b.place(format!("dummy_{}", net.place_name(p)));
            let pre = if consumed.is_empty() {
                vec![dummy]
            } else {
                consumed
            };
            let post = if produced.is_empty() {
                vec![dummy]
            } else {
                produced
            };
            b.transition(format!("p_{}", net.place_name(p)), &pre, &post);
        } else {
            b.transition(format!("p_{}", net.place_name(p)), &consumed, &produced);
        }
    }
    b.build().expect("transposed net is well formed")
}

/// The structural bound of a place derived from P-invariants: if an
/// invariant `I` with `I(p) > 0` exists, the token count of `p` never
/// exceeds `I·M0 / I(p)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaceBound {
    /// The place is covered by a P-invariant giving this bound.
    Bounded(i64),
    /// No invariant covers the place; the structure alone gives no bound.
    Unknown,
}

impl PlaceBound {
    /// Whether the bound guarantees safety (at most one token).
    pub fn is_safe(&self) -> bool {
        matches!(self, PlaceBound::Bounded(k) if *k <= 1)
    }
}

impl PartialOrd for PlaceBound {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (PlaceBound::Bounded(a), PlaceBound::Bounded(b)) => a.partial_cmp(b),
            (PlaceBound::Bounded(_), PlaceBound::Unknown) => Some(Ordering::Less),
            (PlaceBound::Unknown, PlaceBound::Bounded(_)) => Some(Ordering::Greater),
            (PlaceBound::Unknown, PlaceBound::Unknown) => Some(Ordering::Equal),
        }
    }
}

/// Computes the structural bound of every place from a set of P-invariants
/// (typically the minimal ones).
pub fn place_bounds(net: &PetriNet, invariants: &[Invariant]) -> Vec<PlaceBound> {
    let m0 = net.initial_marking();
    let mut bounds = vec![PlaceBound::Unknown; net.num_places()];
    for inv in invariants {
        if !inv.is_semi_positive() {
            continue;
        }
        let total = inv.token_count(m0);
        for p in inv.support() {
            let bound = total / inv.weight(p);
            bounds[p.index()] = match bounds[p.index()] {
                PlaceBound::Unknown => PlaceBound::Bounded(bound),
                PlaceBound::Bounded(old) => PlaceBound::Bounded(old.min(bound)),
            };
        }
    }
    bounds
}

/// Whether every place is structurally bounded by 1 (a sufficient — not
/// necessary — condition for the net to be safe).
pub fn structurally_safe(net: &PetriNet, invariants: &[Invariant]) -> bool {
    place_bounds(net, invariants)
        .iter()
        .all(PlaceBound::is_safe)
}

/// The set of places not covered by any of the given invariants (these are
/// the places the dense encoding must fall back to one variable for).
pub fn uncovered_places(net: &PetriNet, invariants: &[Invariant]) -> Vec<PlaceId> {
    let covered: BTreeSet<PlaceId> = invariants.iter().flat_map(|inv| inv.support()).collect();
    net.places().filter(|p| !covered.contains(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::minimal_invariants;
    use pnsym_net::nets::{dme, figure1, muller, philosophers, slotted_ring, DmeStyle};

    #[test]
    fn figure1_t_invariants_are_the_two_cycles() {
        let net = figure1();
        let tinvs = minimal_t_invariants(&net, InvariantOptions::default()).unwrap();
        // Two minimal cycles: t1 t3 t4 t7 and t2 t5 t6 t7.
        assert_eq!(tinvs.len(), 2);
        for ti in &tinvs {
            assert!(ti.verify(&net));
            assert_eq!(ti.support().len(), 4);
            assert_eq!(ti.count(TransitionId(6)), 1, "t7 closes both cycles");
        }
    }

    #[test]
    fn cyclic_benchmarks_have_t_invariants() {
        for net in [muller(3), slotted_ring(2), dme(2, DmeStyle::Spec)] {
            let tinvs = minimal_t_invariants(&net, InvariantOptions::default()).unwrap();
            assert!(
                !tinvs.is_empty(),
                "{} should be covered by cycles",
                net.name()
            );
            for ti in &tinvs {
                assert!(ti.verify(&net), "{}", net.name());
            }
        }
    }

    #[test]
    fn structural_bounds_prove_safety_of_the_benchmarks() {
        for net in [figure1(), philosophers(2), muller(4), slotted_ring(3)] {
            let invariants = minimal_invariants(&net).unwrap();
            let bounds = place_bounds(&net, &invariants);
            assert_eq!(bounds.len(), net.num_places());
            assert!(
                structurally_safe(&net, &invariants),
                "{} should be structurally safe",
                net.name()
            );
            assert!(uncovered_places(&net, &invariants).is_empty());
        }
    }

    #[test]
    fn bound_ordering_and_safety_predicate() {
        assert!(PlaceBound::Bounded(1).is_safe());
        assert!(!PlaceBound::Bounded(2).is_safe());
        assert!(!PlaceBound::Unknown.is_safe());
        assert!(PlaceBound::Bounded(3) < PlaceBound::Unknown);
        assert!(PlaceBound::Bounded(1) < PlaceBound::Bounded(2));
    }

    #[test]
    fn uncovered_places_are_reported() {
        // A net with a place outside every invariant: `t` keeps its input
        // token and pumps tokens into `c`, so no semi-positive invariant can
        // give `c` a positive weight.
        use pnsym_net::NetBuilder;
        let mut b = NetBuilder::new("pump");
        let a = b.place_marked("a");
        let c = b.place("c");
        b.transition("t", &[a], &[a, c]);
        let net = b.build().unwrap();
        let invariants = minimal_invariants(&net).unwrap();
        let uncovered = uncovered_places(&net, &invariants);
        assert_eq!(uncovered.len(), 1);
        assert_eq!(net.place_name(uncovered[0]), "c");
        assert!(
            !structurally_safe(&net, &invariants),
            "the unbounded place defeats the structural safety proof"
        );
    }
}
