//! State Machine Components (SMCs): extraction from P-invariants and the
//! structural checks of Section 2.2.

use crate::invariants::{minimal_invariants_with, Invariant, InvariantError, InvariantOptions};
use pnsym_net::{PetriNet, PlaceId, TransitionId};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A State Machine Component of a Petri net: a subset of places generating a
/// strongly connected state machine.
///
/// By Theorem 2.1 of the paper the characteristic vector of the place set is
/// a minimal semi-positive P-invariant, so the token count inside the
/// component is preserved; components holding exactly one token admit a
/// logarithmic encoding.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Smc {
    places: Vec<PlaceId>,
    transitions: Vec<TransitionId>,
    initial_tokens: usize,
}

impl Smc {
    /// The component's places in increasing index order.
    pub fn places(&self) -> &[PlaceId] {
        &self.places
    }

    /// The transitions adjacent to the component's places.
    pub fn transitions(&self) -> &[TransitionId] {
        &self.transitions
    }

    /// Number of places in the component.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Whether the component has no places (never true for a checked SMC).
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// Whether `p` belongs to the component.
    pub fn contains(&self, p: PlaceId) -> bool {
        self.places.binary_search(&p).is_ok()
    }

    /// Whether transition `t` is covered by the component.
    pub fn covers_transition(&self, t: TransitionId) -> bool {
        self.transitions.binary_search(&t).is_ok()
    }

    /// Number of tokens the component holds in the initial marking.
    pub fn initial_tokens(&self) -> usize {
        self.initial_tokens
    }

    /// Number of boolean variables a logarithmic encoding of this component
    /// needs: `⌈log2 |places|⌉`.
    pub fn encoding_cost(&self) -> u32 {
        (self.places.len() as u32)
            .next_power_of_two()
            .trailing_zeros()
    }

    /// The output place of `t` inside the component, if `t` is covered.
    pub fn output_place_of(&self, net: &PetriNet, t: TransitionId) -> Option<PlaceId> {
        net.post_set(t).iter().copied().find(|&p| self.contains(p))
    }

    /// The input place of `t` inside the component, if `t` is covered.
    pub fn input_place_of(&self, net: &PetriNet, t: TransitionId) -> Option<PlaceId> {
        net.pre_set(t).iter().copied().find(|&p| self.contains(p))
    }
}

impl fmt::Display for Smc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SMC{{")?;
        for (i, p) in self.places.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Why a place set fails to be a (usable) SMC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmcCheckError {
    /// The set is empty.
    Empty,
    /// A covered transition has more or fewer than one input place in the set.
    BadInputDegree {
        /// The offending transition.
        transition: TransitionId,
        /// How many of its input places lie in the set.
        count: usize,
    },
    /// A covered transition has more or fewer than one output place in the set.
    BadOutputDegree {
        /// The offending transition.
        transition: TransitionId,
        /// How many of its output places lie in the set.
        count: usize,
    },
    /// The generated state machine is not strongly connected.
    NotStronglyConnected,
}

impl fmt::Display for SmcCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmcCheckError::Empty => write!(f, "empty place set"),
            SmcCheckError::BadInputDegree { transition, count } => write!(
                f,
                "transition {transition} has {count} input places in the set (expected 1)"
            ),
            SmcCheckError::BadOutputDegree { transition, count } => write!(
                f,
                "transition {transition} has {count} output places in the set (expected 1)"
            ),
            SmcCheckError::NotStronglyConnected => {
                write!(f, "the generated state machine is not strongly connected")
            }
        }
    }
}

impl std::error::Error for SmcCheckError {}

/// Checks whether `places` generates a State Machine Component of `net` and
/// returns it if so.
///
/// The generated subnet takes every transition adjacent to the places; each
/// such transition must have exactly one input and one output place within
/// the set, and the induced place graph must be strongly connected
/// (single-place components with a self-loop transition are accepted).
///
/// # Errors
///
/// Returns an [`SmcCheckError`] describing the first violated condition.
pub fn check_smc(net: &PetriNet, places: &[PlaceId]) -> Result<Smc, SmcCheckError> {
    if places.is_empty() {
        return Err(SmcCheckError::Empty);
    }
    let place_set: BTreeSet<PlaceId> = places.iter().copied().collect();
    // Transitions adjacent to the place set.
    let mut transitions: BTreeSet<TransitionId> = BTreeSet::new();
    for &p in &place_set {
        transitions.extend(net.place_pre_set(p).iter().copied());
        transitions.extend(net.place_post_set(p).iter().copied());
    }
    // Each covered transition needs exactly one input and one output place
    // inside the set.
    let mut edges: HashMap<PlaceId, Vec<PlaceId>> = HashMap::new();
    for &t in &transitions {
        let ins: Vec<PlaceId> = net
            .pre_set(t)
            .iter()
            .copied()
            .filter(|p| place_set.contains(p))
            .collect();
        let outs: Vec<PlaceId> = net
            .post_set(t)
            .iter()
            .copied()
            .filter(|p| place_set.contains(p))
            .collect();
        if ins.len() != 1 {
            return Err(SmcCheckError::BadInputDegree {
                transition: t,
                count: ins.len(),
            });
        }
        if outs.len() != 1 {
            return Err(SmcCheckError::BadOutputDegree {
                transition: t,
                count: outs.len(),
            });
        }
        edges.entry(ins[0]).or_default().push(outs[0]);
    }
    if !strongly_connected(&place_set, &edges) {
        return Err(SmcCheckError::NotStronglyConnected);
    }
    let initial_tokens = place_set
        .iter()
        .filter(|&&p| net.initial_marking().is_marked(p))
        .count();
    Ok(Smc {
        places: place_set.into_iter().collect(),
        transitions: transitions.into_iter().collect(),
        initial_tokens,
    })
}

fn strongly_connected(places: &BTreeSet<PlaceId>, edges: &HashMap<PlaceId, Vec<PlaceId>>) -> bool {
    if places.len() == 1 {
        return true;
    }
    let start = *places.iter().next().expect("non-empty");
    let reaches_all = |forward: bool| -> bool {
        let mut seen: HashSet<PlaceId> = HashSet::new();
        let mut stack = vec![start];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            if forward {
                if let Some(next) = edges.get(&p) {
                    stack.extend(next.iter().copied());
                }
            } else {
                for (&src, targets) in edges {
                    if targets.contains(&p) {
                        stack.push(src);
                    }
                }
            }
        }
        seen.len() == places.len()
    };
    reaches_all(true) && reaches_all(false)
}

/// Extracts every SMC holding exactly one initial token from a list of
/// minimal semi-positive invariants: the candidates are the unit-weight
/// invariants whose support passes [`check_smc`].
pub fn smcs_from_invariants(net: &PetriNet, invariants: &[Invariant]) -> Vec<Smc> {
    invariants
        .iter()
        .filter(|inv| inv.has_unit_weights())
        .filter_map(|inv| check_smc(net, &inv.support()).ok())
        .filter(|smc| smc.initial_tokens() == 1)
        .collect()
}

/// Convenience: computes the minimal invariants of `net` and extracts the
/// one-token SMCs from them.
///
/// # Errors
///
/// Propagates [`InvariantError`] from the invariant computation.
pub fn find_smcs(net: &PetriNet) -> Result<Vec<Smc>, InvariantError> {
    find_smcs_with(net, InvariantOptions::default())
}

/// [`find_smcs`] with explicit invariant-computation options.
///
/// # Errors
///
/// Propagates [`InvariantError`] from the invariant computation.
pub fn find_smcs_with(
    net: &PetriNet,
    options: InvariantOptions,
) -> Result<Vec<Smc>, InvariantError> {
    let invariants = minimal_invariants_with(net, options)?;
    Ok(smcs_from_invariants(net, &invariants))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets::{dme, figure1, muller, philosophers, slotted_ring, DmeStyle};

    fn names(net: &PetriNet, smc: &Smc) -> Vec<String> {
        smc.places()
            .iter()
            .map(|&p| net.place_name(p).to_string())
            .collect()
    }

    #[test]
    fn figure1_smcs_match_figure_2e() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        assert_eq!(smcs.len(), 2);
        let mut sets: Vec<Vec<String>> = smcs.iter().map(|s| names(&net, s)).collect();
        sets.sort();
        assert_eq!(
            sets,
            vec![vec!["p1", "p2", "p4", "p6"], vec!["p1", "p3", "p5", "p7"]]
        );
        for smc in &smcs {
            assert_eq!(smc.encoding_cost(), 2);
            assert_eq!(smc.initial_tokens(), 1);
        }
    }

    #[test]
    fn figure3_decomposition_of_two_philosophers() {
        // The paper's Figure 3 shows six SMCs covering all 14 places.
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        assert_eq!(smcs.len(), 6);
        let mut covered: BTreeSet<PlaceId> = BTreeSet::new();
        for smc in &smcs {
            covered.extend(smc.places().iter().copied());
        }
        assert_eq!(covered.len(), 14, "the SMCs cover every place");
        // Branch SMCs have 4 places, fork SMCs have 5 in this model.
        let sizes: BTreeSet<usize> = smcs.iter().map(Smc::len).collect();
        assert_eq!(sizes, BTreeSet::from([4, 5]));
    }

    #[test]
    fn rejects_non_state_machine_sets() {
        let net = figure1();
        // {p1, p2}: t1 has two output places outside? t1: p1 -> {p2, p3};
        // within {p1, p2} it has one input (p1) and one output (p2), t3 has
        // input p2 but output p6 outside the set -> bad output degree.
        let p1 = net.place_by_name("p1").unwrap();
        let p2 = net.place_by_name("p2").unwrap();
        let err = check_smc(&net, &[p1, p2]).unwrap_err();
        assert!(matches!(err, SmcCheckError::BadOutputDegree { .. }));
        assert!(check_smc(&net, &[]).is_err());
    }

    #[test]
    fn muller_stage_components() {
        let net = muller(4);
        let smcs = find_smcs(&net).unwrap();
        assert_eq!(smcs.len(), 4);
        for smc in &smcs {
            assert_eq!(smc.len(), 4);
            assert_eq!(smc.encoding_cost(), 2);
        }
    }

    #[test]
    fn dme_has_one_large_token_component() {
        let net = dme(4, DmeStyle::Spec);
        let smcs = find_smcs(&net).unwrap();
        // Per cell there are three 3-place user SMCs ({idle,pending,critical},
        // {idle,pending,held} and {idle,prep,prepped}), and the
        // circulating-token invariant has one variant per cell (held_i may
        // be swapped for critical_i), so 4·3 + 2^4 = 28 minimal one-token
        // SMCs exist in total.
        assert_eq!(smcs.len(), 28);
        let largest = smcs.iter().map(Smc::len).max().unwrap();
        assert_eq!(largest, 8, "the token component spans 2 places per cell");
        let large = smcs.iter().find(|s| s.len() == 8).unwrap();
        assert_eq!(large.encoding_cost(), 3);
        // Together the SMCs cover every place of the net.
        let covered: BTreeSet<PlaceId> = smcs
            .iter()
            .flat_map(|s| s.places().iter().copied())
            .collect();
        assert_eq!(covered.len(), net.num_places());
    }

    #[test]
    fn slotted_ring_components_cover_everything() {
        let net = slotted_ring(3);
        let smcs = find_smcs(&net).unwrap();
        let mut covered: BTreeSet<PlaceId> = BTreeSet::new();
        for smc in &smcs {
            covered.extend(smc.places().iter().copied());
        }
        assert_eq!(covered.len(), net.num_places());
    }

    #[test]
    fn encoding_cost_is_ceil_log2() {
        let net = dme(3, DmeStyle::Spec);
        let smcs = find_smcs(&net).unwrap();
        for smc in &smcs {
            let expected = (smc.len() as f64).log2().ceil() as u32;
            assert_eq!(smc.encoding_cost(), expected, "SMC of {} places", smc.len());
        }
    }

    #[test]
    fn output_and_input_place_lookup() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let smc1 = smcs
            .iter()
            .find(|s| s.contains(net.place_by_name("p2").unwrap()))
            .unwrap();
        let t1 = net.transition_by_name("t1").unwrap();
        assert_eq!(smc1.output_place_of(&net, t1), net.place_by_name("p2"));
        assert_eq!(smc1.input_place_of(&net, t1), net.place_by_name("p1"));
    }
}
