//! # pnsym-structural — structural theory of Petri nets
//!
//! The structural-analysis substrate of the `pnsym` workspace (a
//! reproduction of Pastor & Cortadella, *Efficient Encoding Schemes for
//! Symbolic Analysis of Petri Nets*, DATE 1998):
//!
//! * minimal semi-positive **P-invariants** via Farkas / Martínez–Silva
//!   elimination ([`minimal_invariants`]);
//! * **State Machine Component** extraction and validation ([`find_smcs`],
//!   [`check_smc`]), following Theorem 2.1 of the paper;
//! * the **unate covering** formulation of SMC selection
//!   ([`select_smc_cover`], Section 4.2), with greedy and exact solvers.
//!
//! ## Quick start
//!
//! ```
//! use pnsym_net::nets::figure1;
//! use pnsym_structural::{find_smcs, select_smc_cover, CoverStrategy};
//!
//! # fn main() -> Result<(), pnsym_structural::InvariantError> {
//! let net = figure1();
//! let smcs = find_smcs(&net)?;
//! assert_eq!(smcs.len(), 2);                        // Figure 2.e
//! let cover = select_smc_cover(&net, &smcs, CoverStrategy::Exact);
//! assert_eq!(cover.num_variables, 4);               // 2 bits per SMC
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod invariants;
mod smc;
mod tinvariants;

pub use cover::{select_smc_cover, CoverProblem, CoverStrategy, SmcCover};
pub use invariants::{
    minimal_invariants, minimal_invariants_with, Invariant, InvariantError, InvariantOptions,
};
pub use smc::{check_smc, find_smcs, find_smcs_with, smcs_from_invariants, Smc, SmcCheckError};
pub use tinvariants::{
    minimal_t_invariants, place_bounds, structurally_safe, uncovered_places, PlaceBound, TInvariant,
};
