//! Selection of SMCs by unate covering (Section 4.2 of the paper).
//!
//! The covering objects are the SMCs (cost `⌈log2 k⌉` for `k` places) plus
//! one singleton cover of cost 1 per place; the covered objects are the
//! places. A minimum-cost cover yields the basic SMC-based encoding of the
//! paper's Section 4.3; the overlap-aware *improved* scheme of Section 4.4
//! is built on top of this module in `pnsym-core`.

use crate::smc::Smc;
use pnsym_net::{PetriNet, PlaceId};
use std::collections::BTreeSet;

/// A generic unate covering problem: choose a minimum-cost subset of covers
/// such that every element in `0..num_elements` belongs to at least one
/// chosen cover.
#[derive(Debug, Clone)]
pub struct CoverProblem {
    num_elements: usize,
    covers: Vec<(Vec<usize>, u32)>,
}

impl CoverProblem {
    /// Creates a problem over `num_elements` elements with no covers yet.
    pub fn new(num_elements: usize) -> Self {
        CoverProblem {
            num_elements,
            covers: Vec::new(),
        }
    }

    /// Adds a cover (set of element indices and its cost); returns its index.
    ///
    /// # Panics
    ///
    /// Panics if any element index is out of range.
    pub fn add_cover(&mut self, elements: Vec<usize>, cost: u32) -> usize {
        assert!(
            elements.iter().all(|&e| e < self.num_elements),
            "cover element out of range"
        );
        self.covers.push((elements, cost));
        self.covers.len() - 1
    }

    /// Number of covers added so far.
    pub fn num_covers(&self) -> usize {
        self.covers.len()
    }

    /// Whether every element appears in at least one cover.
    pub fn is_coverable(&self) -> bool {
        let mut covered = vec![false; self.num_elements];
        for (elements, _) in &self.covers {
            for &e in elements {
                covered[e] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// Greedy heuristic: repeatedly pick the cover with the best
    /// cost-per-newly-covered-element ratio. Returns the chosen cover
    /// indices and the total cost, or `None` if the problem is not coverable.
    pub fn solve_greedy(&self) -> Option<(Vec<usize>, u32)> {
        if !self.is_coverable() {
            return None;
        }
        let mut uncovered: BTreeSet<usize> = (0..self.num_elements).collect();
        let mut chosen = Vec::new();
        let mut total = 0u32;
        while !uncovered.is_empty() {
            let mut best: Option<(usize, usize, u32)> = None; // (index, new, cost)
            for (i, (elements, cost)) in self.covers.iter().enumerate() {
                let new = elements.iter().filter(|e| uncovered.contains(e)).count();
                if new == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, bnew, bcost)) => {
                        // Compare cost/new ratios without floating point:
                        // cost * bnew < bcost * new, ties broken by more new.
                        (*cost as u64) * (bnew as u64) < (bcost as u64) * (new as u64)
                            || ((*cost as u64) * (bnew as u64) == (bcost as u64) * (new as u64)
                                && new > bnew)
                    }
                };
                if better {
                    best = Some((i, new, *cost));
                }
            }
            let (i, _, cost) = best?;
            for &e in &self.covers[i].0 {
                uncovered.remove(&e);
            }
            chosen.push(i);
            total += cost;
        }
        Some((chosen, total))
    }

    /// Exact branch-and-bound solver. Practical for up to a few dozen covers;
    /// falls back to the greedy bound for pruning.
    ///
    /// Returns the chosen cover indices and the optimal cost, or `None` if
    /// the problem is not coverable.
    pub fn solve_exact(&self) -> Option<(Vec<usize>, u32)> {
        let (greedy_choice, greedy_cost) = self.solve_greedy()?;
        let mut best_cost = greedy_cost;
        let mut best_choice = greedy_choice;
        // Order covers by decreasing "elements per cost" so good solutions
        // are found early.
        let mut order: Vec<usize> = (0..self.covers.len()).collect();
        order.sort_by_key(|&i| {
            let (elements, cost) = &self.covers[i];
            // Higher elements/cost first -> smaller key first.
            (u64::from(*cost) << 32) / (elements.len().max(1) as u64 + 1)
        });
        let all: BTreeSet<usize> = (0..self.num_elements).collect();
        let mut chosen: Vec<usize> = Vec::new();
        self.branch(
            &order,
            0,
            &all,
            0,
            &mut chosen,
            &mut best_cost,
            &mut best_choice,
        );
        Some((best_choice, best_cost))
    }

    #[allow(clippy::too_many_arguments)]
    fn branch(
        &self,
        order: &[usize],
        depth: usize,
        uncovered: &BTreeSet<usize>,
        cost_so_far: u32,
        chosen: &mut Vec<usize>,
        best_cost: &mut u32,
        best_choice: &mut Vec<usize>,
    ) {
        if uncovered.is_empty() {
            if cost_so_far < *best_cost {
                *best_cost = cost_so_far;
                *best_choice = chosen.clone();
            }
            return;
        }
        if cost_so_far >= *best_cost || depth == order.len() {
            return;
        }
        // Pick the lowest uncovered element; every solution must cover it.
        let target = *uncovered.iter().next().expect("non-empty");
        for &i in &order[depth..] {
            let (elements, cost) = &self.covers[i];
            if !elements.contains(&target) {
                continue;
            }
            if cost_so_far + cost >= *best_cost {
                continue;
            }
            let mut remaining = uncovered.clone();
            for e in elements {
                remaining.remove(e);
            }
            chosen.push(i);
            self.branch(
                order,
                depth,
                &remaining,
                cost_so_far + cost,
                chosen,
                best_cost,
                best_choice,
            );
            chosen.pop();
        }
    }
}

/// The result of selecting SMCs to encode a net (Section 4.2 / 4.3).
#[derive(Debug, Clone)]
pub struct SmcCover {
    /// The chosen SMCs (indices into the candidate list passed to
    /// [`select_smc_cover`]).
    pub chosen: Vec<usize>,
    /// Places not covered by any chosen SMC; they receive one variable each.
    pub singleton_places: Vec<PlaceId>,
    /// Total number of boolean variables of the resulting basic encoding.
    pub num_variables: u32,
}

/// Strategy used to solve the covering problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverStrategy {
    /// Greedy ratio heuristic (fast, near-optimal on the benchmark nets).
    #[default]
    Greedy,
    /// Exact branch-and-bound (exponential worst case; use for small nets).
    Exact,
}

/// Selects a subset of candidate SMCs minimising the variable count of the
/// basic SMC encoding: each chosen SMC of `k` places costs `⌈log2 k⌉`
/// variables and every uncovered place costs one variable.
///
/// Only SMCs holding exactly one initial token are usable; others are
/// ignored.
pub fn select_smc_cover(net: &PetriNet, candidates: &[Smc], strategy: CoverStrategy) -> SmcCover {
    let usable: Vec<(usize, &Smc)> = candidates
        .iter()
        .enumerate()
        .filter(|(_, smc)| smc.initial_tokens() == 1)
        .collect();
    let mut problem = CoverProblem::new(net.num_places());
    // Cover index space: first the usable SMCs, then one singleton per place.
    for (_, smc) in &usable {
        problem.add_cover(
            smc.places().iter().map(|p| p.index()).collect(),
            smc.encoding_cost(),
        );
    }
    for p in net.places() {
        problem.add_cover(vec![p.index()], 1);
    }
    let (chosen_covers, _cost) = match strategy {
        CoverStrategy::Greedy => problem.solve_greedy(),
        CoverStrategy::Exact => problem.solve_exact(),
    }
    .expect("singleton covers make every instance coverable");

    let mut chosen = Vec::new();
    let mut covered: BTreeSet<PlaceId> = BTreeSet::new();
    for &c in &chosen_covers {
        if c < usable.len() {
            let (orig_index, smc) = usable[c];
            chosen.push(orig_index);
            covered.extend(smc.places().iter().copied());
        }
    }
    // Every place not covered by a chosen SMC is a singleton, including
    // places whose singleton cover was chosen explicitly.
    let singleton_places: Vec<PlaceId> = net.places().filter(|p| !covered.contains(p)).collect();
    let num_variables = chosen
        .iter()
        .map(|&i| candidates[i].encoding_cost())
        .sum::<u32>()
        + singleton_places.len() as u32;
    SmcCover {
        chosen,
        singleton_places,
        num_variables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smc::find_smcs;
    use pnsym_net::nets::{dme, figure1, muller, philosophers, DmeStyle};

    #[test]
    fn greedy_and_exact_agree_on_small_problems() {
        let mut p = CoverProblem::new(4);
        p.add_cover(vec![0, 1], 1);
        p.add_cover(vec![2, 3], 1);
        p.add_cover(vec![0, 1, 2, 3], 3);
        let (_, greedy_cost) = p.solve_greedy().unwrap();
        let (choice, exact_cost) = p.solve_exact().unwrap();
        assert_eq!(exact_cost, 2);
        assert!(greedy_cost >= exact_cost);
        assert_eq!(choice.len(), 2);
    }

    #[test]
    fn exact_beats_greedy_when_ratio_misleads() {
        // Greedy picks the big cover first (ratio 3/5 < 1), then needs two
        // singletons; exact uses the two cost-1 covers plus singleton.
        let mut p = CoverProblem::new(5);
        p.add_cover(vec![0, 1, 2, 3, 4], 3);
        p.add_cover(vec![0, 1], 1);
        p.add_cover(vec![2, 3], 1);
        p.add_cover(vec![4], 1);
        let (_, exact_cost) = p.solve_exact().unwrap();
        assert_eq!(exact_cost, 3);
    }

    #[test]
    fn uncoverable_problem_returns_none() {
        let mut p = CoverProblem::new(3);
        p.add_cover(vec![0, 1], 1);
        assert!(!p.is_coverable());
        assert!(p.solve_greedy().is_none());
        assert!(p.solve_exact().is_none());
    }

    #[test]
    fn figure1_cover_uses_both_smcs() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let cover = select_smc_cover(&net, &smcs, CoverStrategy::Exact);
        assert_eq!(cover.chosen.len(), 2);
        assert!(cover.singleton_places.is_empty());
        assert_eq!(cover.num_variables, 4, "two SMCs of 4 places, 2 bits each");
    }

    #[test]
    fn philosophers_cover_matches_section_4_3() {
        // Section 4.3: SM1, SM3, SM4 (the paper picks 3 SMCs) + 4 singleton
        // places, 10 variables in total.  In our 7-place-per-philosopher
        // model the same covering logic applies: the basic scheme must not
        // use more variables than one-per-place and at least halve it.
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        let cover = select_smc_cover(&net, &smcs, CoverStrategy::Exact);
        assert!(cover.num_variables < 14);
        assert!(cover.num_variables <= 10);
    }

    #[test]
    fn muller_cover_halves_the_variables() {
        let net = muller(6);
        let smcs = find_smcs(&net).unwrap();
        let cover = select_smc_cover(&net, &smcs, CoverStrategy::Greedy);
        assert_eq!(cover.num_variables, 12, "2 bits per 4-place stage");
        assert!(cover.singleton_places.is_empty());
    }

    #[test]
    fn dme_cover_prefers_the_large_token_component() {
        let net = dme(4, DmeStyle::Spec);
        let smcs = find_smcs(&net).unwrap();
        let cover = select_smc_cover(&net, &smcs, CoverStrategy::Greedy);
        // Per cell: the user SMC (2 bits) and the preparation SMC (2 bits);
        // plus the token SMC (3 bits) = 19 variables, far below the 28
        // places of the sparse encoding.
        assert!(cover.num_variables <= 19);
        assert!(cover.singleton_places.is_empty());
    }
}
