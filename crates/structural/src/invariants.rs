//! Computation of semi-positive P-invariants by the Farkas /
//! Martínez–Silva elimination algorithm.
//!
//! A P-invariant is a vector `I` over the places with `Iᵀ·C = 0`; a
//! semi-positive invariant is non-negative and non-zero; a *minimal*
//! invariant has no other semi-positive invariant with strictly smaller
//! support. Minimal invariants with unit weights and one initial token are
//! the raw material for State-Machine-Component extraction (Section 2.2 of
//! the paper).

use pnsym_net::{IncidenceMatrix, Marking, PetriNet, PlaceId};
use std::collections::BTreeSet;
use std::fmt;

/// A place-indexed weight vector forming a P-invariant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Invariant {
    weights: Vec<i64>,
}

impl Invariant {
    /// Creates an invariant from raw weights (one per place).
    pub fn new(weights: Vec<i64>) -> Self {
        Invariant { weights }
    }

    /// The weight assigned to each place.
    pub fn weights(&self) -> &[i64] {
        &self.weights
    }

    /// The weight of a single place.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn weight(&self, p: PlaceId) -> i64 {
        self.weights[p.index()]
    }

    /// The support `⟨I⟩`: places with a strictly positive weight.
    pub fn support(&self) -> Vec<PlaceId> {
        self.weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, _)| PlaceId(i as u32))
            .collect()
    }

    /// Whether all weights are non-negative and at least one is positive.
    pub fn is_semi_positive(&self) -> bool {
        self.weights.iter().all(|&w| w >= 0) && self.weights.iter().any(|&w| w > 0)
    }

    /// Whether every support place has weight exactly one.
    pub fn has_unit_weights(&self) -> bool {
        self.weights.iter().all(|&w| w == 0 || w == 1)
    }

    /// The weighted token count `I·M` of a marking — constant over all
    /// reachable markings when `I` is a P-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the marking ranges over a different number of places.
    pub fn token_count(&self, marking: &Marking) -> i64 {
        assert_eq!(marking.num_places(), self.weights.len());
        self.weights
            .iter()
            .enumerate()
            .map(|(i, &w)| w * i64::from(marking.is_marked(PlaceId(i as u32))))
            .sum()
    }

    /// Verifies `Iᵀ·C = 0` against the given net.
    pub fn verify(&self, net: &PetriNet) -> bool {
        IncidenceMatrix::from_net(net).is_p_invariant(&self.weights)
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, "]")
    }
}

/// Errors reported by the invariant computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantError {
    /// The intermediate tableau grew beyond the configured row limit.
    RowLimit {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantError::RowLimit { limit } => {
                write!(f, "invariant tableau exceeded {limit} rows")
            }
        }
    }
}

impl std::error::Error for InvariantError {}

/// Options for the Farkas elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantOptions {
    /// Abort if the working tableau ever holds more rows than this.
    pub max_rows: usize,
}

impl Default for InvariantOptions {
    fn default() -> Self {
        InvariantOptions { max_rows: 200_000 }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

fn normalize(row: &mut [i64]) {
    let g = row.iter().fold(0i64, |acc, &x| gcd(acc, x));
    if g > 1 {
        for x in row.iter_mut() {
            *x /= g;
        }
    }
}

/// One row of the Farkas tableau: the remaining incidence part plus the
/// accumulated invariant weights.
#[derive(Clone)]
struct Row {
    incidence: Vec<i64>,
    weights: Vec<i64>,
    support: BTreeSet<u32>,
}

impl Row {
    fn renormalize(&mut self) {
        let g = self
            .incidence
            .iter()
            .chain(self.weights.iter())
            .fold(0i64, |acc, &x| gcd(acc, x));
        if g > 1 {
            for x in self.incidence.iter_mut().chain(self.weights.iter_mut()) {
                *x /= g;
            }
        }
        self.support = self
            .weights
            .iter()
            .enumerate()
            .filter(|&(_, &w)| w > 0)
            .map(|(i, _)| i as u32)
            .collect();
    }
}

/// Computes the minimal semi-positive P-invariants of `net` with default
/// [`InvariantOptions`].
///
/// # Errors
///
/// See [`minimal_invariants_with`].
pub fn minimal_invariants(net: &PetriNet) -> Result<Vec<Invariant>, InvariantError> {
    minimal_invariants_with(net, InvariantOptions::default())
}

/// Computes the minimal semi-positive P-invariants of `net`.
///
/// The result is normalised (weights divided by their gcd) and sorted by
/// support. Every returned vector satisfies `Iᵀ·C = 0`, is semi-positive,
/// and no returned support strictly contains another returned support.
///
/// # Errors
///
/// Returns [`InvariantError::RowLimit`] if the intermediate tableau exceeds
/// `options.max_rows` rows (possible for nets whose minimal invariants are
/// exponentially many).
pub fn minimal_invariants_with(
    net: &PetriNet,
    options: InvariantOptions,
) -> Result<Vec<Invariant>, InvariantError> {
    let matrix = IncidenceMatrix::from_net(net);
    let num_places = net.num_places();
    let num_transitions = net.num_transitions();

    let mut rows: Vec<Row> = (0..num_places)
        .map(|p| {
            let mut weights = vec![0i64; num_places];
            weights[p] = 1;
            Row {
                incidence: matrix.row(PlaceId(p as u32)).to_vec(),
                weights,
                support: std::iter::once(p as u32).collect(),
            }
        })
        .collect();

    for t in 0..num_transitions {
        let mut zero_rows: Vec<Row> = Vec::new();
        let mut pos_rows: Vec<Row> = Vec::new();
        let mut neg_rows: Vec<Row> = Vec::new();
        for row in rows.drain(..) {
            match row.incidence[t].cmp(&0) {
                std::cmp::Ordering::Equal => zero_rows.push(row),
                std::cmp::Ordering::Greater => pos_rows.push(row),
                std::cmp::Ordering::Less => neg_rows.push(row),
            }
        }
        let mut new_rows = zero_rows;
        for pos in &pos_rows {
            for neg in &neg_rows {
                let a = pos.incidence[t];
                let b = -neg.incidence[t];
                debug_assert!(a > 0 && b > 0);
                let mut incidence: Vec<i64> = pos
                    .incidence
                    .iter()
                    .zip(&neg.incidence)
                    .map(|(x, y)| b * x + a * y)
                    .collect();
                debug_assert_eq!(incidence[t], 0);
                let mut weights: Vec<i64> = pos
                    .weights
                    .iter()
                    .zip(&neg.weights)
                    .map(|(x, y)| b * x + a * y)
                    .collect();
                normalize(&mut incidence);
                normalize(&mut weights);
                let mut row = Row {
                    incidence,
                    weights,
                    support: BTreeSet::new(),
                };
                row.renormalize();
                new_rows.push(row);
                if new_rows.len() > options.max_rows {
                    return Err(InvariantError::RowLimit {
                        limit: options.max_rows,
                    });
                }
            }
        }
        // Prune duplicates and rows whose support strictly contains the
        // support of another row (they can never lead to minimal-support
        // invariants that the smaller row does not already lead to).
        new_rows.sort_by_key(|r| (r.support.len(), r.support.clone(), r.weights.clone()));
        new_rows.dedup_by(|a, b| a.weights == b.weights && a.incidence == b.incidence);
        let mut kept: Vec<Row> = Vec::with_capacity(new_rows.len());
        for row in new_rows {
            let redundant = kept
                .iter()
                .any(|k| k.support.len() < row.support.len() && k.support.is_subset(&row.support));
            if !redundant {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let mut invariants: Vec<Invariant> = rows
        .into_iter()
        .filter(|r| r.weights.iter().any(|&w| w > 0))
        .map(|r| Invariant::new(r.weights))
        .collect();

    // Final minimality filter on supports.
    invariants.sort_by_key(|i| i.support().len());
    let mut minimal: Vec<Invariant> = Vec::new();
    for inv in invariants {
        let support: BTreeSet<PlaceId> = inv.support().into_iter().collect();
        let dominated = minimal.iter().any(|m| {
            let ms: BTreeSet<PlaceId> = m.support().into_iter().collect();
            ms.is_subset(&support) && ms.len() < support.len()
        });
        let duplicate = minimal.iter().any(|m| m.weights() == inv.weights());
        if !dominated && !duplicate {
            minimal.push(inv);
        }
    }
    minimal.sort_by_key(|i| i.support());
    Ok(minimal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets::{dme, figure1, muller, philosophers, slotted_ring, DmeStyle};

    #[test]
    fn figure1_has_the_two_paper_invariants() {
        let net = figure1();
        let invs = minimal_invariants(&net).unwrap();
        assert_eq!(invs.len(), 2);
        let mut weight_sets: Vec<Vec<i64>> = invs.iter().map(|i| i.weights().to_vec()).collect();
        weight_sets.sort();
        assert_eq!(
            weight_sets,
            vec![
                vec![1, 0, 1, 0, 1, 0, 1], // I2 = {p1, p3, p5, p7}
                vec![1, 1, 0, 1, 0, 1, 0], // I1 = {p1, p2, p4, p6}
            ]
        );
        for inv in &invs {
            assert!(inv.verify(&net));
            assert!(inv.is_semi_positive());
            assert!(inv.has_unit_weights());
            assert_eq!(inv.token_count(net.initial_marking()), 1);
        }
    }

    #[test]
    fn every_computed_invariant_verifies() {
        let nets = vec![
            philosophers(3),
            muller(4),
            slotted_ring(3),
            dme(3, DmeStyle::Spec),
            dme(2, DmeStyle::Circuit),
        ];
        for net in nets {
            let invs = minimal_invariants(&net).unwrap();
            assert!(!invs.is_empty(), "{} should have invariants", net.name());
            for inv in &invs {
                assert!(inv.verify(&net), "invariant {inv} of {}", net.name());
                assert!(inv.is_semi_positive());
            }
        }
    }

    #[test]
    fn philosophers_invariant_counts() {
        // Per philosopher: the two branch SMCs; per fork: one invariant.
        let net = philosophers(2);
        let invs = minimal_invariants(&net).unwrap();
        assert_eq!(invs.len(), 6, "2 branches x 2 philosophers + 2 forks");
        for inv in &invs {
            assert_eq!(inv.token_count(net.initial_marking()), 1);
        }
    }

    #[test]
    fn muller_invariants_are_per_stage() {
        let net = muller(5);
        let invs = minimal_invariants(&net).unwrap();
        assert_eq!(invs.len(), 5);
        for inv in &invs {
            assert_eq!(inv.support().len(), 4);
            assert!(inv.has_unit_weights());
        }
    }

    #[test]
    fn supports_are_minimal() {
        let net = philosophers(3);
        let invs = minimal_invariants(&net).unwrap();
        for (i, a) in invs.iter().enumerate() {
            for (j, b) in invs.iter().enumerate() {
                if i == j {
                    continue;
                }
                let sa: BTreeSet<_> = a.support().into_iter().collect();
                let sb: BTreeSet<_> = b.support().into_iter().collect();
                assert!(
                    !(sa.is_subset(&sb) && sa.len() < sb.len()),
                    "support of invariant {i} is contained in {j}"
                );
            }
        }
    }

    #[test]
    fn row_limit_is_reported() {
        let net = philosophers(4);
        let err = minimal_invariants_with(&net, InvariantOptions { max_rows: 2 }).unwrap_err();
        assert!(matches!(err, InvariantError::RowLimit { limit: 2 }));
    }

    #[test]
    fn token_count_is_preserved_along_runs() {
        let net = figure1();
        let invs = minimal_invariants(&net).unwrap();
        let rg = net.explore().unwrap();
        for inv in &invs {
            let expected = inv.token_count(net.initial_marking());
            for m in rg.markings() {
                assert_eq!(inv.token_count(m), expected);
            }
        }
    }
}
