//! Behavioural properties checked on the explicit reachability graph:
//! safety, deadlock freedom, liveness of transitions, and basic statistics.

use crate::ids::TransitionId;
use crate::net::PetriNet;
use crate::reach::{ExploreError, ExploreOptions, ReachabilityGraph};

/// A summary of behavioural properties of a net, computed explicitly.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviourReport {
    /// Number of reachable markings.
    pub num_markings: usize,
    /// Number of reachability-graph edges.
    pub num_edges: usize,
    /// Number of reachable deadlock markings.
    pub num_deadlocks: usize,
    /// Transitions that never fire in any reachable marking.
    pub dead_transitions: Vec<TransitionId>,
    /// Maximum number of tokens observed in any reachable marking.
    pub max_tokens: usize,
    /// Average number of transitions enabled per reachable marking.
    pub avg_enabled: f64,
}

impl PetriNet {
    /// Computes a [`BehaviourReport`] by explicit exploration.
    ///
    /// # Errors
    ///
    /// Propagates [`ExploreError`] from the underlying exploration.
    pub fn behaviour_report(
        &self,
        options: ExploreOptions,
    ) -> Result<BehaviourReport, ExploreError> {
        let rg = self.explore_with(options)?;
        Ok(self.behaviour_report_from(&rg))
    }

    /// Computes a [`BehaviourReport`] from an already-built reachability
    /// graph.
    pub fn behaviour_report_from(&self, rg: &ReachabilityGraph) -> BehaviourReport {
        let mut fired = vec![false; self.num_transitions()];
        for &(_, t, _) in rg.edges() {
            fired[t.index()] = true;
        }
        let dead_transitions = self.transitions().filter(|t| !fired[t.index()]).collect();
        let mut total_enabled = 0usize;
        let mut num_deadlocks = 0usize;
        let mut max_tokens = 0usize;
        for m in rg.markings() {
            let enabled = self.enabled_transitions(m).len();
            total_enabled += enabled;
            if enabled == 0 {
                num_deadlocks += 1;
            }
            max_tokens = max_tokens.max(m.token_count());
        }
        BehaviourReport {
            num_markings: rg.num_markings(),
            num_edges: rg.num_edges(),
            num_deadlocks,
            dead_transitions,
            max_tokens,
            avg_enabled: total_enabled as f64 / rg.num_markings() as f64,
        }
    }

    /// Whether the net is safe, decided by explicit exploration.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::StateLimit`] if the exploration budget is
    /// exceeded before an answer is known.
    pub fn is_safe(&self, options: ExploreOptions) -> Result<bool, ExploreError> {
        match self.explore_with(options) {
            Ok(_) => Ok(true),
            Err(ExploreError::Unsafe(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;
    use crate::nets::{figure1, philosophers};

    #[test]
    fn figure1_report() {
        let net = figure1();
        let report = net.behaviour_report(ExploreOptions::default()).unwrap();
        assert_eq!(report.num_markings, 8);
        assert_eq!(report.num_edges, 11);
        assert_eq!(report.num_deadlocks, 0);
        assert!(report.dead_transitions.is_empty());
        assert_eq!(report.max_tokens, 2);
        assert!(report.avg_enabled > 1.0);
    }

    #[test]
    fn philosophers_have_the_classic_deadlock() {
        let net = philosophers(2);
        let report = net.behaviour_report(ExploreOptions::default()).unwrap();
        assert!(report.num_deadlocks > 0, "both grab their left fork");
        assert!(report.dead_transitions.is_empty());
    }

    #[test]
    fn dead_transition_is_reported() {
        let mut b = NetBuilder::new("dead-t");
        let a = b.place_marked("a");
        let c = b.place("c");
        let d = b.place("d");
        b.transition("live", &[a], &[c]);
        b.transition("dead", &[d], &[a]);
        let net = b.build().unwrap();
        let report = net.behaviour_report(ExploreOptions::default()).unwrap();
        assert_eq!(report.dead_transitions.len(), 1);
        assert_eq!(report.num_deadlocks, 1);
    }

    #[test]
    fn safety_check() {
        let net = figure1();
        assert!(net.is_safe(ExploreOptions::default()).unwrap());
        let mut b = NetBuilder::new("unsafe");
        let a = b.place_marked("a");
        let c = b.place_marked("c");
        let d = b.place("d");
        b.transition("t1", &[a], &[d]);
        b.transition("t2", &[c], &[d]);
        let bad = b.build().unwrap();
        assert!(!bad.is_safe(ExploreOptions::default()).unwrap());
    }
}
