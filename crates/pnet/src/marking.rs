//! Markings of safe Petri nets, represented as fixed-width bitsets.

use crate::ids::PlaceId;
use std::fmt;

/// A marking of a *safe* Petri net: the set of places holding a token.
///
/// Internally a bitset sized for a fixed number of places. Markings of the
/// same net compare equal iff the same places are marked.
///
/// # Examples
///
/// ```
/// use pnsym_net::{Marking, PlaceId};
/// let mut m = Marking::empty(5);
/// m.set(PlaceId(1), true);
/// m.set(PlaceId(3), true);
/// assert!(m.is_marked(PlaceId(1)));
/// assert!(!m.is_marked(PlaceId(0)));
/// assert_eq!(m.token_count(), 2);
/// assert_eq!(m.marked_places(), vec![PlaceId(1), PlaceId(3)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Marking {
    num_places: u32,
    bits: Vec<u64>,
}

impl Marking {
    /// The empty marking over `num_places` places.
    pub fn empty(num_places: usize) -> Self {
        Marking {
            num_places: num_places as u32,
            bits: vec![0; num_places.div_ceil(64)],
        }
    }

    /// A marking with the given places set.
    ///
    /// # Panics
    ///
    /// Panics if any place index is out of range.
    pub fn from_places(num_places: usize, places: &[PlaceId]) -> Self {
        let mut m = Self::empty(num_places);
        for &p in places {
            m.set(p, true);
        }
        m
    }

    /// Number of places this marking ranges over.
    pub fn num_places(&self) -> usize {
        self.num_places as usize
    }

    /// Whether place `p` holds a token.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn is_marked(&self, p: PlaceId) -> bool {
        assert!(p.0 < self.num_places, "place {p} out of range");
        self.bits[p.index() / 64] & (1u64 << (p.index() % 64)) != 0
    }

    /// Sets or clears the token in place `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn set(&mut self, p: PlaceId, marked: bool) {
        assert!(p.0 < self.num_places, "place {p} out of range");
        let (word, bit) = (p.index() / 64, p.index() % 64);
        if marked {
            self.bits[word] |= 1u64 << bit;
        } else {
            self.bits[word] &= !(1u64 << bit);
        }
    }

    /// Total number of tokens.
    pub fn token_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The marked places in increasing index order.
    pub fn marked_places(&self) -> Vec<PlaceId> {
        self.iter().collect()
    }

    /// Iterates over the marked places in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.num_places)
            .map(PlaceId)
            .filter(|&p| self.is_marked(p))
    }

    /// Number of places whose content differs between `self` and `other`
    /// (the Hamming distance between the two markings).
    ///
    /// # Panics
    ///
    /// Panics if the two markings range over different numbers of places.
    pub fn hamming_distance(&self, other: &Marking) -> usize {
        assert_eq!(
            self.num_places, other.num_places,
            "markings of different nets"
        );
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }
}

impl fmt::Display for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = Marking::empty(130);
        m.set(PlaceId(0), true);
        m.set(PlaceId(64), true);
        m.set(PlaceId(129), true);
        assert!(m.is_marked(PlaceId(0)));
        assert!(m.is_marked(PlaceId(64)));
        assert!(m.is_marked(PlaceId(129)));
        assert!(!m.is_marked(PlaceId(1)));
        assert_eq!(m.token_count(), 3);
        m.set(PlaceId(64), false);
        assert!(!m.is_marked(PlaceId(64)));
        assert_eq!(m.token_count(), 2);
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Marking::from_places(10, &[PlaceId(2), PlaceId(5)]);
        let b = Marking::from_places(10, &[PlaceId(5), PlaceId(2)]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn hamming_distance() {
        let a = Marking::from_places(8, &[PlaceId(0), PlaceId(3)]);
        let b = Marking::from_places(8, &[PlaceId(0), PlaceId(4)]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn display_lists_marked_places() {
        let m = Marking::from_places(8, &[PlaceId(1), PlaceId(6)]);
        assert_eq!(m.to_string(), "{p1, p6}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let m = Marking::empty(4);
        let _ = m.is_marked(PlaceId(4));
    }
}
