//! The incidence matrix `C : P × T → {-1, 0, 1}` and the state equation.

use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;
use std::fmt;

/// The incidence matrix of a Petri net, stored densely with one row per
/// place and one column per transition.
///
/// `C[p][t] = +1` if `t` produces into `p`, `-1` if it consumes from `p`
/// (and `0` for self-loops, i.e. `p ∈ •t ∩ t•`, as in the ordinary-net
/// definition `C(·,t) = [t•] − [•t]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidenceMatrix {
    num_places: usize,
    num_transitions: usize,
    entries: Vec<i64>,
}

impl IncidenceMatrix {
    /// Builds the incidence matrix of `net`.
    pub fn from_net(net: &PetriNet) -> Self {
        let num_places = net.num_places();
        let num_transitions = net.num_transitions();
        let mut entries = vec![0i64; num_places * num_transitions];
        for t in net.transitions() {
            for p in net.places() {
                entries[p.index() * num_transitions + t.index()] = net.incidence_entry(p, t);
            }
        }
        IncidenceMatrix {
            num_places,
            num_transitions,
            entries,
        }
    }

    /// Number of rows (places).
    pub fn num_places(&self) -> usize {
        self.num_places
    }

    /// Number of columns (transitions).
    pub fn num_transitions(&self) -> usize {
        self.num_transitions
    }

    /// The entry `C(p, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `t` is out of range.
    pub fn entry(&self, p: PlaceId, t: TransitionId) -> i64 {
        assert!(p.index() < self.num_places && t.index() < self.num_transitions);
        self.entries[p.index() * self.num_transitions + t.index()]
    }

    /// The row of place `p` as a vector indexed by transition.
    pub fn row(&self, p: PlaceId) -> &[i64] {
        let start = p.index() * self.num_transitions;
        &self.entries[start..start + self.num_transitions]
    }

    /// Evaluates the state equation `M' = M + C·σ⃗` for a firing-count vector
    /// `sigma` (one entry per transition), returning the token count each
    /// place would have. Negative intermediate results are allowed here; the
    /// caller decides whether the vector is realisable.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` does not have one entry per transition.
    pub fn apply_state_equation(&self, m: &Marking, sigma: &[i64]) -> Vec<i64> {
        assert_eq!(
            sigma.len(),
            self.num_transitions,
            "wrong firing vector size"
        );
        (0..self.num_places)
            .map(|p| {
                let place = PlaceId(p as u32);
                let base = i64::from(m.is_marked(place));
                base + self
                    .row(place)
                    .iter()
                    .zip(sigma)
                    .map(|(c, s)| c * s)
                    .sum::<i64>()
            })
            .collect()
    }

    /// Computes `I^T · C` for a weight vector `I` indexed by place: the
    /// vector that must be all zeroes for `I` to be a P-invariant.
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not have one entry per place.
    pub fn weighted_column_sums(&self, weights: &[i64]) -> Vec<i64> {
        assert_eq!(weights.len(), self.num_places, "wrong weight vector size");
        (0..self.num_transitions)
            .map(|t| {
                (0..self.num_places)
                    .map(|p| weights[p] * self.entries[p * self.num_transitions + t])
                    .sum()
            })
            .collect()
    }

    /// Whether `weights` is a P-invariant (`I^T · C = 0`).
    pub fn is_p_invariant(&self, weights: &[i64]) -> bool {
        self.weighted_column_sums(weights).iter().all(|&x| x == 0)
    }
}

impl fmt::Display for IncidenceMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in 0..self.num_places {
            for t in 0..self.num_transitions {
                write!(f, "{:3}", self.entries[p * self.num_transitions + t])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::figure1;

    #[test]
    fn matches_the_paper_matrix() {
        // The incidence matrix printed in Section 2.1 of the paper.
        let expected: [[i64; 7]; 7] = [
            [-1, -1, 0, 0, 0, 0, 1],
            [1, 0, -1, 0, 0, 0, 0],
            [1, 0, 0, -1, 0, 0, 0],
            [0, 1, 0, 0, -1, 0, 0],
            [0, 1, 0, 0, 0, -1, 0],
            [0, 0, 1, 0, 1, 0, -1],
            [0, 0, 0, 1, 0, 1, -1],
        ];
        let net = figure1();
        let c = IncidenceMatrix::from_net(&net);
        for (pi, row) in expected.iter().enumerate() {
            for (ti, &v) in row.iter().enumerate() {
                assert_eq!(
                    c.entry(PlaceId(pi as u32), TransitionId(ti as u32)),
                    v,
                    "entry ({pi},{ti})"
                );
            }
        }
    }

    #[test]
    fn paper_invariants_check_out() {
        let net = figure1();
        let c = IncidenceMatrix::from_net(&net);
        assert!(c.is_p_invariant(&[2, 1, 1, 1, 1, 1, 1]));
        assert!(c.is_p_invariant(&[1, 1, 0, 1, 0, 1, 0]));
        assert!(c.is_p_invariant(&[1, 0, 1, 0, 1, 0, 1]));
        assert!(!c.is_p_invariant(&[1, 0, 0, 0, 0, 0, 0]));
    }

    #[test]
    fn state_equation_tracks_firing() {
        let net = figure1();
        let c = IncidenceMatrix::from_net(&net);
        let m0 = net.initial_marking();
        // Firing t1 once: p1 loses its token, p2 and p3 gain one.
        let mut sigma = vec![0i64; net.num_transitions()];
        sigma[0] = 1;
        let m1 = c.apply_state_equation(m0, &sigma);
        assert_eq!(m1, vec![0, 1, 1, 0, 0, 0, 0]);
        // The full cycle t1 t3 t4 t7 returns to the initial marking.
        let mut cycle = vec![0i64; net.num_transitions()];
        for t in [0usize, 2, 3, 6] {
            cycle[t] = 1;
        }
        let back = c.apply_state_equation(m0, &cycle);
        assert_eq!(back, vec![1, 0, 0, 0, 0, 0, 0]);
    }
}
