//! Typed identifiers for places and transitions.

use std::fmt;

/// Index of a place within a [`PetriNet`](crate::PetriNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub u32);

impl PlaceId {
    /// The numeric index of the place.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a transition within a [`PetriNet`](crate::PetriNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub u32);

impl TransitionId {
    /// The numeric index of the transition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(PlaceId(3).to_string(), "p3");
        assert_eq!(TransitionId(7).to_string(), "t7");
        assert_eq!(PlaceId(3).index(), 3);
        assert_eq!(TransitionId(7).index(), 7);
    }
}
