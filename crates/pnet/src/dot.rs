//! Graphviz DOT export of Petri nets and reachability graphs.

use crate::net::PetriNet;
use crate::reach::ReachabilityGraph;
use std::fmt::Write as _;

impl PetriNet {
    /// Renders the net as a Graphviz DOT digraph: places as circles
    /// (double-circled when initially marked), transitions as boxes, and the
    /// flow relation as arcs.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph petri_net {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  label=\"{}\";", self.name());
        for p in self.places() {
            let shape = if self.initial_marking().is_marked(p) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(
                out,
                "  place{} [label=\"{}\", shape={shape}];",
                p.index(),
                self.place_name(p)
            );
        }
        for t in self.transitions() {
            let _ = writeln!(
                out,
                "  trans{} [label=\"{}\", shape=box, style=filled, fillcolor=lightgrey];",
                t.index(),
                self.transition_name(t)
            );
            for &p in self.pre_set(t) {
                let _ = writeln!(out, "  place{} -> trans{};", p.index(), t.index());
            }
            for &p in self.post_set(t) {
                let _ = writeln!(out, "  trans{} -> place{};", t.index(), p.index());
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

impl ReachabilityGraph {
    /// Renders the reachability graph as a Graphviz DOT digraph, labelling
    /// nodes with the marked places and edges with the fired transition
    /// (the layout of Figure 1.b of the paper).
    pub fn to_dot(&self, net: &PetriNet) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph reachability {{");
        let _ = writeln!(out, "  rankdir=TB;");
        for (i, m) in self.markings().iter().enumerate() {
            let label: Vec<&str> = m.iter().map(|p| net.place_name(p)).collect();
            let shape = if i == 0 { "doubleoctagon" } else { "ellipse" };
            let _ = writeln!(
                out,
                "  m{i} [label=\"M{i}: {{{}}}\", shape={shape}];",
                label.join(",")
            );
        }
        for &(src, t, dst) in self.edges() {
            let _ = writeln!(
                out,
                "  m{src} -> m{dst} [label=\"{}\"];",
                net.transition_name(t)
            );
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::nets::figure1;

    #[test]
    fn net_dot_mentions_every_node() {
        let net = figure1();
        let dot = net.to_dot();
        assert!(dot.starts_with("digraph"));
        for p in net.places() {
            assert!(dot.contains(net.place_name(p)));
        }
        for t in net.transitions() {
            assert!(dot.contains(net.transition_name(t)));
        }
        assert!(dot.contains("doublecircle"), "p1 is initially marked");
    }

    #[test]
    fn reachability_dot_has_all_markings_and_edges() {
        let net = figure1();
        let rg = net.explore().unwrap();
        let dot = rg.to_dot(&net);
        assert_eq!(dot.matches("shape=ellipse").count(), 7);
        assert_eq!(dot.matches("shape=doubleoctagon").count(), 1);
        assert_eq!(dot.matches(" -> ").count(), 11);
    }
}
