//! The [`PetriNet`] structure: places, transitions, flow relation, initial
//! marking, and the token-game semantics (enabling and firing).

use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use std::collections::BTreeSet;
use std::fmt;

/// An ordinary Petri net `N = (P, T, F, M0)` restricted to safe behaviour.
///
/// Places and transitions carry human-readable names. The flow relation is
/// stored as pre-set / post-set adjacency lists on both sides.
///
/// Construct nets with a [`NetBuilder`](crate::NetBuilder), a generator from
/// [`nets`](crate::nets), or by parsing the [`text format`](crate::format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PetriNet {
    pub(crate) name: String,
    pub(crate) place_names: Vec<String>,
    pub(crate) transition_names: Vec<String>,
    /// For each transition, the sorted list of input places.
    pub(crate) pre: Vec<Vec<PlaceId>>,
    /// For each transition, the sorted list of output places.
    pub(crate) post: Vec<Vec<PlaceId>>,
    /// For each place, the transitions consuming from it.
    pub(crate) place_post: Vec<Vec<TransitionId>>,
    /// For each place, the transitions producing into it.
    pub(crate) place_pre: Vec<Vec<TransitionId>>,
    pub(crate) initial: Marking,
}

impl PetriNet {
    /// The net's name (used in reports and benchmark tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of places `|P|`.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions `|T|`.
    pub fn num_transitions(&self) -> usize {
        self.transition_names.len()
    }

    /// All place ids in index order.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.place_names.len() as u32).map(PlaceId)
    }

    /// All transition ids in index order.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transition_names.len() as u32).map(TransitionId)
    }

    /// The name of place `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.index()]
    }

    /// The name of transition `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transition_names[t.index()]
    }

    /// Looks up a place by name.
    pub fn place_by_name(&self, name: &str) -> Option<PlaceId> {
        self.place_names
            .iter()
            .position(|n| n == name)
            .map(|i| PlaceId(i as u32))
    }

    /// Looks up a transition by name.
    pub fn transition_by_name(&self, name: &str) -> Option<TransitionId> {
        self.transition_names
            .iter()
            .position(|n| n == name)
            .map(|i| TransitionId(i as u32))
    }

    /// The pre-set `•t` of transition `t` (sorted by place index).
    pub fn pre_set(&self, t: TransitionId) -> &[PlaceId] {
        &self.pre[t.index()]
    }

    /// The post-set `t•` of transition `t` (sorted by place index).
    pub fn post_set(&self, t: TransitionId) -> &[PlaceId] {
        &self.post[t.index()]
    }

    /// The transitions consuming from place `p` (its post-set `p•`).
    pub fn place_post_set(&self, p: PlaceId) -> &[TransitionId] {
        &self.place_post[p.index()]
    }

    /// The transitions producing into place `p` (its pre-set `•p`).
    pub fn place_pre_set(&self, p: PlaceId) -> &[TransitionId] {
        &self.place_pre[p.index()]
    }

    /// The initial marking `M0`.
    pub fn initial_marking(&self) -> &Marking {
        &self.initial
    }

    /// Whether transition `t` is enabled in marking `m`
    /// (every place of `•t` is marked).
    pub fn is_enabled(&self, m: &Marking, t: TransitionId) -> bool {
        self.pre[t.index()].iter().all(|&p| m.is_marked(p))
    }

    /// The transitions enabled in `m`, in index order.
    pub fn enabled_transitions(&self, m: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_enabled(m, t))
            .collect()
    }

    /// Fires `t` in marking `m`, returning the successor marking.
    ///
    /// Firing removes a token from every place of `•t` and adds one to every
    /// place of `t•`.
    ///
    /// # Errors
    ///
    /// Returns [`FireError::NotEnabled`] if `t` is not enabled in `m`, and
    /// [`FireError::Unsafe`] if firing would place a second token into a
    /// place (the net would not be safe).
    pub fn fire(&self, m: &Marking, t: TransitionId) -> Result<Marking, FireError> {
        if !self.is_enabled(m, t) {
            return Err(FireError::NotEnabled { transition: t });
        }
        let mut next = m.clone();
        for &p in &self.pre[t.index()] {
            next.set(p, false);
        }
        for &p in &self.post[t.index()] {
            if next.is_marked(p) {
                return Err(FireError::Unsafe {
                    transition: t,
                    place: p,
                });
            }
            next.set(p, true);
        }
        Ok(next)
    }

    /// The effect of `t` on the token count of place `p`
    /// (`+1`, `-1` or `0`): one entry of the incidence matrix.
    pub fn incidence_entry(&self, p: PlaceId, t: TransitionId) -> i64 {
        let consumes = self.pre[t.index()].binary_search(&p).is_ok();
        let produces = self.post[t.index()].binary_search(&p).is_ok();
        i64::from(produces) - i64::from(consumes)
    }

    /// Places adjacent to `t` (`•t ∪ t•`), sorted and deduplicated.
    pub fn adjacent_places(&self, t: TransitionId) -> Vec<PlaceId> {
        let set: BTreeSet<PlaceId> = self.pre[t.index()]
            .iter()
            .chain(&self.post[t.index()])
            .copied()
            .collect();
        set.into_iter().collect()
    }
}

impl fmt::Display for PetriNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} places, {} transitions, {} initial tokens)",
            self.name,
            self.num_places(),
            self.num_transitions(),
            self.initial.token_count()
        )
    }
}

/// Errors produced when firing a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FireError {
    /// The transition is not enabled in the given marking.
    NotEnabled {
        /// The transition that was asked to fire.
        transition: TransitionId,
    },
    /// Firing would put a second token into `place`: the net is not safe.
    Unsafe {
        /// The transition that was fired.
        transition: TransitionId,
        /// The place that would receive a second token.
        place: PlaceId,
    },
}

impl fmt::Display for FireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FireError::NotEnabled { transition } => {
                write!(f, "transition {transition} is not enabled")
            }
            FireError::Unsafe { transition, place } => write!(
                f,
                "firing {transition} would put a second token into {place}"
            ),
        }
    }
}

impl std::error::Error for FireError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn tiny_net() -> PetriNet {
        let mut b = NetBuilder::new("tiny");
        let a = b.place_marked("a");
        let c = b.place("c");
        let d = b.place("d");
        b.transition("t0", &[a], &[c]);
        b.transition("t1", &[c], &[d]);
        b.transition("t2", &[d], &[a]);
        b.build().unwrap()
    }

    #[test]
    fn enabling_and_firing() {
        let net = tiny_net();
        let m0 = net.initial_marking().clone();
        let t0 = net.transition_by_name("t0").unwrap();
        let t1 = net.transition_by_name("t1").unwrap();
        assert!(net.is_enabled(&m0, t0));
        assert!(!net.is_enabled(&m0, t1));
        assert_eq!(net.enabled_transitions(&m0), vec![t0]);
        let m1 = net.fire(&m0, t0).unwrap();
        assert!(m1.is_marked(net.place_by_name("c").unwrap()));
        assert!(!m1.is_marked(net.place_by_name("a").unwrap()));
        assert!(matches!(
            net.fire(&m0, t1),
            Err(FireError::NotEnabled { .. })
        ));
    }

    #[test]
    fn unsafe_firing_is_reported() {
        let mut b = NetBuilder::new("unsafe");
        let a = b.place_marked("a");
        let c = b.place_marked("c");
        let d = b.place("d");
        b.transition("t", &[a], &[c, d]);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        let err = net.fire(net.initial_marking(), t).unwrap_err();
        assert!(matches!(err, FireError::Unsafe { .. }));
        assert!(err.to_string().contains("second token"));
    }

    #[test]
    fn incidence_entries() {
        let net = tiny_net();
        let a = net.place_by_name("a").unwrap();
        let t0 = net.transition_by_name("t0").unwrap();
        let t2 = net.transition_by_name("t2").unwrap();
        assert_eq!(net.incidence_entry(a, t0), -1);
        assert_eq!(net.incidence_entry(a, t2), 1);
        let c = net.place_by_name("c").unwrap();
        assert_eq!(net.incidence_entry(c, t2), 0);
    }

    #[test]
    fn adjacency_lookups_are_consistent() {
        let net = tiny_net();
        for t in net.transitions() {
            for &p in net.pre_set(t) {
                assert!(net.place_post_set(p).contains(&t));
            }
            for &p in net.post_set(t) {
                assert!(net.place_pre_set(p).contains(&t));
            }
        }
    }
}
