//! A small line-oriented text format for Petri nets.
//!
//! ```text
//! # comment
//! net dining-2
//! place idle.0 *        # '*' marks the place initially
//! place eating.0
//! trans take.0  idle.0 fork.0 -> eating.0
//! ```
//!
//! Each `place` line declares one place (optionally initially marked with a
//! trailing `*`); each `trans` line declares a transition with its pre-set
//! before `->` and its post-set after it.

use crate::builder::{BuildError, NetBuilder};
use crate::ids::PlaceId;
use crate::net::PetriNet;
use std::collections::HashMap;
use std::fmt;

/// Errors produced while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A transition referenced a place that was never declared.
    UnknownPlace {
        /// 1-based line number.
        line: usize,
        /// The undeclared place name.
        name: String,
    },
    /// The declared net was structurally invalid.
    Build(BuildError),
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseNetError::UnknownPlace { line, name } => {
                write!(f, "line {line}: unknown place `{name}`")
            }
            ParseNetError::Build(e) => write!(f, "invalid net: {e}"),
        }
    }
}

impl std::error::Error for ParseNetError {}

impl From<BuildError> for ParseNetError {
    fn from(e: BuildError) -> Self {
        ParseNetError::Build(e)
    }
}

/// Parses a net from the text format.
///
/// # Errors
///
/// Returns a [`ParseNetError`] describing the first offending line.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), pnsym_net::ParseNetError> {
/// let net = pnsym_net::parse_net(
///     "net toggle\n\
///      place off *\n\
///      place on\n\
///      trans up off -> on\n\
///      trans down on -> off\n",
/// )?;
/// assert_eq!(net.num_places(), 2);
/// assert_eq!(net.num_transitions(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_net(text: &str) -> Result<PetriNet, ParseNetError> {
    let mut name = String::from("unnamed");
    let mut builder: Option<NetBuilder> = None;
    let mut places: HashMap<String, PlaceId> = HashMap::new();
    // (line, transition name, pre names, post names)
    let mut transitions: Vec<(usize, String, Vec<String>, Vec<String>)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        match tokens.next() {
            Some("net") => {
                name = tokens.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(ParseNetError::Syntax {
                        line,
                        message: "`net` requires a name".into(),
                    });
                }
            }
            Some("place") => {
                let pname = tokens.next().ok_or_else(|| ParseNetError::Syntax {
                    line,
                    message: "`place` requires a name".into(),
                })?;
                let marked = match tokens.next() {
                    None => false,
                    Some("*") => true,
                    Some(other) => {
                        return Err(ParseNetError::Syntax {
                            line,
                            message: format!("unexpected token `{other}` after place name"),
                        })
                    }
                };
                let b = builder.get_or_insert_with(|| NetBuilder::new(name.clone()));
                let id = if marked {
                    b.place_marked(pname)
                } else {
                    b.place(pname)
                };
                places.insert(pname.to_string(), id);
            }
            Some("trans") => {
                let tname = tokens.next().ok_or_else(|| ParseNetError::Syntax {
                    line,
                    message: "`trans` requires a name".into(),
                })?;
                let rest: Vec<&str> = tokens.collect();
                let arrow =
                    rest.iter()
                        .position(|&s| s == "->")
                        .ok_or_else(|| ParseNetError::Syntax {
                            line,
                            message: "`trans` requires `->` between pre-set and post-set".into(),
                        })?;
                let pre = rest[..arrow].iter().map(|s| s.to_string()).collect();
                let post = rest[arrow + 1..].iter().map(|s| s.to_string()).collect();
                transitions.push((line, tname.to_string(), pre, post));
            }
            Some(other) => {
                return Err(ParseNetError::Syntax {
                    line,
                    message: format!("unknown directive `{other}`"),
                })
            }
            None => unreachable!(),
        }
    }

    let mut builder = builder.unwrap_or_else(|| NetBuilder::new(name));
    for (line, tname, pre, post) in transitions {
        let resolve = |names: &[String]| -> Result<Vec<PlaceId>, ParseNetError> {
            names
                .iter()
                .map(|n| {
                    places
                        .get(n)
                        .copied()
                        .ok_or_else(|| ParseNetError::UnknownPlace {
                            line,
                            name: n.clone(),
                        })
                })
                .collect()
        };
        let pre_ids = resolve(&pre)?;
        let post_ids = resolve(&post)?;
        builder.transition(tname, &pre_ids, &post_ids);
    }
    Ok(builder.build()?)
}

/// Serialises a net to the text format accepted by [`parse_net`].
pub fn write_net(net: &PetriNet) -> String {
    let mut out = String::new();
    out.push_str(&format!("net {}\n", net.name()));
    for p in net.places() {
        if net.initial_marking().is_marked(p) {
            out.push_str(&format!("place {} *\n", net.place_name(p)));
        } else {
            out.push_str(&format!("place {}\n", net.place_name(p)));
        }
    }
    for t in net.transitions() {
        let pre: Vec<&str> = net.pre_set(t).iter().map(|&p| net.place_name(p)).collect();
        let post: Vec<&str> = net.post_set(t).iter().map(|&p| net.place_name(p)).collect();
        out.push_str(&format!(
            "trans {} {} -> {}\n",
            net.transition_name(t),
            pre.join(" "),
            post.join(" ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::{figure1, philosophers};

    #[test]
    fn roundtrip_preserves_structure() {
        for net in [figure1(), philosophers(3)] {
            let text = write_net(&net);
            let parsed = parse_net(&text).unwrap();
            assert_eq!(parsed.num_places(), net.num_places());
            assert_eq!(parsed.num_transitions(), net.num_transitions());
            assert_eq!(
                parsed.initial_marking().token_count(),
                net.initial_marking().token_count()
            );
            // Same reachable state count.
            assert_eq!(
                parsed.explore().unwrap().num_markings(),
                net.explore().unwrap().num_markings()
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let net = parse_net("# a comment\n\nnet c\nplace a * # marked\nplace b\ntrans t a -> b\n")
            .unwrap();
        assert_eq!(net.name(), "c");
        assert_eq!(net.num_places(), 2);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = parse_net("net x\nplace\n").unwrap_err();
        assert!(matches!(err, ParseNetError::Syntax { line: 2, .. }));
        let err = parse_net("net x\nplace a\nbogus\n").unwrap_err();
        assert!(err.to_string().contains("line 3"));
        let err = parse_net("net x\nplace a\ntrans t a b\n").unwrap_err();
        assert!(matches!(err, ParseNetError::Syntax { line: 3, .. }));
    }

    #[test]
    fn unknown_place_is_reported() {
        let err = parse_net("place a *\ntrans t a -> ghost\n").unwrap_err();
        assert!(matches!(err, ParseNetError::UnknownPlace { .. }));
    }
}
