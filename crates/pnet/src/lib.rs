//! # pnsym-net — safe Petri nets, reachability, and benchmark generators
//!
//! The Petri-net substrate of the `pnsym` workspace (a reproduction of
//! Pastor & Cortadella, *Efficient Encoding Schemes for Symbolic Analysis of
//! Petri Nets*, DATE 1998).
//!
//! This crate provides:
//!
//! * the [`PetriNet`] model with the safe token-game semantics,
//!   [`Marking`]s as bitsets, and a [`NetBuilder`];
//! * the [`IncidenceMatrix`] and state equation of Section 2.1;
//! * explicit (enumerative) reachability analysis ([`ReachabilityGraph`]),
//!   which serves as the reference the symbolic engines are validated
//!   against;
//! * behavioural property checks ([`BehaviourReport`]);
//! * a small [text format](crate::format) for nets;
//! * the scalable benchmark families of the paper's evaluation in [`nets`].
//!
//! ## Quick start
//!
//! ```
//! use pnsym_net::nets::philosophers;
//!
//! let net = philosophers(2);               // the paper's Figure 4
//! let rg = net.explore().expect("safe");
//! assert_eq!(rg.num_markings(), 22);
//! assert!(!rg.deadlocks(&net).is_empty()); // both can grab their left fork
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod dot;
pub mod format;
mod ids;
mod incidence;
mod marking;
mod net;
pub mod nets;
mod properties;
mod reach;

pub use builder::{BuildError, NetBuilder};
pub use format::{parse_net, write_net, ParseNetError};
pub use ids::{PlaceId, TransitionId};
pub use incidence::IncidenceMatrix;
pub use marking::Marking;
pub use net::{FireError, PetriNet};
pub use properties::BehaviourReport;
pub use reach::{ExploreError, ExploreOptions, ReachabilityGraph};
