//! A builder for constructing [`PetriNet`]s programmatically.

use crate::ids::{PlaceId, TransitionId};
use crate::marking::Marking;
use crate::net::PetriNet;
use std::collections::HashSet;
use std::fmt;

/// Incremental construction of a [`PetriNet`].
///
/// # Examples
///
/// ```
/// use pnsym_net::NetBuilder;
/// # fn main() -> Result<(), pnsym_net::BuildError> {
/// let mut b = NetBuilder::new("producer-consumer");
/// let idle = b.place_marked("idle");
/// let busy = b.place("busy");
/// b.transition("start", &[idle], &[busy]);
/// b.transition("stop", &[busy], &[idle]);
/// let net = b.build()?;
/// assert_eq!(net.num_places(), 2);
/// assert_eq!(net.num_transitions(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetBuilder {
    name: String,
    place_names: Vec<String>,
    marked: Vec<bool>,
    transition_names: Vec<String>,
    pre: Vec<Vec<PlaceId>>,
    post: Vec<Vec<PlaceId>>,
}

impl NetBuilder {
    /// Starts building a net with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        NetBuilder {
            name: name.into(),
            place_names: Vec::new(),
            marked: Vec::new(),
            transition_names: Vec::new(),
            pre: Vec::new(),
            post: Vec::new(),
        }
    }

    /// Adds an initially unmarked place and returns its id.
    pub fn place(&mut self, name: impl Into<String>) -> PlaceId {
        self.add_place(name.into(), false)
    }

    /// Adds an initially marked place and returns its id.
    pub fn place_marked(&mut self, name: impl Into<String>) -> PlaceId {
        self.add_place(name.into(), true)
    }

    fn add_place(&mut self, name: String, marked: bool) -> PlaceId {
        let id = PlaceId(self.place_names.len() as u32);
        self.place_names.push(name);
        self.marked.push(marked);
        id
    }

    /// Adds a transition with the given pre- and post-sets and returns its id.
    pub fn transition(
        &mut self,
        name: impl Into<String>,
        pre: &[PlaceId],
        post: &[PlaceId],
    ) -> TransitionId {
        let id = TransitionId(self.transition_names.len() as u32);
        self.transition_names.push(name.into());
        let mut pre: Vec<PlaceId> = pre.to_vec();
        pre.sort_unstable();
        pre.dedup();
        let mut post: Vec<PlaceId> = post.to_vec();
        post.sort_unstable();
        post.dedup();
        self.pre.push(pre);
        self.post.push(post);
        id
    }

    /// Number of places added so far.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions added so far.
    pub fn num_transitions(&self) -> usize {
        self.transition_names.len()
    }

    /// Finishes construction, validating the net.
    ///
    /// # Errors
    ///
    /// Returns an error if a name is duplicated, if a transition references a
    /// place that was never declared, or if a transition has an empty
    /// pre-set or post-set (source/sink transitions are rejected because the
    /// safe token game and the structural theory both assume pure
    /// place-bordered transitions).
    pub fn build(self) -> Result<PetriNet, BuildError> {
        let mut seen = HashSet::new();
        for name in &self.place_names {
            if !seen.insert(name.clone()) {
                return Err(BuildError::DuplicateName { name: name.clone() });
            }
        }
        let mut seen_t = HashSet::new();
        for name in &self.transition_names {
            if !seen_t.insert(name.clone()) {
                return Err(BuildError::DuplicateName { name: name.clone() });
            }
        }
        let num_places = self.place_names.len();
        for (t, (pre, post)) in self.pre.iter().zip(&self.post).enumerate() {
            if pre.is_empty() || post.is_empty() {
                return Err(BuildError::DisconnectedTransition {
                    name: self.transition_names[t].clone(),
                });
            }
            for &p in pre.iter().chain(post) {
                if p.index() >= num_places {
                    return Err(BuildError::UnknownPlace {
                        transition: self.transition_names[t].clone(),
                        place: p,
                    });
                }
            }
        }

        let mut place_post = vec![Vec::new(); num_places];
        let mut place_pre = vec![Vec::new(); num_places];
        for (t, (pre, post)) in self.pre.iter().zip(&self.post).enumerate() {
            for &p in pre {
                place_post[p.index()].push(TransitionId(t as u32));
            }
            for &p in post {
                place_pre[p.index()].push(TransitionId(t as u32));
            }
        }

        let mut initial = Marking::empty(num_places);
        for (i, &m) in self.marked.iter().enumerate() {
            if m {
                initial.set(PlaceId(i as u32), true);
            }
        }

        Ok(PetriNet {
            name: self.name,
            place_names: self.place_names,
            transition_names: self.transition_names,
            pre: self.pre,
            post: self.post,
            place_post,
            place_pre,
            initial,
        })
    }
}

/// Errors reported by [`NetBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Two places or two transitions share the same name.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A transition references a place id that was never declared.
    UnknownPlace {
        /// The transition's name.
        transition: String,
        /// The undeclared place id.
        place: PlaceId,
    },
    /// A transition has an empty pre-set or post-set.
    DisconnectedTransition {
        /// The transition's name.
        name: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateName { name } => write!(f, "duplicate node name `{name}`"),
            BuildError::UnknownPlace { transition, place } => {
                write!(f, "transition `{transition}` references undeclared {place}")
            }
            BuildError::DisconnectedTransition { name } => {
                write!(f, "transition `{name}` has an empty pre-set or post-set")
            }
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_simple_net() {
        let mut b = NetBuilder::new("n");
        let a = b.place_marked("a");
        let c = b.place("c");
        b.transition("t", &[a], &[c]);
        let net = b.build().unwrap();
        assert_eq!(net.name(), "n");
        assert!(net.initial_marking().is_marked(a));
        assert!(!net.initial_marking().is_marked(c));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a");
        let c = b.place("a");
        b.transition("t", &[a], &[c]);
        assert!(matches!(b.build(), Err(BuildError::DuplicateName { .. })));
    }

    #[test]
    fn disconnected_transition_rejected() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a");
        b.transition("t", &[a], &[]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildError::DisconnectedTransition { .. }));
        assert!(err.to_string().contains("empty"));
    }

    #[test]
    fn unknown_place_rejected() {
        let mut b = NetBuilder::new("n");
        let a = b.place("a");
        b.transition("t", &[a], &[PlaceId(9)]);
        assert!(matches!(b.build(), Err(BuildError::UnknownPlace { .. })));
    }

    #[test]
    fn pre_post_sets_are_sorted_and_deduplicated() {
        let mut b = NetBuilder::new("n");
        let a = b.place_marked("a");
        let c = b.place("c");
        let d = b.place("d");
        b.transition("t", &[d, a, d], &[c]);
        let net = b.build().unwrap();
        let t = net.transition_by_name("t").unwrap();
        assert_eq!(net.pre_set(t), &[a, d]);
    }
}
