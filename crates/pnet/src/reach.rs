//! Explicit (enumerative) reachability analysis.
//!
//! This is the reference semantics the symbolic engines are validated
//! against, and the substrate for toggling-activity metrics over the
//! reachability graph (Figure 2 of the paper).

use crate::ids::TransitionId;
use crate::marking::Marking;
use crate::net::{FireError, PetriNet};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// The reachability graph of a safe Petri net: every reachable marking and
/// every firing between them.
///
/// Markings are indexed densely in BFS discovery order; index 0 is the
/// initial marking.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    index: HashMap<Marking, usize>,
    edges: Vec<(usize, TransitionId, usize)>,
}

impl ReachabilityGraph {
    /// Number of reachable markings.
    pub fn num_markings(&self) -> usize {
        self.markings.len()
    }

    /// Number of edges (marking, transition, marking).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The marking with the given BFS index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn marking(&self, index: usize) -> &Marking {
        &self.markings[index]
    }

    /// All reachable markings in BFS discovery order.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// All edges as `(source index, transition, target index)`.
    pub fn edges(&self) -> &[(usize, TransitionId, usize)] {
        &self.edges
    }

    /// The BFS index of `m`, if it is reachable.
    pub fn index_of(&self, m: &Marking) -> Option<usize> {
        self.index.get(m).copied()
    }

    /// Whether `m` is reachable.
    pub fn contains(&self, m: &Marking) -> bool {
        self.index.contains_key(m)
    }

    /// The reachable markings in which no transition is enabled.
    pub fn deadlocks(&self, net: &PetriNet) -> Vec<&Marking> {
        self.markings
            .iter()
            .filter(|m| net.enabled_transitions(m).is_empty())
            .collect()
    }
}

/// Options controlling explicit state-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Exploration aborts with [`ExploreError::StateLimit`] once this many
    /// markings have been discovered.
    pub max_markings: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_markings: 2_000_000,
        }
    }
}

/// Errors reported by explicit exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The state limit given in [`ExploreOptions`] was exceeded.
    StateLimit {
        /// The configured limit.
        limit: usize,
    },
    /// The net is not safe: a reachable firing would duplicate a token.
    Unsafe(FireError),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::StateLimit { limit } => {
                write!(f, "state limit of {limit} markings exceeded")
            }
            ExploreError::Unsafe(e) => write!(f, "net is not safe: {e}"),
        }
    }
}

impl std::error::Error for ExploreError {}

impl From<FireError> for ExploreError {
    fn from(e: FireError) -> Self {
        ExploreError::Unsafe(e)
    }
}

impl PetriNet {
    /// Builds the full reachability graph by breadth-first exploration with
    /// default [`ExploreOptions`].
    ///
    /// # Errors
    ///
    /// See [`PetriNet::explore_with`].
    pub fn explore(&self) -> Result<ReachabilityGraph, ExploreError> {
        self.explore_with(ExploreOptions::default())
    }

    /// Builds the full reachability graph by breadth-first exploration.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::StateLimit`] if more than
    /// `options.max_markings` markings are discovered, and
    /// [`ExploreError::Unsafe`] if a reachable firing would place a second
    /// token into a place.
    pub fn explore_with(&self, options: ExploreOptions) -> Result<ReachabilityGraph, ExploreError> {
        let mut markings = vec![self.initial_marking().clone()];
        let mut index = HashMap::new();
        index.insert(self.initial_marking().clone(), 0usize);
        let mut edges = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(0usize);

        while let Some(current) = queue.pop_front() {
            let m = markings[current].clone();
            for t in self.transitions() {
                if !self.is_enabled(&m, t) {
                    continue;
                }
                let next = self.fire(&m, t)?;
                let next_index = match index.get(&next) {
                    Some(&i) => i,
                    None => {
                        let i = markings.len();
                        if i >= options.max_markings {
                            return Err(ExploreError::StateLimit {
                                limit: options.max_markings,
                            });
                        }
                        markings.push(next.clone());
                        index.insert(next, i);
                        queue.push_back(i);
                        i
                    }
                };
                edges.push((current, t, next_index));
            }
        }

        Ok(ReachabilityGraph {
            markings,
            index,
            edges,
        })
    }

    /// Counts the reachable markings without retaining the graph edges.
    ///
    /// # Errors
    ///
    /// Same as [`PetriNet::explore_with`].
    pub fn count_reachable(&self, options: ExploreOptions) -> Result<usize, ExploreError> {
        Ok(self.explore_with(options)?.num_markings())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetBuilder;

    fn cycle_net(n: usize) -> PetriNet {
        let mut b = NetBuilder::new("cycle");
        let places: Vec<_> = (0..n)
            .map(|i| {
                if i == 0 {
                    b.place_marked(format!("s{i}"))
                } else {
                    b.place(format!("s{i}"))
                }
            })
            .collect();
        for i in 0..n {
            b.transition(format!("t{i}"), &[places[i]], &[places[(i + 1) % n]]);
        }
        b.build().unwrap()
    }

    #[test]
    fn cycle_has_n_markings_and_edges() {
        let net = cycle_net(5);
        let rg = net.explore().unwrap();
        assert_eq!(rg.num_markings(), 5);
        assert_eq!(rg.num_edges(), 5);
        assert!(rg.deadlocks(&net).is_empty());
        assert!(rg.contains(net.initial_marking()));
        assert_eq!(rg.index_of(net.initial_marking()), Some(0));
    }

    #[test]
    fn independent_toggles_multiply() {
        // Two independent 2-phase cycles: 2 * 2 = 4 markings.
        let mut b = NetBuilder::new("pair");
        let a0 = b.place_marked("a0");
        let a1 = b.place("a1");
        let b0 = b.place_marked("b0");
        let b1 = b.place("b1");
        b.transition("ta+", &[a0], &[a1]);
        b.transition("ta-", &[a1], &[a0]);
        b.transition("tb+", &[b0], &[b1]);
        b.transition("tb-", &[b1], &[b0]);
        let net = b.build().unwrap();
        let rg = net.explore().unwrap();
        assert_eq!(rg.num_markings(), 4);
        assert_eq!(rg.num_edges(), 8);
    }

    #[test]
    fn state_limit_is_enforced() {
        let net = cycle_net(10);
        let err = net
            .explore_with(ExploreOptions { max_markings: 3 })
            .unwrap_err();
        assert!(matches!(err, ExploreError::StateLimit { limit: 3 }));
    }

    #[test]
    fn deadlock_is_detected() {
        let mut b = NetBuilder::new("dead");
        let a = b.place_marked("a");
        let c = b.place("c");
        b.transition("t", &[a], &[c]);
        let net = b.build().unwrap();
        let rg = net.explore().unwrap();
        assert_eq!(rg.num_markings(), 2);
        assert_eq!(rg.deadlocks(&net).len(), 1);
    }

    #[test]
    fn unsafe_net_is_reported() {
        let mut b = NetBuilder::new("unsafe");
        let a = b.place_marked("a");
        let c = b.place_marked("c");
        let d = b.place("d");
        b.transition("t1", &[a], &[d]);
        b.transition("t2", &[c], &[d]);
        let net = b.build().unwrap();
        // Firing t1 then t2 puts two tokens into d.
        assert!(matches!(
            net.explore(),
            Err(ExploreError::Unsafe(FireError::Unsafe { .. }))
        ));
    }
}
