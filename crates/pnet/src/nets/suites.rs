//! Textual CTL property suites for the bundled benchmark nets.
//!
//! Each bundled generator family carries a suite of behavioural properties
//! in the concrete syntax of `pnsym-core`'s property language (this crate
//! only stores the *text*; the parser and checker live upstream). The
//! suites cover the scenario axes a symbolic checker should answer —
//! mutual exclusion, reachability of partial markings, inevitability,
//! deadlock, and until-style ordering — with the expected verdict recorded,
//! so the `experiments --check` harness and the CI smoke run can keep the
//! checker honest against them.

use crate::net::PetriNet;

/// One named property of a suite: a formula in the textual CTL syntax plus
/// the expected verdict at the initial marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertySpec {
    /// Short identifier used in reports and tables.
    pub name: String,
    /// The formula, in the concrete syntax of the upstream property
    /// language (place names resolved against the net).
    pub formula: String,
    /// The expected verdict at the initial marking; `None` marks a query
    /// whose outcome is informational only.
    pub expect: Option<bool>,
}

impl PropertySpec {
    fn new(name: &str, formula: impl Into<String>, expect: bool) -> PropertySpec {
        PropertySpec {
            name: name.to_string(),
            formula: formula.into(),
            expect: Some(expect),
        }
    }
}

/// The bundled property suite of `net`, keyed on the generator's net name
/// (`figure1`, `phil-N`, `muller-N`, `slot-N`, `dme-spec-N`, `dme-cir-N`).
/// Returns an empty suite for nets without one.
///
/// Every property references only the places of the smallest family member
/// (indices 0 and 1), so one suite text works for every `N` of its family;
/// the expected verdicts are size-independent and pinned against both the
/// symbolic and the explicit-state checker by the test suites.
pub fn property_suite(net: &PetriNet) -> Vec<PropertySpec> {
    let name = net.name();
    if name == "figure1" {
        vec![
            PropertySpec::new("m7-reachable", "EF (p6 & p7)", true),
            PropertySpec::new("smc-exclusion", "AG !(p2 & p4)", true),
            PropertySpec::new("deadlock-free", "AG EX true", true),
            PropertySpec::new("home-marking", "AG EF p1", true),
            PropertySpec::new("choice-fated", "AF (p2 | p4)", true),
            PropertySpec::new("left-first", "E[!p4 U p2 & p3]", true),
        ]
    } else if name.starts_with("phil-") {
        vec![
            PropertySpec::new("can-eat", "EF eating.0", true),
            PropertySpec::new("adjacent-exclusion", "AG !(eating.0 & eating.1)", true),
            PropertySpec::new("deadlock-reachable", "EF !EX true", true),
            PropertySpec::new("eating-not-fated", "AF eating.0", false),
            PropertySpec::new("first-eater", "E[!eating.1 U eating.0]", true),
            PropertySpec::new("fork-taken", "AG (hasl.0 -> !fork.0)", true),
        ]
    } else if name.starts_with("muller-") {
        vec![
            PropertySpec::new("deadlock-free", "AG EX true", true),
            PropertySpec::new("stage0-fated", "AF done.0", true),
            PropertySpec::new("pipeline-fills", "EF (done.0 & done.1)", true),
            PropertySpec::new("handshake-phase", "AG (received.0 -> !ready.0)", true),
            PropertySpec::new("in-order", "A[!done.1 U done.0]", true),
        ]
    } else if name.starts_with("slot-") {
        vec![
            PropertySpec::new("deadlock-reachable", "EF !EX true", true),
            PropertySpec::new("slot-recovery", "AG EF free.0", false),
            PropertySpec::new("slot-phase", "AG !(free.0 & full.0)", true),
            PropertySpec::new("node-phase", "AG !(sending.0 & processing.0)", true),
            PropertySpec::new("no-silent-delivery", "E[!full.0 U processing.1]", false),
            PropertySpec::new("can-send", "EF sending.0", true),
        ]
    } else if name.starts_with("dme-spec-") || name.starts_with("dme-cir-") {
        vec![
            PropertySpec::new("mutex", "AG !(critical.0 & critical.1)", true),
            PropertySpec::new("cell1-access", "EF critical.1", true),
            PropertySpec::new("deadlock-free", "AG EX true", true),
            PropertySpec::new("no-fairness", "AF critical.0", false),
            PropertySpec::new("held-in-critical", "AG (critical.0 -> token_held.0)", true),
            PropertySpec::new("overtaking", "E[!critical.0 U critical.1]", true),
        ]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nets::{dme, figure1, muller, philosophers, slotted_ring, DmeStyle};

    #[test]
    fn every_bundled_family_has_a_suite() {
        for net in [
            figure1(),
            philosophers(2),
            philosophers(5),
            muller(4),
            slotted_ring(3),
            dme(3, DmeStyle::Spec),
            dme(2, DmeStyle::Circuit),
        ] {
            let suite = property_suite(&net);
            assert!(!suite.is_empty(), "{} has a suite", net.name());
            for spec in &suite {
                assert!(spec.expect.is_some(), "{}: pinned verdict", spec.name);
            }
        }
    }

    #[test]
    fn suites_only_reference_real_places() {
        // The formulas are parsed upstream; here only the place names are
        // extracted and resolved, so a renamed place fails fast.
        for net in [
            figure1(),
            philosophers(2),
            muller(2),
            slotted_ring(2),
            dme(2, DmeStyle::Spec),
            dme(2, DmeStyle::Circuit),
        ] {
            for spec in property_suite(&net) {
                for word in spec
                    .formula
                    .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.'))
                {
                    let is_operator = matches!(
                        word,
                        "" | "true"
                            | "false"
                            | "EX"
                            | "EF"
                            | "EG"
                            | "AX"
                            | "AF"
                            | "AG"
                            | "E"
                            | "A"
                            | "U"
                    );
                    if !is_operator {
                        assert!(
                            net.place_by_name(word).is_some(),
                            "{}: `{}` names a place of {}",
                            spec.name,
                            word,
                            net.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_nets_have_empty_suites() {
        let mut b = crate::builder::NetBuilder::new("custom");
        let a = b.place_marked("a");
        let c = b.place("c");
        b.transition("t", &[a], &[c]);
        let net = b.build().unwrap();
        assert!(property_suite(&net).is_empty());
    }
}
