//! The example net of Figure 1 of the paper.

use crate::builder::NetBuilder;
use crate::net::PetriNet;

/// The 7-place, 7-transition example net of Figure 1 (Pastor & Cortadella,
/// DATE 1998). Its reachability graph has exactly 8 markings and 11 edges,
/// and it decomposes into the two 4-place SMCs `{p1, p2, p4, p6}` and
/// `{p1, p3, p5, p7}`.
///
/// # Examples
///
/// ```
/// let net = pnsym_net::nets::figure1();
/// assert_eq!(net.num_places(), 7);
/// assert_eq!(net.num_transitions(), 7);
/// let rg = net.explore().expect("the net is safe");
/// assert_eq!(rg.num_markings(), 8);
/// ```
pub fn figure1() -> PetriNet {
    let mut b = NetBuilder::new("figure1");
    let p1 = b.place_marked("p1");
    let p2 = b.place("p2");
    let p3 = b.place("p3");
    let p4 = b.place("p4");
    let p5 = b.place("p5");
    let p6 = b.place("p6");
    let p7 = b.place("p7");
    b.transition("t1", &[p1], &[p2, p3]);
    b.transition("t2", &[p1], &[p4, p5]);
    b.transition("t3", &[p2], &[p6]);
    b.transition("t4", &[p3], &[p7]);
    b.transition("t5", &[p4], &[p6]);
    b.transition("t6", &[p5], &[p7]);
    b.transition("t7", &[p6, p7], &[p1]);
    b.build().expect("figure1 net is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_paper_figures() {
        let net = figure1();
        assert_eq!(net.num_places(), 7);
        assert_eq!(net.num_transitions(), 7);
        let rg = net.explore().unwrap();
        assert_eq!(rg.num_markings(), 8, "Figure 1.b shows 8 markings");
        assert_eq!(rg.num_edges(), 11, "Figure 1.b has 11 firings");
        assert!(rg.deadlocks(&net).is_empty());
    }

    #[test]
    fn marking_m1_is_p2_p3() {
        let net = figure1();
        let m0 = net.initial_marking().clone();
        let t1 = net.transition_by_name("t1").unwrap();
        let m1 = net.fire(&m0, t1).unwrap();
        let names: Vec<&str> = m1.iter().map(|p| net.place_name(p)).collect();
        assert_eq!(names, vec!["p2", "p3"]);
    }
}
