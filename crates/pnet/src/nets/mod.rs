//! Generators for the scalable benchmark nets used throughout the paper's
//! evaluation, plus the small illustrative nets of its figures.
//!
//! | Generator | Paper workload | Structure |
//! |---|---|---|
//! | [`figure1`] | Fig. 1 example | 7 places, 8 markings, two 4-place SMCs |
//! | [`philosophers`] | Fig. 4 / Table 3 `phil-n` | 7 places per philosopher |
//! | [`muller`] | Table 3 `muller-n` | 4-place handshake cycle per stage |
//! | [`slotted_ring`] | Table 3 `slot-n` | slot + node state machine per node |
//! | [`dme`] | Table 4 `DMEspec`/`DMEcir` | token-ring mutual exclusion cells |
//! | [`jjreg`] | Table 4 `JJreg-a/b` | register pipeline + bus arbitration |

mod dme;
mod figure1;
mod jjreg;
mod muller;
mod philosophers;
mod random;
mod slotted_ring;
mod suites;

pub use dme::{dme, DmeStyle};
pub use figure1::figure1;
pub use jjreg::{jjreg, JjregVariant};
pub use muller::muller;
pub use philosophers::philosophers;
pub use random::{random_composed, RandomNetConfig};
pub use slotted_ring::slotted_ring;
pub use suites::{property_suite, PropertySpec};
