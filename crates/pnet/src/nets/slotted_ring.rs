//! A scalable slotted-ring communication protocol net.

use crate::builder::NetBuilder;
use crate::net::PetriNet;

/// An `n`-node slotted-ring protocol net (5 places, 4 transitions per node).
///
/// Every node owns the ring slot at its position (a `free`/`full` state
/// machine) and runs a local protocol engine (`idle → sending → idle` on the
/// producer side and `idle → processing → idle` on the consumer side). A
/// node inserts a message into its own slot and the message is delivered to
/// the next node around the ring once that node is idle; the sender returns
/// to `idle` when its slot has been emptied.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let net = pnsym_net::nets::slotted_ring(3);
/// assert_eq!(net.num_places(), 15);
/// assert!(net.explore().unwrap().num_markings() > 20);
/// ```
pub fn slotted_ring(n: usize) -> PetriNet {
    assert!(n >= 2, "a ring needs at least two nodes");
    let mut b = NetBuilder::new(format!("slot-{n}"));
    // Places are declared node by node so that the default variable order
    // keeps each node's places adjacent.
    let mut free = Vec::with_capacity(n);
    let mut full = Vec::with_capacity(n);
    let mut idle = Vec::with_capacity(n);
    let mut sending = Vec::with_capacity(n);
    let mut processing = Vec::with_capacity(n);
    for i in 0..n {
        free.push(b.place_marked(format!("free.{i}")));
        full.push(b.place(format!("full.{i}")));
        idle.push(b.place_marked(format!("idle.{i}")));
        sending.push(b.place(format!("sending.{i}")));
        processing.push(b.place(format!("processing.{i}")));
    }

    for i in 0..n {
        let next = (i + 1) % n;
        b.transition(
            format!("start.{i}"),
            &[idle[i], free[i]],
            &[sending[i], full[i]],
        );
        b.transition(
            format!("deliver.{i}"),
            &[full[i], idle[next]],
            &[free[i], processing[next]],
        );
        b.transition(
            format!("ack.{i}"),
            &[sending[i], free[i]],
            &[idle[i], free[i]],
        );
        b.transition(format!("done.{i}"), &[processing[i]], &[idle[i]]);
    }
    b.build().expect("slotted ring net is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let net = slotted_ring(5);
        assert_eq!(net.num_places(), 25);
        assert_eq!(net.num_transitions(), 20);
        assert_eq!(net.initial_marking().token_count(), 10);
    }

    #[test]
    fn ring_is_safe_and_scales() {
        let m2 = slotted_ring(2).explore().unwrap().num_markings();
        let m3 = slotted_ring(3).explore().unwrap().num_markings();
        let m4 = slotted_ring(4).explore().unwrap().num_markings();
        assert!(m3 > m2);
        assert!(m4 as f64 > 1.5 * m3 as f64);
    }

    #[test]
    fn every_marking_has_one_token_per_component() {
        let net = slotted_ring(3);
        let rg = net.explore().unwrap();
        for m in rg.markings() {
            assert_eq!(m.token_count(), 6, "one token per slot and per node engine");
        }
    }

    #[test]
    fn self_loop_transition_fires() {
        // ack.i keeps free.i marked (self-loop): check it actually occurs.
        let net = slotted_ring(2);
        let rg = net.explore().unwrap();
        let ack0 = net.transition_by_name("ack.0").unwrap();
        assert!(rg.edges().iter().any(|&(_, t, _)| t == ack0));
    }
}
