//! Random safe Petri nets built by composing circular state machines.
//!
//! Every generated net is safe by construction (each component carries one
//! token) and decomposes into one-token SMCs, which makes the family ideal
//! for differential testing of the encoding schemes and for stress-testing
//! the structural algorithms on irregular topologies. Synchronisation
//! between components is introduced by fusing transitions of different
//! components, which creates overlapping invariants similar to the fork
//! places of the dining philosophers.

use crate::builder::NetBuilder;
use crate::ids::PlaceId;
use crate::net::PetriNet;

/// A small deterministic RNG (splitmix64), standing in for `rand::StdRng` so
/// generation stays seed-reproducible without an external dependency.
/// Twin of `TestRng` in `vendor/proptest/src/test_runner.rs` — kept separate
/// so `pnsym-net` stays dependency-free; fix bugs in both places.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from a `lo..hi` or `lo..=hi` style span given as
    /// `(lo, span)` with `span >= 1`.
    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    fn gen_range_exclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as usize
    }
}

/// Parameters for [`random_composed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomNetConfig {
    /// Number of circular state-machine components.
    pub components: usize,
    /// Minimum number of places per component (at least 2).
    pub min_places: usize,
    /// Maximum number of places per component.
    pub max_places: usize,
    /// Number of synchronisation transitions fusing two components.
    pub synchronisations: usize,
}

impl Default for RandomNetConfig {
    fn default() -> Self {
        RandomNetConfig {
            components: 4,
            min_places: 2,
            max_places: 5,
            synchronisations: 2,
        }
    }
}

/// Generates a random safe net according to `config`, deterministically from
/// `seed`.
///
/// Each component `i` is a cycle `s{i}.0 → s{i}.1 → … → s{i}.0` whose first
/// place is marked. Each synchronisation picks two distinct components and
/// fuses one step of each into a single shared transition, so the components
/// must advance together at that point.
///
/// # Panics
///
/// Panics if `config.components == 0`, `config.min_places < 2` or
/// `config.min_places > config.max_places`.
pub fn random_composed(config: RandomNetConfig, seed: u64) -> PetriNet {
    assert!(config.components >= 1, "need at least one component");
    assert!(config.min_places >= 2, "cycles need at least two places");
    assert!(config.min_places <= config.max_places, "empty size range");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut b = NetBuilder::new(format!("random-{seed}"));

    // Build the component cycles.
    let mut components: Vec<Vec<PlaceId>> = Vec::with_capacity(config.components);
    for i in 0..config.components {
        let size = rng.gen_range_inclusive(config.min_places, config.max_places);
        let mut places = Vec::with_capacity(size);
        for j in 0..size {
            let name = format!("s{i}.{j}");
            places.push(if j == 0 {
                b.place_marked(name)
            } else {
                b.place(name)
            });
        }
        components.push(places);
    }

    // Synchronisations: fuse step `k -> k+1` of two distinct components.
    // At most one fusion per component step to keep the construction simple
    // and obviously safe.
    let mut fused: Vec<Vec<bool>> = components.iter().map(|c| vec![false; c.len()]).collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < config.synchronisations && attempts < config.synchronisations * 20 {
        attempts += 1;
        if config.components < 2 {
            break;
        }
        let a = rng.gen_range_exclusive(0, config.components);
        let c = rng.gen_range_exclusive(0, config.components);
        if a == c {
            continue;
        }
        let sa = rng.gen_range_exclusive(0, components[a].len());
        let sc = rng.gen_range_exclusive(0, components[c].len());
        if fused[a][sa] || fused[c][sc] {
            continue;
        }
        fused[a][sa] = true;
        fused[c][sc] = true;
        let next_a = (sa + 1) % components[a].len();
        let next_c = (sc + 1) % components[c].len();
        b.transition(
            format!("sync{added}.{a}.{sa}.{c}.{sc}"),
            &[components[a][sa], components[c][sc]],
            &[components[a][next_a], components[c][next_c]],
        );
        added += 1;
    }

    // The remaining (unfused) steps of every component.
    for (i, places) in components.iter().enumerate() {
        for j in 0..places.len() {
            if fused[i][j] {
                continue;
            }
            b.transition(
                format!("t{i}.{j}"),
                &[places[j]],
                &[places[(j + 1) % places.len()]],
            );
        }
    }
    b.build().expect("random composed net is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ExploreOptions;

    #[test]
    fn generated_nets_are_safe_and_live_enough() {
        for seed in 0..20 {
            let net = random_composed(RandomNetConfig::default(), seed);
            assert!(net.num_places() >= 8);
            let report = net
                .behaviour_report(ExploreOptions::default())
                .expect("random nets are safe by construction");
            assert!(report.num_markings >= 1);
            assert_eq!(report.max_tokens, net.initial_marking().token_count());
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = RandomNetConfig::default();
        let a = random_composed(config, 42);
        let b = random_composed(config, 42);
        assert_eq!(a, b);
        let c = random_composed(config, 43);
        assert!(
            a.num_places() != c.num_places() || format!("{a}") != format!("{c}"),
            "different seeds should usually differ"
        );
    }

    #[test]
    fn synchronisations_couple_the_components() {
        let config = RandomNetConfig {
            components: 3,
            min_places: 3,
            max_places: 3,
            synchronisations: 2,
        };
        let net = random_composed(config, 7);
        let syncs = net
            .transitions()
            .filter(|&t| net.pre_set(t).len() == 2)
            .count();
        assert_eq!(syncs, 2);
        // Coupling never enlarges the state space beyond the free product
        // 3^3 = 27 and the components still make progress.
        let markings = net.explore().unwrap().num_markings();
        assert!(markings <= 27);
        assert!(markings >= 3);
    }

    #[test]
    #[should_panic(expected = "at least two places")]
    fn degenerate_config_is_rejected() {
        let _ = random_composed(
            RandomNetConfig {
                components: 1,
                min_places: 1,
                max_places: 1,
                synchronisations: 0,
            },
            0,
        );
    }
}
