//! The dining-philosophers net of Figure 4, generalised to `n` philosophers.

use crate::builder::NetBuilder;
use crate::net::PetriNet;

/// The dining-philosophers net with `n` philosophers (7 places and 5
/// transitions per philosopher).
///
/// Philosopher `i` goes to the table, takes its left fork (`fork.i`), takes
/// its right fork (`fork.(i+1) mod n`), eats, and finally returns both forks
/// and leaves. For `n = 2` this is exactly the 14-place net of Figure 4 of
/// the paper, with 22 reachable markings.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let net = pnsym_net::nets::philosophers(2);
/// assert_eq!(net.num_places(), 14);
/// assert_eq!(net.num_transitions(), 10);
/// assert_eq!(net.explore().unwrap().num_markings(), 22);
/// ```
pub fn philosophers(n: usize) -> PetriNet {
    assert!(n >= 2, "at least two philosophers are required");
    let mut b = NetBuilder::new(format!("phil-{n}"));
    // Places are declared philosopher by philosopher so that the default
    // variable order keeps each philosopher's places adjacent.
    let mut idle = Vec::with_capacity(n);
    let mut wait_l = Vec::with_capacity(n);
    let mut wait_r = Vec::with_capacity(n);
    let mut has_l = Vec::with_capacity(n);
    let mut has_r = Vec::with_capacity(n);
    let mut eating = Vec::with_capacity(n);
    let mut fork = Vec::with_capacity(n);
    for i in 0..n {
        idle.push(b.place_marked(format!("idle.{i}")));
        wait_l.push(b.place(format!("waitl.{i}")));
        wait_r.push(b.place(format!("waitr.{i}")));
        has_l.push(b.place(format!("hasl.{i}")));
        has_r.push(b.place(format!("hasr.{i}")));
        eating.push(b.place(format!("eating.{i}")));
        fork.push(b.place_marked(format!("fork.{i}")));
    }

    for i in 0..n {
        let right = (i + 1) % n;
        b.transition(format!("go.{i}"), &[idle[i]], &[wait_l[i], wait_r[i]]);
        b.transition(format!("takel.{i}"), &[wait_l[i], fork[i]], &[has_l[i]]);
        b.transition(format!("taker.{i}"), &[wait_r[i], fork[right]], &[has_r[i]]);
        b.transition(format!("eat.{i}"), &[has_l[i], has_r[i]], &[eating[i]]);
        b.transition(
            format!("leave.{i}"),
            &[eating[i]],
            &[idle[i], fork[i], fork[right]],
        );
    }
    b.build().expect("philosophers net is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_philosophers_match_figure4() {
        let net = philosophers(2);
        assert_eq!(net.num_places(), 14, "the paper's Figure 4 has 14 places");
        assert_eq!(net.num_transitions(), 10);
        let rg = net.explore().unwrap();
        assert_eq!(rg.num_markings(), 22, "Section 4.3 reports 22 markings");
    }

    #[test]
    fn scaling_grows_the_state_space() {
        let m3 = philosophers(3).explore().unwrap().num_markings();
        let m4 = philosophers(4).explore().unwrap().num_markings();
        assert!(m4 > m3);
        assert!(m3 > 22);
    }

    #[test]
    fn classic_deadlock_exists() {
        let net = philosophers(3);
        let rg = net.explore().unwrap();
        assert!(!rg.deadlocks(&net).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_philosopher() {
        let _ = philosophers(1);
    }
}
