//! A synthetic register-pipeline controller net (the `JJreg` analogue of
//! Table 4).
//!
//! The original `JJreg` benchmarks describe the control of a register in an
//! asynchronous datapath. The synthetic equivalent built here couples a
//! pipeline of latch controllers (one 4-phase SMC per stage) with a shared
//! write bus arbitrated between several ports (one SMC per port plus one bus
//! SMC), so that — like the original — the net exhibits many overlapping
//! invariants and a state space dominated by interleavings.

use crate::builder::NetBuilder;
use crate::net::PetriNet;

/// Pre-configured sizes mirroring the two `JJreg` rows of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JjregVariant {
    /// Larger variant: 5 register stages fed through 3 bus ports.
    A,
    /// Smaller variant: 3 register stages fed through 2 bus ports.
    B,
}

/// Builds the register-pipeline controller for the chosen [`JjregVariant`].
///
/// # Examples
///
/// ```
/// use pnsym_net::nets::{jjreg, JjregVariant};
/// let net = jjreg(JjregVariant::B);
/// assert!(net.num_places() > 15);
/// assert!(net.explore().unwrap().num_markings() > 50);
/// ```
pub fn jjreg(variant: JjregVariant) -> PetriNet {
    match variant {
        JjregVariant::A => jjreg_sized("jjreg-a", 5, 3),
        JjregVariant::B => jjreg_sized("jjreg-b", 3, 2),
    }
}

/// Builds a register pipeline with `stages` latch controllers written
/// through `ports` bus ports (fully parameterised form).
///
/// # Panics
///
/// Panics if `stages == 0` or `ports == 0`.
pub fn jjreg_sized(name: &str, stages: usize, ports: usize) -> PetriNet {
    assert!(
        stages >= 1 && ports >= 1,
        "need at least one stage and one port"
    );
    let mut b = NetBuilder::new(name);

    // Shared write bus: free or owned by one port.
    let bus_free = b.place_marked("bus_free");
    let bus_busy: Vec<_> = (0..ports)
        .map(|j| b.place(format!("bus_busy.{j}")))
        .collect();

    // Port state machines, declared port by port so the default variable
    // order keeps each port's places adjacent.
    let mut p_idle = Vec::with_capacity(ports);
    let mut p_want = Vec::with_capacity(ports);
    let mut p_using = Vec::with_capacity(ports);
    let mut p_written = Vec::with_capacity(ports);
    for j in 0..ports {
        p_idle.push(b.place_marked(format!("port_idle.{j}")));
        p_want.push(b.place(format!("port_want.{j}")));
        p_using.push(b.place(format!("port_using.{j}")));
        p_written.push(b.place(format!("port_written.{j}")));
    }

    // Latch controller state machines, declared stage by stage.
    let mut l_idle = Vec::with_capacity(stages);
    let mut l_capture = Vec::with_capacity(stages);
    let mut l_hold = Vec::with_capacity(stages);
    let mut l_release = Vec::with_capacity(stages);
    for s in 0..stages {
        l_idle.push(b.place_marked(format!("latch_idle.{s}")));
        l_capture.push(b.place(format!("latch_capture.{s}")));
        l_hold.push(b.place(format!("latch_hold.{s}")));
        l_release.push(b.place(format!("latch_release.{s}")));
    }

    // Port protocol: request the bus, write into the first latch, release.
    for j in 0..ports {
        b.transition(format!("port_req.{j}"), &[p_idle[j]], &[p_want[j]]);
        b.transition(
            format!("port_acquire.{j}"),
            &[p_want[j], bus_free],
            &[p_using[j], bus_busy[j]],
        );
        b.transition(
            format!("port_write.{j}"),
            &[p_using[j], l_idle[0]],
            &[p_written[j], l_capture[0]],
        );
        b.transition(
            format!("port_release.{j}"),
            &[p_written[j], bus_busy[j]],
            &[p_idle[j], bus_free],
        );
    }

    // Latch pipeline: capture → hold, forwarded downstream, then recover.
    for s in 0..stages {
        b.transition(format!("latch_done.{s}"), &[l_capture[s]], &[l_hold[s]]);
        if s + 1 < stages {
            b.transition(
                format!("forward.{s}"),
                &[l_hold[s], l_idle[s + 1]],
                &[l_release[s], l_capture[s + 1]],
            );
        } else {
            b.transition(format!("output.{s}"), &[l_hold[s]], &[l_release[s]]);
        }
        b.transition(format!("latch_reset.{s}"), &[l_release[s]], &[l_idle[s]]);
    }

    b.build().expect("jjreg net is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_have_expected_sizes() {
        let a = jjreg(JjregVariant::A);
        let b = jjreg(JjregVariant::B);
        assert_eq!(a.num_places(), 1 + 3 + 4 * 3 + 4 * 5);
        assert_eq!(b.num_places(), 1 + 2 + 4 * 2 + 4 * 3);
        assert!(a.num_places() > b.num_places());
    }

    #[test]
    fn bus_mutual_exclusion_holds() {
        let net = jjreg(JjregVariant::B);
        let rg = net.explore().unwrap();
        let busy: Vec<_> = (0..2)
            .map(|j| net.place_by_name(&format!("bus_busy.{j}")).unwrap())
            .collect();
        for m in rg.markings() {
            assert!(busy.iter().filter(|&&p| m.is_marked(p)).count() <= 1);
        }
    }

    #[test]
    fn pipeline_is_live() {
        let net = jjreg(JjregVariant::B);
        let rg = net.explore().unwrap();
        assert!(rg.deadlocks(&net).is_empty());
        let report = net.behaviour_report_from(&rg);
        assert!(report.dead_transitions.is_empty());
    }

    #[test]
    fn custom_sizes_are_supported() {
        let net = jjreg_sized("custom", 2, 1);
        assert!(net.explore().unwrap().num_markings() > 10);
    }
}
