//! A token-ring distributed mutual exclusion (DME) net, at two levels of
//! detail.
//!
//! The original Table-4 benchmarks (`DMEspec`, `DMEcir`) come from Yoneda et
//! al.'s asynchronous-circuit suite, which is not publicly archived; this
//! module provides scalable synthetic equivalents exercising the same code
//! path: a ring of cells sharing a single privilege token (one large SMC)
//! with per-cell user and arbiter state machines (many small overlapping
//! SMCs).

use crate::builder::NetBuilder;
use crate::net::PetriNet;

/// Level of detail of the generated DME cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DmeStyle {
    /// Abstract handshake: 7 places and 5 transitions per cell
    /// (the `DMEspec` analogue).
    Spec,
    /// Gate-level-like refinement with an explicit request/grant/release
    /// handshake and a local arbiter: 11 places and 8 transitions per cell
    /// (the `DMEcir` analogue).
    Circuit,
}

/// A distributed mutual-exclusion ring with `n` cells.
///
/// A single privilege token circulates around the ring; a cell may only
/// enter its critical section while holding the token, and performs a local
/// preparation step concurrently with waiting for it. The token places of
/// all cells form one `2n`-place SMC carrying one token, which is where the
/// dense encoding saves the most variables.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use pnsym_net::nets::{dme, DmeStyle};
/// let net = dme(3, DmeStyle::Spec);
/// assert_eq!(net.num_places(), 21);
/// let rg = net.explore().unwrap();
/// assert!(rg.deadlocks(&net).is_empty());
/// ```
pub fn dme(n: usize, style: DmeStyle) -> PetriNet {
    assert!(n >= 2, "a DME ring needs at least two cells");
    match style {
        DmeStyle::Spec => dme_spec(n),
        DmeStyle::Circuit => dme_circuit(n),
    }
}

fn dme_spec(n: usize) -> PetriNet {
    let mut b = NetBuilder::new(format!("dme-spec-{n}"));
    // Places are declared cell by cell so that the default variable order
    // keeps each cell's places adjacent. Besides the request/enter/exit
    // protocol, every cell performs a local preparation step concurrently
    // with waiting for the privilege token; this concurrent branch is what
    // gives the family the exponential interleaving count of the original
    // Yoneda benchmarks.
    let mut idle = Vec::with_capacity(n);
    let mut pending = Vec::with_capacity(n);
    let mut critical = Vec::with_capacity(n);
    let mut prep = Vec::with_capacity(n);
    let mut prepped = Vec::with_capacity(n);
    let mut at = Vec::with_capacity(n);
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        idle.push(b.place_marked(format!("idle.{i}")));
        pending.push(b.place(format!("pending.{i}")));
        critical.push(b.place(format!("critical.{i}")));
        prep.push(b.place(format!("prep.{i}")));
        prepped.push(b.place(format!("prepped.{i}")));
        at.push(if i == 0 {
            b.place_marked(format!("token_at.{i}"))
        } else {
            b.place(format!("token_at.{i}"))
        });
        held.push(b.place(format!("token_held.{i}")));
    }

    for i in 0..n {
        let next = (i + 1) % n;
        b.transition(format!("request.{i}"), &[idle[i]], &[pending[i], prep[i]]);
        b.transition(format!("prepare.{i}"), &[prep[i]], &[prepped[i]]);
        b.transition(
            format!("enter.{i}"),
            &[pending[i], at[i]],
            &[critical[i], held[i]],
        );
        b.transition(
            format!("exit.{i}"),
            &[critical[i], held[i], prepped[i]],
            &[idle[i], at[i]],
        );
        b.transition(format!("pass.{i}"), &[at[i]], &[at[next]]);
    }
    b.build().expect("dme-spec net is well formed")
}

fn dme_circuit(n: usize) -> PetriNet {
    let mut b = NetBuilder::new(format!("dme-cir-{n}"));
    // Places are declared cell by cell so that the default variable order
    // keeps each cell's places adjacent.
    let mut idle = Vec::with_capacity(n);
    let mut pending = Vec::with_capacity(n);
    let mut reqd = Vec::with_capacity(n);
    let mut gntd = Vec::with_capacity(n);
    let mut critical = Vec::with_capacity(n);
    let mut reld = Vec::with_capacity(n);
    let mut ackd = Vec::with_capacity(n);
    let mut arb_idle = Vec::with_capacity(n);
    let mut arb_busy = Vec::with_capacity(n);
    let mut at = Vec::with_capacity(n);
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        idle.push(b.place_marked(format!("idle.{i}")));
        pending.push(b.place(format!("pending.{i}")));
        reqd.push(b.place(format!("reqd.{i}")));
        gntd.push(b.place(format!("gntd.{i}")));
        critical.push(b.place(format!("critical.{i}")));
        reld.push(b.place(format!("reld.{i}")));
        ackd.push(b.place(format!("ackd.{i}")));
        arb_idle.push(b.place_marked(format!("arb_idle.{i}")));
        arb_busy.push(b.place(format!("arb_busy.{i}")));
        at.push(if i == 0 {
            b.place_marked(format!("token_at.{i}"))
        } else {
            b.place(format!("token_at.{i}"))
        });
        held.push(b.place(format!("token_held.{i}")));
    }

    for i in 0..n {
        let next = (i + 1) % n;
        b.transition(format!("request.{i}"), &[idle[i]], &[pending[i]]);
        b.transition(
            format!("raise.{i}"),
            &[pending[i], arb_idle[i]],
            &[reqd[i], arb_busy[i]],
        );
        b.transition(format!("grant.{i}"), &[reqd[i], at[i]], &[gntd[i], held[i]]);
        b.transition(format!("enter.{i}"), &[gntd[i]], &[critical[i]]);
        b.transition(format!("release.{i}"), &[critical[i]], &[reld[i]]);
        b.transition(
            format!("lower.{i}"),
            &[reld[i], arb_busy[i]],
            &[ackd[i], arb_idle[i]],
        );
        b.transition(format!("done.{i}"), &[ackd[i], held[i]], &[idle[i], at[i]]);
        b.transition(format!("pass.{i}"), &[at[i]], &[at[next]]);
    }
    b.build().expect("dme-circuit net is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_structure_counts() {
        let net = dme(4, DmeStyle::Spec);
        assert_eq!(net.num_places(), 28);
        assert_eq!(net.num_transitions(), 20);
        assert_eq!(net.initial_marking().token_count(), 5);
    }

    #[test]
    fn circuit_is_larger_than_spec() {
        let spec = dme(3, DmeStyle::Spec);
        let cir = dme(3, DmeStyle::Circuit);
        assert!(cir.num_places() > spec.num_places());
        assert!(cir.num_transitions() > spec.num_transitions());
    }

    #[test]
    fn mutual_exclusion_holds() {
        for style in [DmeStyle::Spec, DmeStyle::Circuit] {
            let net = dme(3, style);
            let rg = net.explore().unwrap();
            assert!(rg.deadlocks(&net).is_empty(), "{style:?} should be live");
            let criticals: Vec<_> = (0..3)
                .map(|i| net.place_by_name(&format!("critical.{i}")).unwrap())
                .collect();
            for m in rg.markings() {
                let in_cs = criticals.iter().filter(|&&p| m.is_marked(p)).count();
                assert!(in_cs <= 1, "two cells in the critical section");
            }
        }
    }

    #[test]
    fn state_space_grows_with_ring_size() {
        let m2 = dme(2, DmeStyle::Spec).explore().unwrap().num_markings();
        let m4 = dme(4, DmeStyle::Spec).explore().unwrap().num_markings();
        assert!(m4 > 4 * m2);
    }
}
