//! A scalable Muller-pipeline handshake net (4 places per stage).

use crate::builder::NetBuilder;
use crate::net::PetriNet;

/// An `n`-stage Muller-pipeline handshake net.
///
/// Each stage cycles through the four phases *ready → received → done →
/// recovering*, forming a 4-place SMC per stage (so the sparse encoding uses
/// `4n` variables and the SMC-dense encoding `2n`, the 50 % reduction
/// reported for `muller-N` in Table 3). A stage can only accept new data
/// when the previous stage has completed its `done` phase, which produces
/// the pipeline-occupancy state-space growth of the original benchmark.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Examples
///
/// ```
/// let net = pnsym_net::nets::muller(5);
/// assert_eq!(net.num_places(), 20);
/// assert!(net.explore().unwrap().num_markings() > 32);
/// ```
pub fn muller(n: usize) -> PetriNet {
    assert!(n >= 1, "a pipeline needs at least one stage");
    let mut b = NetBuilder::new(format!("muller-{n}"));
    // Places are declared stage by stage so that the default variable order
    // of the sparse encoding keeps each stage's places adjacent.
    let mut ready = Vec::with_capacity(n);
    let mut received = Vec::with_capacity(n);
    let mut done = Vec::with_capacity(n);
    let mut recover = Vec::with_capacity(n);
    for i in 0..n {
        ready.push(b.place_marked(format!("ready.{i}")));
        received.push(b.place(format!("received.{i}")));
        done.push(b.place(format!("done.{i}")));
        recover.push(b.place(format!("recover.{i}")));
    }

    for i in 0..n {
        if i == 0 {
            // The environment feeds the first stage freely.
            b.transition("take.0", &[ready[0]], &[received[0]]);
        } else {
            // Stage i takes data from stage i-1, releasing it.
            b.transition(
                format!("take.{i}"),
                &[ready[i], done[i - 1]],
                &[received[i], recover[i - 1]],
            );
        }
        b.transition(format!("compute.{i}"), &[received[i]], &[done[i]]);
        b.transition(format!("reset.{i}"), &[recover[i]], &[ready[i]]);
    }
    // The environment consumes the last stage's output.
    b.transition(format!("emit.{}", n - 1), &[done[n - 1]], &[recover[n - 1]]);
    b.build().expect("muller pipeline net is well formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_counts() {
        let net = muller(6);
        assert_eq!(net.num_places(), 24);
        assert_eq!(net.num_transitions(), 3 * 6 + 1);
        assert_eq!(net.initial_marking().token_count(), 6);
    }

    #[test]
    fn single_stage_cycles() {
        let net = muller(1);
        let rg = net.explore().unwrap();
        assert_eq!(rg.num_markings(), 4);
        assert!(rg.deadlocks(&net).is_empty());
    }

    #[test]
    fn state_space_grows_exponentially() {
        let counts: Vec<usize> = (1..=5)
            .map(|n| muller(n).explore().unwrap().num_markings())
            .collect();
        for w in counts.windows(2) {
            assert!(
                w[1] as f64 >= 1.5 * w[0] as f64,
                "growth too slow: {counts:?}"
            );
        }
    }

    #[test]
    fn pipeline_is_deadlock_free_and_safe() {
        let net = muller(4);
        let rg = net.explore().unwrap();
        assert!(rg.deadlocks(&net).is_empty());
        for m in rg.markings() {
            // Exactly one token per stage SMC.
            assert_eq!(m.token_count(), 4);
        }
    }
}
