//! Property-based tests of the BDD package.
//!
//! Random boolean expressions are generated, built both as BDDs and as naive
//! truth tables, and compared exhaustively; structural invariants and
//! reordering invariance are checked along the way.

use pnsym_bdd::{BddManager, Ref, SiftConfig, VarId};
use proptest::prelude::*;

const NVARS: usize = 5;

/// A tiny boolean expression AST used as the reference semantics.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Const(bool),
}

impl Expr {
    fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            Expr::Var(i) => assignment[*i],
            Expr::Not(a) => !a.eval(assignment),
            Expr::And(a, b) => a.eval(assignment) && b.eval(assignment),
            Expr::Or(a, b) => a.eval(assignment) || b.eval(assignment),
            Expr::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
            Expr::Ite(c, t, e) => {
                if c.eval(assignment) {
                    t.eval(assignment)
                } else {
                    e.eval(assignment)
                }
            }
            Expr::Const(b) => *b,
        }
    }

    fn build(&self, m: &mut BddManager) -> Ref {
        match self {
            Expr::Var(i) => m.var(VarId(*i as u32)),
            Expr::Not(a) => {
                let x = a.build(m);
                m.not(x)
            }
            Expr::And(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.and(x, y)
            }
            Expr::Or(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.or(x, y)
            }
            Expr::Xor(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.xor(x, y)
            }
            Expr::Ite(c, t, e) => {
                let (x, y, z) = (c.build(m), t.build(m), e.build(m));
                m.ite(x, y, z)
            }
            Expr::Const(true) => m.one(),
            Expr::Const(false) => m.zero(),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NVARS).prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn all_assignments() -> impl Iterator<Item = Vec<bool>> {
    (0u32..(1 << NVARS)).map(|bits| (0..NVARS).map(|i| bits & (1 << i) != 0).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_reference_semantics(expr in arb_expr()) {
        let mut m = BddManager::with_vars(NVARS);
        let f = expr.build(&mut m);
        for a in all_assignments() {
            prop_assert_eq!(m.eval(f, |v| a[v.index()]), expr.eval(&a));
        }
        prop_assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn sat_count_matches_truth_table(expr in arb_expr()) {
        let mut m = BddManager::with_vars(NVARS);
        let f = expr.build(&mut m);
        let expected = all_assignments().filter(|a| expr.eval(a)).count();
        prop_assert_eq!(m.sat_count(f, NVARS), expected as f64);
    }

    #[test]
    fn negation_is_involutive_and_complement(expr in arb_expr()) {
        let mut m = BddManager::with_vars(NVARS);
        let f = expr.build(&mut m);
        let nf = m.not(f);
        let nnf = m.not(nf);
        prop_assert_eq!(nnf, f);
        prop_assert_eq!(m.and(f, nf), m.zero());
        prop_assert_eq!(m.or(f, nf), m.one());
    }

    #[test]
    fn exists_equals_disjunction_of_cofactors(expr in arb_expr(), var in 0..NVARS) {
        let mut m = BddManager::with_vars(NVARS);
        let f = expr.build(&mut m);
        let v = m.var_id(var);
        let f0 = m.restrict(f, v, false);
        let f1 = m.restrict(f, v, true);
        let expected = m.or(f0, f1);
        let got = m.exists(f, &[v]);
        prop_assert_eq!(got, expected);
        let expected_all = m.and(f0, f1);
        let got_all = m.forall(f, &[v]);
        prop_assert_eq!(got_all, expected_all);
    }

    #[test]
    fn and_exists_equals_conjoin_then_quantify(a in arb_expr(), b in arb_expr()) {
        let mut m = BddManager::with_vars(NVARS);
        let fa = a.build(&mut m);
        let fb = b.build(&mut m);
        let vars = [m.var_id(0), m.var_id(2)];
        let conj = m.and(fa, fb);
        let expected = m.exists(conj, &vars);
        let got = m.and_exists(fa, fb, &vars);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn and_exists_agrees_across_gc_and_reordering(
        a in arb_expr(),
        b in arb_expr(),
        quantified in proptest::collection::vec(0..NVARS, 0..=NVARS),
        action in 0u8..4,
    ) {
        // The fused relational product must equal the two-step
        // `exists(and(f, g), cube)` on arbitrary quantification sets, and
        // keep doing so after garbage collection (which rebuilds the unique
        // tables and bumps the cache generation) and sifting (which rewrites
        // the diagrams level by level) run in between — the kernel
        // interleaving every traversal iteration exercises.
        let mut m = BddManager::with_vars(NVARS);
        let fa = a.build(&mut m);
        let fb = b.build(&mut m);
        let mut vars: Vec<VarId> = quantified.iter().map(|&i| m.var_id(i)).collect();
        vars.sort_unstable();
        vars.dedup();
        m.protect(fa);
        m.protect(fb);
        let before = {
            let conj = m.and(fa, fb);
            let expected = m.exists(conj, &vars);
            let got = m.and_exists(fa, fb, &vars);
            prop_assert_eq!(got, expected);
            m.protect(got);
            got
        };
        match action {
            1 => m.collect_garbage(),
            2 => {
                m.sift_with(SiftConfig { max_growth: 1.5, max_vars: None });
            }
            3 => {
                m.collect_garbage();
                m.clear_cache();
            }
            _ => {}
        }
        prop_assert!(m.check_invariants().is_ok());
        // Recompute both formulations after the maintenance: the fused op
        // must still match the two-step result, and canonicity must return
        // the protected pre-maintenance handle.
        let conj = m.and(fa, fb);
        let expected = m.exists(conj, &vars);
        let got = m.and_exists(fa, fb, &vars);
        prop_assert_eq!(got, expected);
        prop_assert_eq!(got, before);
        // And the semantics is the reference one.
        for assignment in all_assignments() {
            let reference = all_assignments()
                .filter(|other| {
                    (0..NVARS).all(|i| {
                        vars.contains(&m.var_id(i)) || other[i] == assignment[i]
                    })
                })
                .any(|other| a.eval(&other) && b.eval(&other));
            prop_assert_eq!(m.eval(got, |v| assignment[v.index()]), reference);
        }
    }

    #[test]
    fn reordering_preserves_semantics(expr in arb_expr(), seed in any::<u64>()) {
        let mut m = BddManager::with_vars(NVARS);
        let f = expr.build(&mut m);
        m.protect(f);
        // Apply a pseudo-random permutation derived from the seed.
        let mut order: Vec<VarId> = m.variables();
        let mut s = seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        m.reorder_to(&order);
        prop_assert!(m.check_invariants().is_ok());
        for a in all_assignments() {
            prop_assert_eq!(m.eval(f, |v| a[v.index()]), expr.eval(&a));
        }
    }

    #[test]
    fn sifting_preserves_semantics_and_never_grows(expr in arb_expr()) {
        let mut m = BddManager::with_vars(NVARS);
        let f = expr.build(&mut m);
        m.protect(f);
        m.collect_garbage();
        let before = m.node_count(f);
        m.sift_with(SiftConfig { max_growth: 2.0, max_vars: None });
        prop_assert!(m.check_invariants().is_ok());
        prop_assert!(m.node_count(f) <= before);
        for a in all_assignments() {
            prop_assert_eq!(m.eval(f, |v| a[v.index()]), expr.eval(&a));
        }
    }

    #[test]
    fn sat_assignments_agree_with_truth_table(expr in arb_expr()) {
        let mut m = BddManager::with_vars(NVARS);
        let f = expr.build(&mut m);
        let vars = m.variables();
        let mut got: Vec<Vec<bool>> = m.sat_assignments(f, &vars).collect();
        got.sort();
        let mut expected: Vec<Vec<bool>> =
            all_assignments().filter(|a| expr.eval(a)).collect();
        expected.sort();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn interleaved_ops_gc_and_sifting_preserve_invariants(
        steps in proptest::collection::vec((arb_expr(), 0u8..4), 1..10)
    ) {
        // Random operations interleaved with garbage collections (which
        // rebuild the open-addressing unique tables in place and bump the
        // cache generation) and sifting (which rewrites the tables level by
        // level). Invariants and canonicity must survive every interleaving.
        let mut m = BddManager::with_vars(NVARS);
        let mut roots: Vec<(Expr, Ref)> = Vec::new();
        for (expr, action) in steps {
            let f = expr.build(&mut m);
            m.protect(f);
            roots.push((expr, f));
            match action {
                1 => m.collect_garbage(),
                2 => {
                    m.sift_with(SiftConfig { max_growth: 1.5, max_vars: None });
                }
                3 => {
                    m.collect_garbage();
                    m.clear_cache();
                }
                _ => {}
            }
            prop_assert!(m.check_invariants().is_ok());
        }
        // Every protected root still denotes its function, and rebuilding
        // the same function must return the identical handle (canonicity).
        for (expr, f) in &roots {
            for a in all_assignments() {
                prop_assert_eq!(m.eval(*f, |v| a[v.index()]), expr.eval(&a));
            }
            let rebuilt = expr.build(&mut m);
            prop_assert_eq!(rebuilt, *f);
        }
        // Releasing every root must let a final collection empty the arena;
        // the rebuilt tables may then hold only the single shared terminal.
        for (_, f) in &roots {
            m.unprotect(*f);
        }
        m.collect_garbage();
        prop_assert_eq!(m.live_node_count(), 1);
        prop_assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn transfer_round_trips_complement_bits(
        exprs in proptest::collection::vec(arb_expr(), 1..4)
    ) {
        // Serialize a shared multi-root subgraph where every function is
        // exported alongside its negation — so complement bits appear both
        // on roots and on interior edges — and import it into a fresh
        // replica. Semantics, the f/¬f pairing (one shared subgraph, a bit
        // flip apart) and the serialized form itself must all survive.
        let mut m = BddManager::with_vars(NVARS);
        let mut roots = Vec::new();
        for expr in &exprs {
            let f = expr.build(&mut m);
            roots.push(f);
            roots.push(m.not(f));
        }
        let serialized = m.export_subgraph(&roots);
        let mut replica = BddManager::with_vars(NVARS);
        let imported = replica.import_subgraph(&serialized);
        prop_assert_eq!(imported.len(), roots.len());
        for (i, expr) in exprs.iter().enumerate() {
            let f = imported[2 * i];
            let nf = imported[2 * i + 1];
            prop_assert_eq!(replica.not(f), nf);
            for a in all_assignments() {
                prop_assert_eq!(replica.eval(f, |v| a[v.index()]), expr.eval(&a));
                prop_assert_eq!(replica.eval(nf, |v| a[v.index()]), !expr.eval(&a));
            }
        }
        prop_assert!(replica.check_invariants().is_ok());
        // The deterministic postorder export makes the serialized form
        // canonical: re-exporting the imported roots is bit-identical.
        prop_assert_eq!(replica.export_subgraph(&imported), serialized);
    }

    #[test]
    fn rename_forward_matches_reference(expr in arb_expr()) {
        // Rename every variable i -> i + NVARS in a 2*NVARS manager.
        let mut m = BddManager::with_vars(2 * NVARS);
        let f = expr.build(&mut m);
        let map: Vec<(VarId, VarId)> = (0..NVARS)
            .map(|i| (m.var_id(i), m.var_id(i + NVARS)))
            .collect();
        let g = m.rename(f, &map);
        for a in all_assignments() {
            // Assignment applied to the shifted variables.
            let got = m.eval(g, |v| {
                let i = v.index();
                if i >= NVARS { a[i - NVARS] } else { false }
            });
            prop_assert_eq!(got, expr.eval(&a));
        }
    }
}
