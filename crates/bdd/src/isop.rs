//! Irredundant sum-of-products extraction (Minato–Morreale ISOP).
//!
//! Turning a BDD back into a compact two-level formula is handy for
//! reporting: the reproduction uses it to print the characteristic
//! functions of places (Table 2 of the paper) in a human-readable form.

use crate::manager::{BddManager, Ref, VarId, ONE, ZERO};

/// A product term: a conjunction of literals `(variable, polarity)`.
/// The empty cube is the constant `true`.
pub type Cube = Vec<(VarId, bool)>;

impl BddManager {
    /// Computes an irredundant sum-of-products cover of `f` using the
    /// Minato–Morreale ISOP algorithm. The disjunction of the returned
    /// cubes is logically equivalent to `f`; for the constant `false` the
    /// cover is empty, and for `true` it is a single empty cube.
    pub fn to_sop(&mut self, f: Ref) -> Vec<Cube> {
        let (cover, _bdd) = self.isop(f.0, f.0);
        cover
    }

    /// Renders `f` as a sum-of-products formula using `name` to print
    /// variables. Complemented literals are suffixed with `'`
    /// (e.g. `x1'·x2 + x0`), `0` is `false` and the empty cube prints as
    /// `true`.
    pub fn format_sop<N: Fn(VarId) -> String>(&mut self, f: Ref, name: N) -> String {
        let cover = self.to_sop(f);
        if cover.is_empty() {
            return "false".to_string();
        }
        let terms: Vec<String> = cover
            .iter()
            .map(|cube| {
                if cube.is_empty() {
                    "true".to_string()
                } else {
                    cube.iter()
                        .map(|&(v, positive)| {
                            if positive {
                                name(v)
                            } else {
                                format!("{}'", name(v))
                            }
                        })
                        .collect::<Vec<_>>()
                        .join("·")
                }
            })
            .collect();
        terms.join(" + ")
    }

    /// The ISOP recursion on an interval `[lower, upper]`: returns a cover
    /// whose function `g` satisfies `lower ⊆ g ⊆ upper`, together with the
    /// BDD of `g`.
    fn isop(&mut self, lower: u32, upper: u32) -> (Vec<Cube>, u32) {
        if lower == ZERO {
            return (Vec::new(), ZERO);
        }
        if upper == ONE {
            return (vec![Vec::new()], ONE);
        }
        debug_assert_ne!(upper, ZERO, "interval must be non-empty");
        // Branch on the topmost variable of either bound.
        let level = self.level(lower).min(self.level(upper));
        let var = self.var_at(level);
        let (l0, l1) = self.cofactors_at(lower, level);
        let (u0, u1) = self.cofactors_at(upper, level);

        // Minterms that can only be covered by cubes containing ¬v / v.
        let not_u1 = self.not_idx(u1);
        let not_u0 = self.not_idx(u0);
        let lx0 = self.and_idx(l0, not_u1);
        let lx1 = self.and_idx(l1, not_u0);
        let (mut cover0, g0) = self.isop(lx0, u0);
        let (mut cover1, g1) = self.isop(lx1, u1);

        // What is still uncovered can use cubes independent of v.
        let not_g0 = self.not_idx(g0);
        let not_g1 = self.not_idx(g1);
        let rem0 = self.and_idx(l0, not_g0);
        let rem1 = self.and_idx(l1, not_g1);
        let remainder = self.or_idx_pub(rem0, rem1);
        let common_upper = self.and_idx(u0, u1);
        let (cover_d, gd) = self.isop(remainder, common_upper);

        // Assemble the result cover and its BDD.
        for cube in &mut cover0 {
            cube.push((var, false));
        }
        for cube in &mut cover1 {
            cube.push((var, true));
        }
        let mut cover = cover0;
        cover.extend(cover1);
        cover.extend(cover_d);

        let with_v = self.mk(level, ZERO, g1);
        let without_v = self.mk(level, g0, ZERO);
        let parts = self.or_idx_pub(with_v, without_v);
        let g = self.or_idx_pub(parts, gd);
        (cover, g)
    }

    fn not_idx(&mut self, f: u32) -> u32 {
        f ^ 1
    }

    fn and_idx(&mut self, f: u32, g: u32) -> u32 {
        let r = self.and(Ref(f), Ref(g));
        r.0
    }

    fn or_idx_pub(&mut self, f: u32, g: u32) -> u32 {
        let r = self.or(Ref(f), Ref(g));
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rebuilds the BDD of a cover and checks equivalence with `f`.
    fn assert_cover_equivalent(m: &mut BddManager, f: Ref, cover: &[Cube]) {
        let mut acc = m.zero();
        for cube in cover {
            let c = m.cube(cube);
            acc = m.or(acc, c);
        }
        assert_eq!(acc, f, "cover is not equivalent to the function");
    }

    #[test]
    fn constants() {
        let mut m = BddManager::with_vars(2);
        assert!(m.to_sop(m.zero()).is_empty());
        let one_cover = m.to_sop(m.one());
        assert_eq!(one_cover, vec![Vec::new()]);
        assert_eq!(m.format_sop(m.zero(), |v| v.to_string()), "false");
        assert_eq!(m.format_sop(m.one(), |v| v.to_string()), "true");
    }

    #[test]
    fn simple_functions_round_trip() {
        let mut m = BddManager::with_vars(4);
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let cover = m.to_sop(f);
        assert_cover_equivalent(&mut m, f, &cover);
        assert_eq!(cover.len(), 2, "a·b + c has two prime implicants");

        let xor = m.xor(a, b);
        let cover = m.to_sop(xor);
        assert_cover_equivalent(&mut m, xor, &cover);
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn every_cube_implies_the_function() {
        let mut m = BddManager::with_vars(5);
        let v = m.variables();
        // A slightly irregular function.
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let d = m.var(v[3]);
        let ab = m.and(a, b);
        let nc = m.not(c);
        let ncd = m.and(nc, d);
        let f0 = m.or(ab, ncd);
        let bd = m.and(b, d);
        let f = m.or(f0, bd);
        let cover = m.to_sop(f);
        assert_cover_equivalent(&mut m, f, &cover);
        for cube in &cover {
            let c = m.cube(cube);
            let implies = m.implies(c, f);
            assert_eq!(implies, m.one(), "cube {cube:?} not contained in f");
        }
    }

    #[test]
    fn format_uses_names_and_complements() {
        let mut m = BddManager::with_vars(3);
        let v = m.variables();
        let a = m.var(v[0]);
        let nb = m.nvar(v[1]);
        let f = m.and(a, nb);
        let s = m.format_sop(f, |var| format!("x{}", var.index() + 1));
        assert_eq!(s, "x2'·x1");
    }

    #[test]
    fn paper_table2_shape() {
        // [p3] = x5'·(x1 + x2) expands to the SOP x5'·x1 + x5'·x2.
        let mut m = BddManager::with_vars(6);
        let x1 = m.var(m.var_id(0));
        let x2 = m.var(m.var_id(1));
        let nx5 = m.nvar(m.var_id(4));
        let or12 = m.or(x1, x2);
        let f = m.and(nx5, or12);
        let cover = m.to_sop(f);
        assert_cover_equivalent(&mut m, f, &cover);
        assert_eq!(cover.len(), 2);
        for cube in &cover {
            assert_eq!(cube.len(), 2);
        }
    }
}
