//! # pnsym-bdd — decision diagrams for symbolic Petri-net analysis
//!
//! A from-scratch implementation of Reduced Ordered Binary Decision Diagrams
//! (ROBDDs) and Zero-suppressed Decision Diagrams (ZDDs), sized for the
//! symbolic reachability analyses of the `pnsym` workspace (a reproduction
//! of Pastor & Cortadella, *Efficient Encoding Schemes for Symbolic Analysis
//! of Petri Nets*, DATE 1998).
//!
//! ## Features
//!
//! * Strong canonicity: equal [`Ref`]s ⇔ equal functions.
//! * The full `apply` family ([`BddManager::and`], [`BddManager::or`],
//!   [`BddManager::xor`], [`BddManager::ite`], …), quantification and the
//!   relational product ([`BddManager::and_exists`]) used for image
//!   computation.
//! * Explicit garbage collection with protected roots, and dynamic variable
//!   reordering (adjacent swap + Rudell sifting) in [`reorder`].
//! * Counting and enumeration of satisfying assignments.
//! * A [`ZddManager`] for set-family manipulation, used as the sparse
//!   baseline representation of markings (Yoneda et al.).
//!
//! ## Quick start
//!
//! ```
//! use pnsym_bdd::BddManager;
//!
//! let mut m = BddManager::with_vars(3);
//! let (a, b, c) = (m.var_id(0), m.var_id(1), m.var_id(2));
//! let va = m.var(a);
//! let vb = m.var(b);
//! let vc = m.var(c);
//! let ab = m.and(va, vb);
//! let f = m.or(ab, vc);          // (a ∧ b) ∨ c
//! assert_eq!(m.sat_count(f, 3), 5.0);
//! let g = m.exists(f, &[c]);     // ∃c. f  =  true
//! assert_eq!(g, m.one());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod budget;
mod cache;
mod dot;
mod isop;
mod manager;
mod ops;
pub mod reorder;
mod table;
mod transfer;
mod zdd;

pub use analysis::SatAssignments;
pub use budget::{Budget, Interrupt, TruncationReason};
#[cfg(feature = "fault-inject")]
pub use budget::{DiskFaultSchedule, DiskFaultSite, FaultSchedule, FaultSite};
pub use isop::Cube;
pub use manager::{BddManager, ManagerStats, OpCacheStats, Ref, VarId};
pub use reorder::SiftConfig;
pub use transfer::{replica_manager, snapshot_checksum, SerializedBdd, SnapshotError};
pub use zdd::{ZddManager, ZddRef, ZddUpdate, ZddUpdateAction};
