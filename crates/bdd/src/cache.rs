//! The lossy computed cache memoising boolean operations.
//!
//! Unlike a general-purpose map, the computed cache of a BDD kernel does not
//! need to remember everything: a lost entry only costs a recomputation, so
//! the cache is a direct-mapped array of fixed-size entries where a colliding
//! insert simply overwrites the previous occupant. This bounds the cache's
//! memory (a power-of-two slot count, each slot 24 bytes) no matter how long
//! an analysis runs, where the previous `HashMap`-backed cache grew without
//! limit and reallocated on every resize.
//!
//! Invalidation is by generation counter: [`ComputedCache::invalidate_all`]
//! bumps a counter instead of touching the slots, so garbage collection and
//! reordering pay O(1) for cache invalidation instead of O(slots).
//!
//! The slot count starts small (tiny managers stay tiny) and doubles under
//! sustained insert pressure up to a configurable hard cap, after which the
//! cache is truly fixed-size and lossy.

/// log2 of the initial slot count.
const INITIAL_LOG2: u32 = 12;

/// log2 of the default hard cap on the slot count (2^23 slots × 24 bytes
/// per entry = 192 MiB). The cap exists so the cache cannot outgrow every
/// other allocation; in practice the proportional sizing below keeps the
/// cache at roughly the arena's size and the cap only binds on diagrams
/// of several million nodes.
const DEFAULT_MAX_LOG2: u32 = 23;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    a: u32,
    b: u32,
    c: u32,
    result: u32,
    /// Generation at which the entry was written; 0 means never written.
    generation: u32,
    op: u8,
}

/// Number of distinct operation tags the per-op counters can track. The
/// BDD manager uses 8 tags and the ZDD manager 7; one array covers both
/// with room to grow.
pub(crate) const MAX_OPS: usize = 16;

/// Hit/miss counters of one operation tag.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct OpCounters {
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

/// Statistics counters of a [`ComputedCache`]. The hot lookup path only
/// ever bumps one per-op counter; the aggregate hit/miss totals are
/// derived sums, so the per-op split costs nothing over a single pair of
/// global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CacheCounters {
    pub(crate) overwrites: u64,
    /// Per-operation hit/miss counters, indexed by the op tag.
    pub(crate) per_op: [OpCounters; MAX_OPS],
}

impl CacheCounters {
    /// Total lookups answered from the cache, across all operations.
    pub(crate) fn hits(&self) -> u64 {
        self.per_op.iter().map(|op| op.hits).sum()
    }

    /// Total lookups that missed, across all operations.
    pub(crate) fn misses(&self) -> u64 {
        self.per_op.iter().map(|op| op.misses).sum()
    }
}

/// A direct-mapped lossy operation cache with generation invalidation.
#[derive(Debug, Clone)]
pub(crate) struct ComputedCache {
    entries: Vec<Entry>,
    mask: usize,
    /// Entries written under an older generation read as empty.
    generation: u32,
    max_log2: u32,
    /// Inserts since the last resize, driving the bounded growth heuristic.
    inserts_since_resize: u64,
    /// Number of entry-array growths over the cache's lifetime; observed by
    /// the manager's budget checkpoints as a fault-injection site.
    growths: u64,
    counters: CacheCounters,
}

#[inline(always)]
fn slot_of(op: u8, a: u32, b: u32, c: u32, mask: usize) -> usize {
    // Fold the four key components into one u64, then run the splitmix64
    // finaliser (shared with the unique table) for full avalanche: the
    // masked low bits must depend on every key bit, or keys sharing low
    // operand bits pile onto one slot band and thrash.
    let folded = (((a as u64) << 32) | b as u64)
        ^ ((c as u64) << 8).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (op as u64) << 56;
    crate::table::splitmix64(folded) as usize & mask
}

impl ComputedCache {
    /// Creates a cache with the default initial size and growth cap.
    pub(crate) fn new() -> Self {
        Self::with_max_log2(DEFAULT_MAX_LOG2)
    }

    /// Creates a cache whose slot count never exceeds `2^max_log2`.
    pub(crate) fn with_max_log2(max_log2: u32) -> Self {
        let log2 = INITIAL_LOG2.min(max_log2);
        ComputedCache {
            entries: vec![Entry::default(); 1 << log2],
            mask: (1 << log2) - 1,
            generation: 1,
            max_log2,
            inserts_since_resize: 0,
            growths: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Number of entry-array growths so far (monotone).
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    #[inline]
    pub(crate) fn growth_events(&self) -> u64 {
        self.growths
    }

    /// Number of slots currently allocated.
    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// The hard cap on the slot count.
    pub(crate) fn max_capacity(&self) -> usize {
        1 << self.max_log2
    }

    /// Changes the hard cap (shrinking the cap does not shrink an already
    /// grown cache).
    pub(crate) fn set_max_log2(&mut self, max_log2: u32) {
        self.max_log2 = max_log2.max(self.entries.len().trailing_zeros());
    }

    /// Cache statistics counters.
    #[inline]
    pub(crate) fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Looks up a memoised result in the two slots of the key's set.
    #[inline]
    pub(crate) fn get(&mut self, op: u8, a: u32, b: u32, c: u32) -> Option<u32> {
        let slot = slot_of(op, a, b, c, self.mask);
        // Two-way set associativity: the partner slot differs in the lowest
        // bit, so both ways share a cache line. One hot collision pair then
        // coexists instead of evicting each other on every probe, which is
        // what turns a deep recursion's memoisation quadratic.
        for i in [slot, (slot ^ 1) & self.mask] {
            let e = &self.entries[i];
            if e.generation == self.generation && e.op == op && e.a == a && e.b == b && e.c == c {
                self.counters.per_op[op as usize & (MAX_OPS - 1)].hits += 1;
                return Some(e.result);
            }
        }
        self.counters.per_op[op as usize & (MAX_OPS - 1)].misses += 1;
        None
    }

    /// Memoises a result, overwriting a set occupant if both ways are taken.
    #[inline]
    pub(crate) fn put(&mut self, op: u8, a: u32, b: u32, c: u32, result: u32) {
        self.inserts_since_resize += 1;
        if self.inserts_since_resize > 4 * self.entries.len() as u64
            && self.entries.len() < self.max_capacity()
        {
            self.grow();
        }
        let slot = slot_of(op, a, b, c, self.mask);
        // Prefer an empty way, then a way already holding this key; failing
        // both, overwrite the primary way.
        let mut target = slot;
        for i in [slot, (slot ^ 1) & self.mask] {
            let e = &self.entries[i];
            if e.generation != self.generation || (e.op == op && e.a == a && e.b == b && e.c == c) {
                target = i;
                break;
            }
        }
        let generation = self.generation;
        let e = &mut self.entries[target];
        if e.generation == generation && (e.op != op || e.a != a || e.b != b || e.c != c) {
            self.counters.overwrites += 1;
        }
        *e = Entry {
            a,
            b,
            c,
            result,
            generation,
            op,
        };
    }

    /// Grows the cache until it has at least `n` slots (rounded up to a
    /// power of two), without exceeding the hard cap. Managers call this as
    /// their node arena grows: a direct-mapped cache much smaller than the
    /// working set thrashes, and a deep operation whose memo entries evict
    /// each other degrades from linear in the diagram size to exponential.
    #[inline]
    pub(crate) fn ensure_covers(&mut self, n: usize) {
        while self.entries.len() < n && self.entries.len() < self.max_capacity() {
            self.grow();
        }
    }

    /// Invalidates every entry in O(1) by bumping the generation counter.
    pub(crate) fn invalidate_all(&mut self) {
        if self.generation == u32::MAX {
            // One full sweep every 2^32 - 1 invalidations keeps the counter
            // sound without a second word per entry.
            self.entries.fill(Entry::default());
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    fn grow(&mut self) {
        self.growths += 1;
        let new_cap = (self.entries.len() * 2).min(self.max_capacity());
        let old = std::mem::replace(&mut self.entries, vec![Entry::default(); new_cap]);
        self.mask = new_cap - 1;
        self.inserts_since_resize = 0;
        // Carry live entries over so a resize is not a full invalidation.
        for e in old {
            if e.generation == self.generation {
                let slot = slot_of(e.op, e.a, e.b, e.c, self.mask);
                self.entries[slot] = e;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trips() {
        let mut c = ComputedCache::new();
        assert_eq!(c.get(1, 10, 20, 0), None);
        c.put(1, 10, 20, 0, 99);
        assert_eq!(c.get(1, 10, 20, 0), Some(99));
        // A different op with the same operands is a distinct key.
        assert_eq!(c.get(2, 10, 20, 0), None);
        let counters = c.counters();
        assert_eq!(counters.hits(), 1);
        assert_eq!(counters.misses(), 2);
        // The per-op counters split the same traffic by tag.
        assert_eq!(counters.per_op[1].hits, 1);
        assert_eq!(counters.per_op[1].misses, 1);
        assert_eq!(counters.per_op[2].hits, 0);
        assert_eq!(counters.per_op[2].misses, 1);
    }

    #[test]
    fn invalidate_all_is_a_generation_bump() {
        let mut c = ComputedCache::new();
        c.put(1, 1, 2, 3, 7);
        assert_eq!(c.get(1, 1, 2, 3), Some(7));
        c.invalidate_all();
        assert_eq!(c.get(1, 1, 2, 3), None);
        // Re-inserting under the new generation works.
        c.put(1, 1, 2, 3, 8);
        assert_eq!(c.get(1, 1, 2, 3), Some(8));
    }

    #[test]
    fn colliding_insert_overwrites() {
        let mut c = ComputedCache::with_max_log2(0); // a single slot
        assert_eq!(c.capacity(), 1);
        c.put(1, 1, 1, 1, 10);
        c.put(1, 2, 2, 2, 20);
        assert_eq!(c.get(1, 1, 1, 1), None);
        assert_eq!(c.get(1, 2, 2, 2), Some(20));
        assert_eq!(c.counters().overwrites, 1);
    }

    #[test]
    fn growth_is_bounded_by_the_cap() {
        let mut c = ComputedCache::with_max_log2(13);
        for i in 0..2_000_000u32 {
            c.put(1, i, i, i, i);
        }
        assert!(c.capacity() <= 1 << 13);
        assert!(c.capacity().is_power_of_two());
    }

    #[test]
    fn grow_preserves_live_entries() {
        let mut c = ComputedCache::with_max_log2(20);
        c.put(3, 5, 6, 7, 42);
        // Force a growth cycle with filler traffic.
        for i in 0..(4 << INITIAL_LOG2) + 8 {
            let i = i as u32;
            c.put(1, i, 0, 0, i);
        }
        assert!(c.capacity() > 1 << INITIAL_LOG2);
        // The entry survives unless filler traffic happened to collide.
        if let Some(v) = c.get(3, 5, 6, 7) {
            assert_eq!(v, 42);
        }
    }
}
