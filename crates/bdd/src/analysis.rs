//! Read-only analyses of BDDs: evaluation, support, node counting,
//! satisfying-assignment counting and enumeration.
//!
//! Traversals mark visited nodes in arena-indexed scratch vectors rather
//! than hash sets: node indices are dense, so a `Vec` lookup is one load
//! with no hashing, which matters for the node counts taken after every
//! traversal iteration of the experiment harness.
//!
//! With complement edges, structure lives in *nodes* while polarity lives
//! in *edges*: the structural walks (support, node counts) strip the
//! complement bit and traverse node indices, while the semantic walks
//! (eval, sat counting, enumeration) push the accumulated complement
//! parity through each step.

use crate::manager::{BddManager, Ref, VarId, ONE, TERMINAL_LEVEL, ZERO};
use std::collections::HashSet;

impl BddManager {
    /// Evaluates `f` under the assignment given by `assignment`
    /// (`true` means the variable is set).
    pub fn eval<A: Fn(VarId) -> bool>(&self, f: Ref, assignment: A) -> bool {
        let mut cur = f.0;
        loop {
            match cur {
                ONE => return true,
                ZERO => return false,
                _ => {
                    let c = cur & 1;
                    let n = &self.nodes[(cur >> 1) as usize];
                    let var = self.var_at(n.level);
                    cur = (if assignment(var) { n.high } else { n.low }) ^ c;
                }
            }
        }
    }

    /// The set of variables `f` actually depends on, sorted by id.
    pub fn support(&self, f: Ref) -> Vec<VarId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut in_support = vec![false; self.num_vars()];
        let mut stack = vec![f.0 >> 1];
        while let Some(idx) = stack.pop() {
            if seen[idx as usize] {
                continue;
            }
            seen[idx as usize] = true;
            let n = &self.nodes[idx as usize];
            if n.level == TERMINAL_LEVEL {
                continue;
            }
            in_support[self.var_at(n.level).index()] = true;
            stack.push(n.low >> 1);
            stack.push(n.high >> 1);
        }
        in_support
            .iter()
            .enumerate()
            .filter(|&(_, &present)| present)
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Number of nodes in the diagram rooted at `f`, the shared terminal
    /// included. `f` and `¬f` have the same count: complement lives on the
    /// edges, not in the nodes.
    pub fn node_count(&self, f: Ref) -> usize {
        self.shared_node_count(&[f])
    }

    /// Number of distinct nodes reachable from any of `roots`
    /// (the "shared size" of a set of functions), the terminal included.
    pub fn shared_node_count(&self, roots: &[Ref]) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut count = 0usize;
        let mut stack: Vec<u32> = roots.iter().map(|r| r.0 >> 1).collect();
        while let Some(idx) = stack.pop() {
            if seen[idx as usize] {
                continue;
            }
            seen[idx as usize] = true;
            count += 1;
            let n = &self.nodes[idx as usize];
            if n.level != TERMINAL_LEVEL {
                stack.push(n.low >> 1);
                stack.push(n.high >> 1);
            }
        }
        count
    }

    /// Number of satisfying assignments of `f` over `nvars` variables,
    /// as a floating point value (exact for counts below 2^53).
    ///
    /// `nvars` must be at least the number of support variables of `f`;
    /// typically it is the total number of variables of the encoding.
    ///
    /// # Panics
    ///
    /// Panics if `nvars` is smaller than the number of declared variables
    /// appearing in the support of `f`.
    pub fn sat_count(&self, f: Ref, nvars: usize) -> f64 {
        let support = self.support(f);
        assert!(
            support.len() <= nvars,
            "nvars ({nvars}) is smaller than the support size ({})",
            support.len()
        );
        // Arena-indexed memo; NaN marks "not yet computed".
        let mut memo: Vec<f64> = vec![f64::NAN; self.nodes.len()];
        // Count over the support only, then scale by the free variables.
        let levels: Vec<u32> = {
            let mut l: Vec<u32> = support.iter().map(|&v| self.level_of(v)).collect();
            l.sort_unstable();
            l
        };
        let count = self.sat_count_rec(f.0, &levels, 0, &mut memo);
        count * 2f64.powi((nvars - support.len()) as i32)
    }

    fn sat_count_rec(&self, f: u32, levels: &[u32], depth: usize, memo: &mut Vec<f64>) -> f64 {
        if f == ZERO {
            return 0.0;
        }
        if f == ONE {
            return 2f64.powi((levels.len() - depth) as i32);
        }
        let idx = (f >> 1) as usize;
        let n = &self.nodes[idx];
        // Position of this node's level within the support levels.
        let pos = levels.partition_point(|&l| l < n.level);
        debug_assert!(pos < levels.len() && levels[pos] == n.level);
        // The memo stores the count of the node's *regular* function over
        // the support levels from `pos` on; a complemented edge reads the
        // complementary count of the same entry, so `f` and `¬f` share it.
        let sub = if memo[idx].is_nan() {
            let low = self.sat_count_rec(n.low, levels, pos + 1, memo);
            let high = self.sat_count_rec(n.high, levels, pos + 1, memo);
            let c = low + high;
            memo[idx] = c;
            c
        } else {
            memo[idx]
        };
        let sub = if f & 1 == 1 {
            2f64.powi((levels.len() - pos) as i32) - sub
        } else {
            sub
        };
        // Scale for the support variables skipped between `depth` and `pos`.
        sub * 2f64.powi((pos - depth) as i32)
    }

    /// Returns one satisfying assignment of `f` as `(variable, value)` pairs
    /// over the support of `f`, or `None` if `f` is unsatisfiable.
    pub fn pick_one(&self, f: Ref) -> Option<Vec<(VarId, bool)>> {
        if f.0 == ZERO {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = f.0;
        while cur != ONE {
            let c = cur & 1;
            let n = &self.nodes[(cur >> 1) as usize];
            let var = self.var_at(n.level);
            let low = n.low ^ c;
            if low != ZERO {
                out.push((var, false));
                cur = low;
            } else {
                out.push((var, true));
                cur = n.high ^ c;
            }
        }
        Some(out)
    }

    /// Iterates over all satisfying assignments of `f`, restricted to the
    /// variables in `vars` (every returned vector has one `bool` per entry of
    /// `vars`, in the same order). Variables outside `vars` must not occur in
    /// the support of `f`.
    ///
    /// # Panics
    ///
    /// Panics if the support of `f` is not contained in `vars`.
    pub fn sat_assignments(&self, f: Ref, vars: &[VarId]) -> SatAssignments<'_> {
        let support = self.support(f);
        let var_set: HashSet<VarId> = vars.iter().copied().collect();
        assert!(
            support.iter().all(|v| var_set.contains(v)),
            "support of f must be contained in the requested variable set"
        );
        let mut order: Vec<(u32, usize)> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (self.level_of(v), i))
            .collect();
        order.sort_unstable();
        SatAssignments {
            manager: self,
            order,
            stack: vec![Frame {
                edge: f.0,
                depth: 0,
                bits: Vec::new(),
            }],
        }
    }
}

struct Frame {
    edge: u32,
    depth: usize,
    bits: Vec<bool>,
}

/// Iterator over the satisfying assignments of a BDD.
///
/// Produced by [`BddManager::sat_assignments`].
pub struct SatAssignments<'a> {
    manager: &'a BddManager,
    /// `(level, position-in-output)` for each requested variable, sorted by level.
    order: Vec<(u32, usize)>,
    stack: Vec<Frame>,
}

impl Iterator for SatAssignments<'_> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(frame) = self.stack.pop() {
            if frame.edge == ZERO {
                continue;
            }
            if frame.depth == self.order.len() {
                debug_assert_eq!(frame.edge, ONE);
                let mut out = vec![false; self.order.len()];
                for (i, &(_, pos)) in self.order.iter().enumerate() {
                    out[pos] = frame.bits[i];
                }
                return Some(out);
            }
            let (level, _) = self.order[frame.depth];
            let node_level = self.manager.level(frame.edge);
            let (low, high) = if node_level == level {
                let c = frame.edge & 1;
                let n = &self.manager.nodes[(frame.edge >> 1) as usize];
                (n.low ^ c, n.high ^ c)
            } else {
                // The variable is free at this node: both branches stay here.
                (frame.edge, frame.edge)
            };
            let mut bits_high = frame.bits.clone();
            bits_high.push(true);
            let mut bits_low = frame.bits;
            bits_low.push(false);
            self.stack.push(Frame {
                edge: high,
                depth: frame.depth + 1,
                bits: bits_high,
            });
            self.stack.push(Frame {
                edge: low,
                depth: frame.depth + 1,
                bits: bits_low,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_and_node_count() {
        let mut m = BddManager::with_vars(4);
        let v = m.variables();
        let a = m.var(v[0]);
        let c = m.var(v[2]);
        let f = m.xor(a, c);
        assert_eq!(m.support(f), vec![v[0], v[2]]);
        // x0 xor x2 under complement edges: two internal nodes (the x2
        // literal serves both branches through its polarities) + the
        // single shared terminal.
        assert_eq!(m.node_count(f), 3);
        // Complement lives on the edge: ¬f costs nothing.
        let nf = m.not(f);
        assert_eq!(m.node_count(nf), m.node_count(f));
        let g = m.and(a, c);
        assert!(m.shared_node_count(&[f, g]) <= m.node_count(f) + m.node_count(g));
    }

    #[test]
    fn sat_count_simple() {
        let mut m = BddManager::with_vars(3);
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        assert_eq!(m.sat_count(f, 3), 2.0); // x2 free
        assert_eq!(m.sat_count(f, 2), 1.0);
        let g = m.or(a, b);
        assert_eq!(m.sat_count(g, 3), 6.0);
        assert_eq!(m.sat_count(m.one(), 3), 8.0);
        assert_eq!(m.sat_count(m.zero(), 3), 0.0);
        // Counting through a complemented root.
        let nf = m.not(f);
        assert_eq!(m.sat_count(nf, 3), 6.0);
    }

    #[test]
    fn sat_count_with_gap_in_support() {
        let mut m = BddManager::with_vars(4);
        let v = m.variables();
        let a = m.var(v[0]);
        let d = m.var(v[3]);
        let f = m.iff(a, d);
        // Over vars {0,3}: 2 solutions; over all 4: 8.
        assert_eq!(m.sat_count(f, 4), 8.0);
    }

    #[test]
    fn pick_one_satisfies() {
        let mut m = BddManager::with_vars(3);
        let v = m.variables();
        let a = m.var(v[0]);
        let nb = m.nvar(v[1]);
        let f = m.and(a, nb);
        let sol = m.pick_one(f).unwrap();
        let lookup = |var: VarId| sol.iter().find(|(v2, _)| *v2 == var).map(|&(_, b)| b);
        assert!(m.eval(f, |var| lookup(var).unwrap_or(false)));
        assert!(m.pick_one(m.zero()).is_none());
        // A complemented root enumerates the complementary set.
        let nf = m.not(f);
        let sol2 = m.pick_one(nf).unwrap();
        let lookup2 = |var: VarId| sol2.iter().find(|(v2, _)| *v2 == var).map(|&(_, b)| b);
        assert!(!m.eval(f, |var| lookup2(var).unwrap_or(false)));
    }

    #[test]
    fn sat_assignments_enumerates_all() {
        let mut m = BddManager::with_vars(3);
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.xor(a, b);
        let sols: Vec<Vec<bool>> = m.sat_assignments(f, &[v[0], v[1]]).collect();
        assert_eq!(sols.len(), 2);
        for s in &sols {
            assert!(s[0] ^ s[1]);
        }
        // With a free variable included, the count doubles.
        let sols3: Vec<Vec<bool>> = m.sat_assignments(f, &[v[0], v[1], v[2]]).collect();
        assert_eq!(sols3.len(), 4);
        // The complemented root enumerates exactly the other assignments.
        let nf = m.not(f);
        let nsols: Vec<Vec<bool>> = m.sat_assignments(nf, &[v[0], v[1]]).collect();
        assert_eq!(nsols.len(), 2);
        for s in &nsols {
            assert!(!(s[0] ^ s[1]));
        }
    }
}
