//! Graphviz DOT export of BDDs, for debugging and documentation figures.

use crate::manager::{BddManager, Ref, TERMINAL, TERMINAL_LEVEL};
use std::collections::HashSet;
use std::fmt::Write as _;

impl BddManager {
    /// Renders the diagrams rooted at `roots` as a Graphviz DOT digraph.
    ///
    /// There is a single terminal box `1`; `FALSE` is the complemented edge
    /// to it. Solid edges are `then` (high) edges — by the canonical form
    /// they are never complemented — dotted edges are regular `else` (low)
    /// edges, and dashed edges (including dashed entry arrows) carry the
    /// complement attribute. Each `(name, root)` pair adds a labelled entry
    /// arrow.
    pub fn to_dot(&self, roots: &[(&str, Ref)]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph bdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node0 [label=\"1\", shape=box];");
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = Vec::new();
        for (name, root) in roots {
            let _ = writeln!(out, "  root_{name} [label=\"{name}\", shape=plaintext];");
            let style = if root.is_complemented() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(out, "  root_{name} -> node{}{style};", root.0 >> 1);
            stack.push(root.0 >> 1);
        }
        while let Some(idx) = stack.pop() {
            if idx == TERMINAL || !seen.insert(idx) {
                continue;
            }
            let n = &self.nodes[idx as usize];
            debug_assert_ne!(n.level, TERMINAL_LEVEL);
            let var = self.var_at(n.level);
            let _ = writeln!(out, "  node{idx} [label=\"{var}\", shape=circle];");
            let low_style = if n.low & 1 == 1 { "dashed" } else { "dotted" };
            let _ = writeln!(
                out,
                "  node{idx} -> node{} [style={low_style}];",
                n.low >> 1
            );
            debug_assert_eq!(n.high & 1, 0, "then-edges are regular by canonicity");
            let _ = writeln!(out, "  node{idx} -> node{};", n.high >> 1);
            stack.push(n.low >> 1);
            stack.push(n.high >> 1);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_mentions_every_node() {
        let mut m = BddManager::with_vars(2);
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        let dot = m.to_dot(&[("f", f)]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("root_f"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_constant_has_no_internal_nodes() {
        let m = BddManager::with_vars(1);
        let dot = m.to_dot(&[("t", m.one())]);
        assert!(!dot.contains("shape=circle"));
    }

    #[test]
    fn dot_renders_complement_edges_dashed() {
        let mut m = BddManager::with_vars(2);
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        let nf = m.not(f);
        // A complemented entry arrow is dashed.
        let dot = m.to_dot(&[("nf", nf)]);
        assert!(dot.contains("root_nf -> node") && dot.contains("[style=dashed];"));
        // ¬(a ∧ b) forces a complemented internal else-edge somewhere.
        let or = m.or(a, b); // = ¬(¬a ∧ ¬b): internal complement edges
        let dot2 = m.to_dot(&[("or", or)]);
        assert!(dot2.contains("style=dashed"));
        // Then-edges stay solid: no "-> nodeX [style=...]" on the high arcs
        // is asserted structurally by check_canonical.
        assert!(m.check_canonical().is_ok());
    }
}
