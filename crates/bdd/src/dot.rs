//! Graphviz DOT export of BDDs, for debugging and documentation figures.

use crate::manager::{BddManager, Ref, FALSE, TERMINAL_LEVEL, TRUE};
use std::collections::HashSet;
use std::fmt::Write as _;

impl BddManager {
    /// Renders the diagrams rooted at `roots` as a Graphviz DOT digraph.
    ///
    /// Solid edges are `then` (high) edges, dashed edges are `else` (low)
    /// edges. Each `(name, root)` pair adds a labelled entry arrow.
    pub fn to_dot(&self, roots: &[(&str, Ref)]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph bdd {{");
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node0 [label=\"0\", shape=box];");
        let _ = writeln!(out, "  node1 [label=\"1\", shape=box];");
        let mut seen: HashSet<u32> = HashSet::new();
        let mut stack: Vec<u32> = Vec::new();
        for (name, root) in roots {
            let _ = writeln!(out, "  root_{name} [label=\"{name}\", shape=plaintext];");
            let _ = writeln!(out, "  root_{name} -> node{};", root.0);
            stack.push(root.0);
        }
        while let Some(idx) = stack.pop() {
            if idx == FALSE || idx == TRUE || !seen.insert(idx) {
                continue;
            }
            let n = &self.nodes[idx as usize];
            debug_assert_ne!(n.level, TERMINAL_LEVEL);
            let var = self.var_at(n.level);
            let _ = writeln!(out, "  node{idx} [label=\"{var}\", shape=circle];");
            let _ = writeln!(out, "  node{idx} -> node{} [style=dashed];", n.low);
            let _ = writeln!(out, "  node{idx} -> node{};", n.high);
            stack.push(n.low);
            stack.push(n.high);
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_output_mentions_every_node() {
        let mut m = BddManager::with_vars(2);
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        let dot = m.to_dot(&[("f", f)]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("root_f"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_constant_has_no_internal_nodes() {
        let m = BddManager::with_vars(1);
        let dot = m.to_dot(&[("t", m.one())]);
        assert!(!dot.contains("shape=circle"));
    }
}
