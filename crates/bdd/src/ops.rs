//! Boolean operations on BDDs: the Shannon-expansion `apply` family,
//! if-then-else, quantification, the relational product and variable
//! renaming — all over complement edges.
//!
//! Under complement edges negation is a bit flip (no recursion, no cache,
//! no allocation), so the derived operations collapse: `or` is De Morgan
//! over `and` (`f ∨ g = ¬(¬f ∧ ¬g)`) and *shares its cache entries with
//! `and`*, `diff` is `f ∧ ¬g` at the cost of one flip, and `forall` wraps
//! `exists`. Every cache key is complement-normalised (standard-triple
//! canonicalisation): `xor` strips the operand complement bits into an
//! output parity, `ite` rotates its triple so the predicate and the then
//! branch are regular, and `constrain` factors the complement of its first
//! operand out of the key. As a result `f ∧ g`, `¬(¬f ∨ ¬g)`,
//! `¬f ∨ ¬g` … all hit one cache line.
//!
//! Every memoised recursion exists in two forms: a fallible `try_*` entry
//! point returning `Result<Ref, Interrupt>` that checks the manager's
//! installed [`Budget`](crate::Budget) cooperatively (one amortized
//! [`BddManager::checkpoint`] per cache miss — the cache-hit fast path pays
//! nothing), and the classic infallible wrapper that panics if a governed
//! manager breaches mid-operation. An interrupted recursion unwinds with
//! `?` after completing every node it interned and every cache entry it
//! wrote, so the manager stays fully consistent: unique tables canonical,
//! cache valid, GC still legal, and the same operation can be re-run to
//! completion once the budget is removed.

use crate::budget::Interrupt;
use crate::manager::{BddManager, Op, Ref, VarId, ONE, TERMINAL_LEVEL, ZERO};
use std::collections::HashMap;

/// Panic message of the infallible wrappers; only reachable when a budget
/// is installed *and* breached, i.e. when a governed caller used the wrong
/// entry point.
const UNGOVERNED: &str =
    "budget breached inside an infallible BDD operation; governed callers must use the try_* API";

impl BddManager {
    /// Logical negation `¬f`: an O(1) complement-bit flip. Allocates
    /// nothing, touches no cache, cannot be interrupted.
    pub fn not(&mut self, f: Ref) -> Ref {
        Ref(f.0 ^ 1)
    }

    /// Fallible [`BddManager::not`]; kept for API symmetry — negation is a
    /// bit flip and never observes the budget.
    pub fn try_not(&mut self, f: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(f.0 ^ 1))
    }

    /// Conjunction `f ∧ g`.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_and(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::and`].
    pub fn try_and(&mut self, f: Ref, g: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.and_rec(f.0, g.0)?))
    }

    fn and_rec(&mut self, f: u32, g: u32) -> Result<u32, Interrupt> {
        // Terminal cases.
        if f == g {
            return Ok(f);
        }
        if f ^ g == 1 {
            // f ∧ ¬f
            return Ok(ZERO);
        }
        if f == ZERO || g == ZERO {
            return Ok(ZERO);
        }
        if f == ONE {
            return Ok(g);
        }
        if g == ONE {
            return Ok(f);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        let key = (Op::And, a, b, 0);
        if let Some(r) = self.cache_get(key) {
            return Ok(r);
        }
        self.checkpoint()?;
        let (level, fl, fh, gl, gh) = self.cofactor_pair(f, g);
        let low = self.and_rec(fl, gl)?;
        let high = self.and_rec(fh, gh)?;
        let r = self.mk(level, low, high);
        self.cache_put(key, r);
        Ok(r)
    }

    /// Disjunction `f ∨ g`.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_or(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::or`]: De Morgan over `and` — with complement
    /// edges the three negations are free bit flips, so the disjunction
    /// shares the conjunction's computed-cache entries instead of carrying
    /// a dedicated recursion and cache op slot.
    pub fn try_or(&mut self, f: Ref, g: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.and_rec(f.0 ^ 1, g.0 ^ 1)? ^ 1))
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_xor(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::xor`].
    pub fn try_xor(&mut self, f: Ref, g: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.xor_rec(f.0, g.0)?))
    }

    fn xor_rec(&mut self, f: u32, g: u32) -> Result<u32, Interrupt> {
        // Complement-normalise: ¬f ⊕ g = f ⊕ ¬g = ¬(f ⊕ g), so both operand
        // complement bits fold into one output parity and the cache key is
        // over regular edges only.
        let parity = (f ^ g) & 1;
        let (f, g) = (f & !1, g & !1);
        if f == g {
            return Ok(ZERO ^ parity);
        }
        if f == ONE {
            return Ok(g ^ 1 ^ parity);
        }
        if g == ONE {
            return Ok(f ^ 1 ^ parity);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        let key = (Op::Xor, a, b, 0);
        if let Some(r) = self.cache_get(key) {
            return Ok(r ^ parity);
        }
        self.checkpoint()?;
        let (level, fl, fh, gl, gh) = self.cofactor_pair(f, g);
        let low = self.xor_rec(fl, gl)?;
        let high = self.xor_rec(fh, gh)?;
        let r = self.mk(level, low, high);
        self.cache_put(key, r);
        Ok(r ^ parity)
    }

    /// Equivalence `f ≡ g` (XNOR).
    pub fn iff(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_iff(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::iff`]: `¬(f ⊕ g)` with a free negation.
    pub fn try_iff(&mut self, f: Ref, g: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.xor_rec(f.0, g.0)? ^ 1))
    }

    /// Implication `f ⇒ g`, i.e. `¬(f ∧ ¬g)`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        let conj = self.and(f, Ref(g.0 ^ 1));
        Ref(conj.0 ^ 1)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: Ref, g: Ref) -> Ref {
        self.try_diff(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::diff`]: one free flip plus a conjunction
    /// (shares the `and` cache entries).
    pub fn try_diff(&mut self, f: Ref, g: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.and_rec(f.0, g.0 ^ 1)?))
    }

    /// If-then-else `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        self.try_ite(f, g, h).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::ite`].
    pub fn try_ite(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.ite_rec(f.0, g.0, h.0)?))
    }

    fn ite_rec(&mut self, mut f: u32, mut g: u32, mut h: u32) -> Result<u32, Interrupt> {
        if f == ONE {
            return Ok(g);
        }
        if f == ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g ^ h == 1 {
            // ite(f, g, ¬g) = f ≡ g
            return self.xor_rec(f, g ^ 1);
        }
        // Operand-equality collapses (f is non-constant here).
        if f == g {
            // ite(f, f, h) = f ∨ h
            return Ok(self.and_rec(f ^ 1, h ^ 1)? ^ 1);
        }
        if f ^ h == 1 {
            // ite(f, g, ¬f) = ¬f ∨ g
            return Ok(self.and_rec(f, g ^ 1)? ^ 1);
        }
        if f ^ g == 1 {
            // ite(f, ¬f, h) = ¬f ∧ h
            return self.and_rec(f ^ 1, h);
        }
        if f == h {
            // ite(f, g, f) = f ∧ g
            return self.and_rec(f, g);
        }
        // Constant-branch collapses: delegate to `and`, sharing its cache.
        if g == ONE {
            return Ok(self.and_rec(f ^ 1, h ^ 1)? ^ 1); // f + h
        }
        if g == ZERO {
            return self.and_rec(f ^ 1, h); // ¬f ∧ h
        }
        if h == ZERO {
            return self.and_rec(f, g); // f ∧ g
        }
        if h == ONE {
            return Ok(self.and_rec(f, g ^ 1)? ^ 1); // ¬f + g = f ⇒ g
        }
        // Standard-triple canonicalisation: make the predicate regular
        // (ite(¬f, g, h) = ite(f, h, g)), then make the then-branch regular
        // by factoring the complement into the output
        // (ite(f, ¬g, ¬h) = ¬ite(f, g, h)).
        if f & 1 == 1 {
            f ^= 1;
            std::mem::swap(&mut g, &mut h);
        }
        let out = g & 1;
        g ^= out;
        h ^= out;
        let key = (Op::Ite, f, g, h);
        if let Some(r) = self.cache_get(key) {
            return Ok(r ^ out);
        }
        self.checkpoint()?;
        let lf = self.level(f);
        let lg = self.level(g);
        let lh = self.level(h);
        let level = lf.min(lg).min(lh);
        let (fl, fh) = self.cofactors_at(f, level);
        let (gl, gh) = self.cofactors_at(g, level);
        let (hl, hh) = self.cofactors_at(h, level);
        let low = self.ite_rec(fl, gl, hl)?;
        let high = self.ite_rec(fh, gh, hh)?;
        let r = self.mk(level, low, high);
        self.cache_put(key, r);
        Ok(r ^ out)
    }

    /// Conjunction of many operands (`TRUE` for an empty slice).
    pub fn and_many(&mut self, fs: &[Ref]) -> Ref {
        self.try_and_many(fs).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::and_many`].
    pub fn try_and_many(&mut self, fs: &[Ref]) -> Result<Ref, Interrupt> {
        let mut acc = self.one();
        for &f in fs {
            acc = self.try_and(acc, f)?;
            if acc == self.zero() {
                break;
            }
        }
        Ok(acc)
    }

    /// Disjunction of many operands (`FALSE` for an empty slice).
    pub fn or_many(&mut self, fs: &[Ref]) -> Ref {
        self.try_or_many(fs).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::or_many`].
    pub fn try_or_many(&mut self, fs: &[Ref]) -> Result<Ref, Interrupt> {
        let mut acc = self.zero();
        for &f in fs {
            acc = self.try_or(acc, f)?;
            if acc == self.one() {
                break;
            }
        }
        Ok(acc)
    }

    /// The conjunction of literals described by `lits`
    /// (a *cube*; `TRUE` for an empty slice).
    pub fn cube(&mut self, lits: &[(VarId, bool)]) -> Ref {
        let mut acc = self.one();
        // Build bottom-up for linear-size construction: sort by level, deepest first.
        let mut sorted: Vec<(u32, bool)> = lits
            .iter()
            .map(|&(v, sign)| (self.level_of(v), sign))
            .collect();
        sorted.sort_unstable_by_key(|&(level, _)| std::cmp::Reverse(level));
        for (level, sign) in sorted {
            // mk's then-edge normalisation handles the polarity: a negative
            // literal's node is shared with the positive one.
            let idx = if sign {
                self.mk(level, ZERO, acc.0)
            } else {
                self.mk(level, acc.0, ZERO)
            };
            acc = Ref(idx);
        }
        acc
    }

    /// Positive cube over a set of variables (used as a quantification set).
    pub fn var_cube(&mut self, vars: &[VarId]) -> Ref {
        let lits: Vec<(VarId, bool)> = vars.iter().map(|&v| (v, true)).collect();
        self.cube(&lits)
    }

    /// Existential quantification `∃ vars. f`.
    pub fn exists(&mut self, f: Ref, vars: &[VarId]) -> Ref {
        self.try_exists(f, vars).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::exists`].
    pub fn try_exists(&mut self, f: Ref, vars: &[VarId]) -> Result<Ref, Interrupt> {
        if vars.is_empty() {
            return Ok(f);
        }
        let cube = self.var_cube(vars);
        self.try_exists_cube(f, cube)
    }

    /// Existential quantification where the variable set is given as a
    /// positive cube (see [`BddManager::var_cube`]).
    pub fn exists_cube(&mut self, f: Ref, cube: Ref) -> Ref {
        self.try_exists_cube(f, cube).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::exists_cube`].
    pub fn try_exists_cube(&mut self, f: Ref, cube: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.exists_rec(f.0, cube.0)?))
    }

    /// Next variable of a positive quantification cube (the cube's
    /// then-cofactor).
    #[inline]
    fn cube_next(&self, c: u32) -> u32 {
        self.nodes[(c >> 1) as usize].high ^ (c & 1)
    }

    fn exists_rec(&mut self, f: u32, cube: u32) -> Result<u32, Interrupt> {
        if f <= 1 || cube == ONE {
            return Ok(f);
        }
        // Existential quantification does NOT commute with complement
        // (∃x.¬f ≠ ¬∃x.f), so the operand keeps its complement bit in the
        // cache key.
        let key = (Op::Exists, f, cube, 0);
        if let Some(r) = self.cache_get(key) {
            return Ok(r);
        }
        self.checkpoint()?;
        let fl = self.level(f);
        // Skip cube variables above the root of f.
        let mut c = cube;
        while self.level(c) < fl {
            c = self.cube_next(c);
        }
        if c == ONE {
            self.cache_put(key, f);
            return Ok(f);
        }
        let cl = self.level(c);
        let cf = f & 1;
        let n = self.node(f);
        let r = if fl == cl {
            let next_cube = self.cube_next(c);
            let low = self.exists_rec(n.low ^ cf, next_cube)?;
            if low == ONE {
                ONE
            } else {
                let high = self.exists_rec(n.high ^ cf, next_cube)?;
                self.or_idx(low, high)?
            }
        } else {
            // fl < cl: keep the variable.
            let low = self.exists_rec(n.low ^ cf, c)?;
            let high = self.exists_rec(n.high ^ cf, c)?;
            self.mk(fl, low, high)
        };
        self.cache_put(key, r);
        Ok(r)
    }

    /// Universal quantification `∀ vars. f = ¬∃ vars. ¬f` (both negations
    /// are free bit flips).
    pub fn forall(&mut self, f: Ref, vars: &[VarId]) -> Ref {
        if vars.is_empty() {
            return f;
        }
        let e = self.exists(Ref(f.0 ^ 1), vars);
        Ref(e.0 ^ 1)
    }

    /// The relational product `∃ vars. (f ∧ g)` computed in one pass, the
    /// workhorse of symbolic image computation.
    pub fn and_exists(&mut self, f: Ref, g: Ref, vars: &[VarId]) -> Ref {
        let cube = self.var_cube(vars);
        self.and_exists_cube(f, g, cube)
    }

    /// [`BddManager::and_exists`] with the quantification set given as a cube.
    pub fn and_exists_cube(&mut self, f: Ref, g: Ref, cube: Ref) -> Ref {
        self.try_and_exists_cube(f, g, cube).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::and_exists_cube`].
    pub fn try_and_exists_cube(&mut self, f: Ref, g: Ref, cube: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.and_exists_rec(f.0, g.0, cube.0)?))
    }

    fn and_exists_rec(&mut self, f: u32, g: u32, cube: u32) -> Result<u32, Interrupt> {
        if f == ZERO || g == ZERO || f ^ g == 1 {
            return Ok(ZERO);
        }
        if cube == ONE {
            return self.and_rec(f, g);
        }
        // The conjunction collapsed to a single operand: fall through to the
        // plain quantifier, whose cache entries are shared with stand-alone
        // `exists` calls on the same operand.
        if f == g || g == ONE {
            return self.exists_rec(f, cube);
        }
        if f == ONE {
            return self.exists_rec(g, cube);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        let key = (Op::AndExists, a, b, cube);
        if let Some(r) = self.cache_get(key) {
            return Ok(r);
        }
        self.checkpoint()?;
        let lf = self.level(f);
        let lg = self.level(g);
        let level = lf.min(lg);
        // Skip cube variables above the top of both operands.
        let mut c = cube;
        while self.level(c) < level {
            c = self.cube_next(c);
        }
        if c == ONE {
            let r = self.and_rec(f, g)?;
            self.cache_put(key, r);
            return Ok(r);
        }
        let cl = self.level(c);
        let (fl_, fh_) = self.cofactors_at(f, level);
        let (gl_, gh_) = self.cofactors_at(g, level);
        let r = if level == cl {
            let next_cube = self.cube_next(c);
            let low = self.and_exists_rec(fl_, gl_, next_cube)?;
            if low == ONE {
                ONE
            } else {
                let high = self.and_exists_rec(fh_, gh_, next_cube)?;
                self.or_idx(low, high)?
            }
        } else {
            let low = self.and_exists_rec(fl_, gl_, c)?;
            let high = self.and_exists_rec(fh_, gh_, c)?;
            self.mk(level, low, high)
        };
        self.cache_put(key, r);
        Ok(r)
    }

    /// Cofactor (restriction) of `f` with variable `v` fixed to `value`.
    pub fn restrict(&mut self, f: Ref, v: VarId, value: bool) -> Ref {
        let level = self.level_of(v);
        let mut memo = HashMap::new();
        Ref(self.restrict_rec(f.0, level, value, &mut memo))
    }

    fn restrict_rec(
        &mut self,
        f: u32,
        level: u32,
        value: bool,
        memo: &mut HashMap<u32, u32>,
    ) -> u32 {
        let fl = self.level(f);
        if fl > level || fl == TERMINAL_LEVEL {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let cf = f & 1;
        let n = self.node(f);
        let r = if fl == level {
            if value {
                n.high ^ cf
            } else {
                n.low ^ cf
            }
        } else {
            let low = self.restrict_rec(n.low ^ cf, level, value, memo);
            let high = self.restrict_rec(n.high ^ cf, level, value, memo);
            self.mk(fl, low, high)
        };
        memo.insert(f, r);
        r
    }

    /// Simultaneously fixes several variables to constants.
    pub fn restrict_many(&mut self, f: Ref, assignment: &[(VarId, bool)]) -> Ref {
        let mut acc = f;
        for &(v, value) in assignment {
            acc = self.restrict(acc, v, value);
        }
        acc
    }

    /// Renames variables of `f` according to `map` (pairs `(from, to)`).
    ///
    /// The mapping must be *order-compatible*: the relative order (by level)
    /// of the `to` variables must match the relative order of the `from`
    /// variables, and no `to` variable may cross an unmapped variable in the
    /// support of `f`. This holds in particular for the interleaved
    /// current/next-state orders used by symbolic reachability.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the produced diagram would violate the
    /// variable order.
    pub fn rename(&mut self, f: Ref, map: &[(VarId, VarId)]) -> Ref {
        if map.is_empty() {
            return f;
        }
        let mut level_map: HashMap<u32, u32> = HashMap::new();
        for &(from, to) in map {
            level_map.insert(self.level_of(from), self.level_of(to));
        }
        let mut memo = HashMap::new();
        Ref(self.rename_rec(f.0, &level_map, &mut memo))
    }

    fn rename_rec(
        &mut self,
        f: u32,
        level_map: &HashMap<u32, u32>,
        memo: &mut HashMap<u32, u32>,
    ) -> u32 {
        if f <= 1 {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let cf = f & 1;
        let n = self.node(f);
        let low = self.rename_rec(n.low ^ cf, level_map, memo);
        let high = self.rename_rec(n.high ^ cf, level_map, memo);
        let new_level = *level_map.get(&n.level).unwrap_or(&n.level);
        let r = self.mk(new_level, low, high);
        memo.insert(f, r);
        r
    }

    /// Composes `f` with `g` substituted for variable `v`: `f[v := g]`.
    pub fn compose(&mut self, f: Ref, v: VarId, g: Ref) -> Ref {
        let f1 = self.restrict(f, v, true);
        let f0 = self.restrict(f, v, false);
        self.ite(g, f1, f0)
    }

    /// Generalized cofactor (`constrain`): simplifies `f` assuming `c` holds.
    ///
    /// The result agrees with `f` on every assignment satisfying `c` and is
    /// typically (not always) smaller than `f`.
    pub fn constrain(&mut self, f: Ref, c: Ref) -> Ref {
        self.try_constrain(f, c).expect(UNGOVERNED)
    }

    /// Fallible [`BddManager::constrain`].
    pub fn try_constrain(&mut self, f: Ref, c: Ref) -> Result<Ref, Interrupt> {
        Ok(Ref(self.constrain_rec(f.0, c.0)?))
    }

    fn constrain_rec(&mut self, f: u32, c: u32) -> Result<u32, Interrupt> {
        if c == ONE || f <= 1 {
            return Ok(f);
        }
        if c == ZERO {
            return Ok(ZERO);
        }
        // constrain(¬f, c) = ¬constrain(f, c): normalise the first operand
        // regular and carry its complement to the output, halving the key
        // space.
        let cf = f & 1;
        let f = f ^ cf;
        if f == c & !1 {
            // f equals c up to complement: constrain(c, c) = TRUE and
            // constrain(¬c, c) = FALSE (then re-apply the output bit).
            return Ok(ONE ^ (c & 1) ^ cf);
        }
        let key = (Op::Constrain, f, c, 0);
        if let Some(r) = self.cache_get(key) {
            return Ok(r ^ cf);
        }
        self.checkpoint()?;
        let lf = self.level(f);
        let lc = self.level(c);
        let level = lf.min(lc);
        let (cl, ch) = self.cofactors_at(c, level);
        let (fl_, fh_) = self.cofactors_at(f, level);
        let r = if cl == ZERO {
            self.constrain_rec(fh_, ch)?
        } else if ch == ZERO {
            self.constrain_rec(fl_, cl)?
        } else {
            let low = self.constrain_rec(fl_, cl)?;
            let high = self.constrain_rec(fh_, ch)?;
            self.mk(level, low, high)
        };
        self.cache_put(key, r);
        Ok(r ^ cf)
    }

    /// Disjunction on raw edges through De Morgan (shared `and` cache).
    #[inline]
    pub(crate) fn or_idx(&mut self, f: u32, g: u32) -> Result<u32, Interrupt> {
        Ok(self.and_rec(f ^ 1, g ^ 1)? ^ 1)
    }

    /// Cofactors of `f` with respect to the variable at `level`
    /// (identity if `f`'s root is below `level`), complement attribute
    /// pushed through.
    #[inline]
    pub(crate) fn cofactors_at(&self, f: u32, level: u32) -> (u32, u32) {
        let n = &self.nodes[(f >> 1) as usize];
        if n.level == level {
            let c = f & 1;
            (n.low ^ c, n.high ^ c)
        } else {
            (f, f)
        }
    }

    #[inline]
    fn cofactor_pair(&self, f: u32, g: u32) -> (u32, u32, u32, u32, u32) {
        let lf = self.level(f);
        let lg = self.level(g);
        let level = lf.min(lg);
        let (fl, fh) = self.cofactors_at(f, level);
        let (gl, gh) = self.cofactors_at(g, level);
        (level, fl, fh, gl, gh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::{Budget, TruncationReason};

    fn setup() -> (BddManager, Vec<VarId>) {
        let m = BddManager::with_vars(4);
        let vars = m.variables();
        (m, vars)
    }

    /// Exhaustively compares a BDD against a reference function over 4 vars.
    fn assert_equals<F: Fn(&[bool]) -> bool>(m: &BddManager, f: Ref, reference: F) {
        for bits in 0u32..16 {
            let assignment: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            let expected = reference(&assignment);
            let got = m.eval(f, |v| assignment[v.index()]);
            assert_eq!(got, expected, "mismatch on assignment {assignment:?}");
        }
    }

    #[test]
    fn basic_connectives() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let and = m.and(a, b);
        assert_equals(&m, and, |x| x[0] && x[1]);
        let or = m.or(a, c);
        assert_equals(&m, or, |x| x[0] || x[2]);
        let xor = m.xor(a, b);
        assert_equals(&m, xor, |x| x[0] ^ x[1]);
        let iff = m.iff(a, b);
        assert_equals(&m, iff, |x| x[0] == x[1]);
        let imp = m.implies(a, b);
        assert_equals(&m, imp, |x| !x[0] || x[1]);
        let diff = m.diff(a, b);
        assert_equals(&m, diff, |x| x[0] && !x[1]);
        let na = m.not(a);
        assert_equals(&m, na, |x| !x[0]);
    }

    #[test]
    fn negation_is_free() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.xor(a, b);
        let live = m.live_node_count();
        let before = m.stats();
        let nf = m.not(f);
        let after = m.stats();
        // ¬f allocated nothing and issued no cache lookups.
        assert_eq!(m.live_node_count(), live);
        assert_eq!(after.cache_hits, before.cache_hits);
        assert_eq!(after.cache_misses, before.cache_misses);
        assert_eq!(nf.0, f.0 ^ 1);
        assert_eq!(m.not(nf), f);
        assert_equals(&m, nf, |x| !(x[0] ^ x[1]));
    }

    #[test]
    fn or_shares_the_and_cache_through_de_morgan() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let f = m.xor(a, b);
        let g = m.xor(b, c);
        // Populate via `or`...
        let or = m.or(f, g);
        let mid = m.stats();
        // ...then the De-Morgan-equivalent `and` on complemented operands
        // must be answered entirely from the same cache entries.
        let nf = m.not(f);
        let ng = m.not(g);
        let nand = m.and(nf, ng);
        let after = m.stats();
        assert_eq!(nand, m.not(or));
        assert_eq!(
            after.cache_misses, mid.cache_misses,
            "¬f ∧ ¬g must reuse the cache entries of f ∨ g"
        );
        assert!(after.cache_hits > mid.cache_hits);
    }

    #[test]
    fn ite_matches_definition() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let f = m.ite(a, b, c);
        assert_equals(&m, f, |x| if x[0] { x[1] } else { x[2] });
        // Complemented-operand variants of the same triple.
        let na = m.not(a);
        let g = m.ite(na, c, b);
        assert_eq!(g, f, "ite(¬f, h, g) = ite(f, g, h)");
        let nb = m.not(b);
        let nc = m.not(c);
        let h = m.ite(a, nb, nc);
        assert_eq!(h, m.not(f), "ite(f, ¬g, ¬h) = ¬ite(f, g, h)");
        let eq = m.ite(a, b, nb);
        assert_equals(&m, eq, |x| if x[0] { x[1] } else { !x[1] });
    }

    #[test]
    fn cube_and_many() {
        let (mut m, v) = setup();
        let cube = m.cube(&[(v[0], true), (v[2], false), (v[3], true)]);
        assert_equals(&m, cube, |x| x[0] && !x[2] && x[3]);
        let lits: Vec<Ref> = vec![m.var(v[0]), m.var(v[1]), m.var(v[3])];
        let conj = m.and_many(&lits);
        assert_equals(&m, conj, |x| x[0] && x[1] && x[3]);
        let disj = m.or_many(&lits);
        assert_equals(&m, disj, |x| x[0] || x[1] || x[3]);
        assert_eq!(m.and_many(&[]), m.one());
        assert_eq!(m.or_many(&[]), m.zero());
    }

    #[test]
    fn quantification() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        // ∃ b. a ∧ b  =  a
        let e = m.exists(f, &[v[1]]);
        assert_eq!(e, a);
        // ∀ b. a ∧ b  =  false
        let u = m.forall(f, &[v[1]]);
        assert_eq!(u, m.zero());
        // ∀ b. a ∨ b  =  a
        let g = m.or(a, b);
        let u2 = m.forall(g, &[v[1]]);
        assert_eq!(u2, a);
        // quantifying a variable not in the support is the identity
        let e2 = m.exists(f, &[v[3]]);
        assert_eq!(e2, f);
        // ∃ does not commute with complement: ∃b. ¬(a ∧ b) = TRUE.
        let nf = m.not(f);
        let e3 = m.exists(nf, &[v[1]]);
        assert_eq!(e3, m.one());
    }

    #[test]
    fn and_exists_equals_two_steps() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let f = m.or(a, b);
        let g = m.iff(b, c);
        let conj = m.and(f, g);
        let expect = m.exists(conj, &[v[1]]);
        let got = m.and_exists(f, g, &[v[1]]);
        assert_eq!(got, expect);
        // Complemented operands too.
        let nf = m.not(f);
        let conj2 = m.and(nf, g);
        let expect2 = m.exists(conj2, &[v[1]]);
        let got2 = m.and_exists(nf, g, &[v[1]]);
        assert_eq!(got2, expect2);
    }

    #[test]
    fn restrict_and_compose() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let f = m.ite(a, b, c);
        let f1 = m.restrict(f, v[0], true);
        assert_eq!(f1, b);
        let f0 = m.restrict(f, v[0], false);
        assert_eq!(f0, c);
        // compose f[b := c] = ite(a, c, c) = c
        let comp = m.compose(f, v[1], c);
        assert_eq!(comp, c);
        let fixed = m.restrict_many(f, &[(v[0], true), (v[1], false)]);
        assert_eq!(fixed, m.zero());
        // Restriction of a complemented edge.
        let nf = m.not(f);
        let n1 = m.restrict(nf, v[0], true);
        assert_eq!(n1, m.not(b));
    }

    #[test]
    fn rename_shifts_variables() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.and(a, b);
        // rename {v0 -> v2, v1 -> v3} keeps relative order.
        let g = m.rename(f, &[(v[0], v[2]), (v[1], v[3])]);
        assert_equals(&m, g, |x| x[2] && x[3]);
        assert_eq!(m.rename(f, &[]), f);
        // Renaming commutes with complement.
        let nf = m.not(f);
        let ng = m.rename(nf, &[(v[0], v[2]), (v[1], v[3])]);
        assert_eq!(ng, m.not(g));
    }

    #[test]
    fn constrain_agrees_on_care_set() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let f = m.xor(a, b);
        let care = m.and(a, c);
        let g = m.constrain(f, care);
        // On assignments satisfying `care`, f and g agree.
        for bits in 0u32..16 {
            let assignment: Vec<bool> = (0..4).map(|i| bits & (1 << i) != 0).collect();
            if m.eval(care, |v| assignment[v.index()]) {
                assert_eq!(
                    m.eval(f, |v| assignment[v.index()]),
                    m.eval(g, |v| assignment[v.index()])
                );
            }
        }
        // constrain(¬f, c) = ¬constrain(f, c).
        let nf = m.not(f);
        let ng = m.constrain(nf, care);
        assert_eq!(ng, m.not(g));
    }

    #[test]
    fn commutative_cache_keys_are_normalized() {
        // `and(a, b)` and `and(b, a)` must share one computed-cache entry:
        // the second call is answered entirely from the cache (one hit, no
        // new misses), so operand order cannot double the cache footprint.
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let f = m.and(a, b);
        let g = m.or(b, c);
        // Non-constant, distinct operands so every op takes its cache path.
        type OpPair = Box<dyn Fn(&mut BddManager) -> (Ref, Ref)>;
        let ops: Vec<(&str, OpPair)> = vec![
            ("and", Box::new(move |m| (m.and(f, g), m.and(g, f)))),
            ("or", Box::new(move |m| (m.or(f, g), m.or(g, f)))),
            ("xor", Box::new(move |m| (m.xor(f, g), m.xor(g, f)))),
        ];
        for (name, op) in ops {
            let before = m.stats();
            let (fwd, rev) = op(&mut m);
            let after = m.stats();
            assert_eq!(fwd, rev, "{name} must be commutative");
            let new_misses = after.cache_misses - before.cache_misses;
            let new_hits = after.cache_hits - before.cache_hits;
            assert!(
                new_hits >= 1,
                "{name}: the swapped-operand call must hit the cache \
                 (hits {new_hits}, misses {new_misses})"
            );
        }
        // The relational product normalizes its two conjuncts the same way.
        let vars = [v[3]];
        let before = m.stats();
        let fwd = m.and_exists(f, g, &vars);
        let miss_fwd = m.stats().cache_misses - before.cache_misses;
        let mid = m.stats();
        let rev = m.and_exists(g, f, &vars);
        let miss_rev = m.stats().cache_misses - mid.cache_misses;
        assert_eq!(fwd, rev);
        assert!(miss_fwd >= 1, "first call populates the cache");
        assert_eq!(miss_rev, 0, "swapped operands must be answered cached");
    }

    #[test]
    fn xor_parity_shares_cache_entries() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let f = m.and(a, b);
        let g = m.or(b, c);
        let fwd = m.xor(f, g);
        let mid = m.stats();
        // All four complement variants of the operands reduce to the same
        // normalised key: no new misses.
        let nf = m.not(f);
        let ng = m.not(g);
        let r1 = m.xor(nf, g);
        let r2 = m.xor(f, ng);
        let r3 = m.xor(nf, ng);
        let after = m.stats();
        assert_eq!(r1, m.not(fwd));
        assert_eq!(r2, m.not(fwd));
        assert_eq!(r3, fwd);
        assert_eq!(
            after.cache_misses, mid.cache_misses,
            "complemented xor operands must reuse the normalised entry"
        );
    }

    #[test]
    fn results_are_canonical() {
        let (mut m, v) = setup();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let f = m.or(a, b);
        let g = m.not(f);
        let h = m.and(g, f);
        assert_eq!(h, m.zero());
        let na = m.not(a);
        let nb = m.not(b);
        let g2 = m.and(na, nb);
        assert_eq!(g, g2);
        assert!(m.check_canonical().is_ok());
    }

    /// Builds a function wide enough that operations on it take thousands
    /// of cache-miss steps: the "hidden weighted bit"-ish predicate
    /// counting set bits. Returns the manager and two such functions.
    fn wide_setup(vars: usize) -> (BddManager, Ref, Ref) {
        let mut m = BddManager::with_vars(vars);
        let ids = m.variables();
        // f = parity of all vars, g = majority-ish threshold; both have
        // many distinct subfunctions so conjunction walks a big state space.
        let mut f = m.zero();
        for &v in &ids {
            let lit = m.var(v);
            f = m.xor(f, lit);
        }
        let mut g = m.one();
        for w in ids.windows(2) {
            let x = m.var(w[0]);
            let y = m.var(w[1]);
            let or = m.or(x, y);
            g = m.and(g, or);
        }
        (m, f, g)
    }

    #[test]
    fn interrupted_operation_leaves_the_manager_consistent() {
        let (mut m, f, g) = wide_setup(24);
        m.protect(f);
        m.protect(g);
        let before_protected = m.protected_root_count();
        m.install_budget(Budget::new().with_step_ceiling(10));
        let err = m.try_and(f, g).unwrap_err();
        assert_eq!(err.reason, TruncationReason::StepBudget);
        // Sticky: the next governed call fails immediately too.
        assert_eq!(
            m.try_or(f, g).unwrap_err().reason,
            TruncationReason::StepBudget
        );
        // The manager is untouched structurally: invariants hold, no
        // protection leaked, GC is still legal...
        assert!(m.check_canonical().is_ok());
        assert_eq!(m.protected_root_count(), before_protected);
        m.collect_garbage();
        assert!(m.check_canonical().is_ok());
        // ...and after removing the budget the very same query completes
        // and matches an ungoverned reference run.
        let budget = m.take_budget().expect("budget still installed");
        assert_eq!(budget.breached(), Some(TruncationReason::StepBudget));
        let governed = m.and(f, g);
        let (mut fresh, f2, g2) = wide_setup(24);
        let reference = fresh.and(f2, g2);
        assert_eq!(m.sat_count(governed, 24), fresh.sat_count(reference, 24));
    }

    #[test]
    fn ungoverned_managers_never_interrupt() {
        let (mut m, f, g) = wide_setup(16);
        assert!(m.try_and(f, g).is_ok());
        assert!(m.try_not(f).is_ok());
        assert!(m.budget().is_none());
    }
}
