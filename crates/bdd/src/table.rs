//! The open-addressing unique table backing canonicity.
//!
//! One [`UniqueTable`] exists per variable level. Each entry stores the
//! `(low, high)` child pair packed into a `u64` key plus the `u32` arena
//! index of the node — 16 bytes per slot, no per-entry allocation, no
//! hashing state. Lookup mixes the packed key with the splitmix64
//! finaliser and probes linearly over a power-of-two slot array, the
//! open-addressing scheme mature BDD kernels (CUDD and descendants) use in
//! place of chained general-purpose hash maps: the probe sequence is a
//! handful of adjacent cache lines and the hash is two multiplies and
//! three shifts.
//!
//! Deletion never leaves tombstones: garbage collection and adjacent-level
//! swaps empty the whole table with [`UniqueTable::clear_in_place`] (keeping
//! the allocation) and re-insert the survivors, so the probe invariant is
//! re-established wholesale instead of per-entry.

/// Sentinel marking an empty slot (`u32::MAX` is never a valid node index:
/// the arena is bounded well below it and index 0/1 are the terminals).
const EMPTY: u32 = u32::MAX;

/// Smallest capacity allocated once a table holds an entry.
const MIN_CAPACITY: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Slot {
    /// `(low << 32) | high` of the stored node.
    key: u64,
    /// Arena index of the stored node, or [`EMPTY`].
    idx: u32,
}

const EMPTY_SLOT: Slot = Slot { key: 0, idx: EMPTY };

/// An open-addressing `(low, high) -> node index` table for one level.
#[derive(Debug, Clone, Default)]
pub(crate) struct UniqueTable {
    slots: Vec<Slot>,
    /// Number of occupied slots.
    len: usize,
    /// `slots.len() - 1`; kept separate so probing is mask-and-go.
    mask: usize,
    /// Number of slot-array growths over the table's lifetime; observed by
    /// the manager's budget checkpoints as a fault-injection site.
    growths: u64,
}

#[inline(always)]
fn pack(low: u32, high: u32) -> u64 {
    ((low as u64) << 32) | high as u64
}

/// The splitmix64 finaliser: full avalanche, so the low bits kept by a
/// power-of-two mask depend on every input bit. A single multiply is NOT
/// enough for the kernel's keys: the low k bits of `key * C` depend only on
/// the low k bits of the key — i.e. only on the `high` child — and every
/// node sharing a `high` child would land in one band of the table,
/// degrading linear probing to quadratic clustering on wide levels. Shared
/// with the computed cache so both hash paths keep the same distribution.
#[inline(always)]
pub(crate) fn splitmix64(key: u64) -> u64 {
    let mut h = key;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

#[inline(always)]
fn hash(key: u64) -> u64 {
    splitmix64(key)
}

impl UniqueTable {
    /// Creates an empty table with no backing allocation.
    pub(crate) fn new() -> Self {
        UniqueTable::default()
    }

    /// Number of entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of slots currently allocated.
    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Looks up the node for children `(low, high)`.
    #[inline]
    pub(crate) fn get(&self, low: u32, high: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let key = pack(low, high);
        let mut i = hash(key) as usize & self.mask;
        loop {
            let slot = &self.slots[i];
            if slot.idx == EMPTY {
                return None;
            }
            if slot.key == key {
                return Some(slot.idx);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `(low, high) -> idx`, assuming the key is not present
    /// (callers always [`get`](UniqueTable::get) first).
    #[inline]
    pub(crate) fn insert(&mut self, low: u32, high: u32, idx: u32) {
        debug_assert_ne!(idx, EMPTY);
        // Grow at 3/4 load.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let key = pack(low, high);
        let mut i = hash(key) as usize & self.mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.idx == EMPTY {
                *slot = Slot { key, idx };
                self.len += 1;
                return;
            }
            debug_assert_ne!(slot.key, key, "duplicate unique-table insert");
            i = (i + 1) & self.mask;
        }
    }

    /// Empties the table while keeping its allocation, so a GC rebuild
    /// re-inserts into already-sized storage instead of reallocating.
    pub(crate) fn clear_in_place(&mut self) {
        self.slots.fill(EMPTY_SLOT);
        self.len = 0;
    }

    /// Iterates over the stored node indices (order is unspecified).
    pub(crate) fn node_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.iter().filter(|s| s.idx != EMPTY).map(|s| s.idx)
    }

    /// Number of slot-array growths so far (monotone).
    #[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
    #[inline]
    pub(crate) fn growth_events(&self) -> u64 {
        self.growths
    }

    fn grow(&mut self) {
        self.growths += 1;
        let new_cap = (self.slots.len() * 2).max(MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        self.mask = new_cap - 1;
        for slot in old {
            if slot.idx == EMPTY {
                continue;
            }
            let mut i = hash(slot.key) as usize & self.mask;
            while self.slots[i].idx != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_misses_without_allocating() {
        let t = UniqueTable::new();
        assert_eq!(t.get(3, 4), None);
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), 0);
    }

    #[test]
    fn insert_then_get_round_trips() {
        let mut t = UniqueTable::new();
        for i in 0..1000u32 {
            t.insert(i, i + 1, i + 2);
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(t.get(i, i + 1), Some(i + 2));
        }
        assert_eq!(t.get(1000, 1001), None);
        // Power-of-two capacity with load below 3/4.
        assert!(t.capacity().is_power_of_two());
        assert!(t.len() * 4 <= t.capacity() * 3);
    }

    #[test]
    fn keys_differing_only_in_one_child_do_not_collide_logically() {
        let mut t = UniqueTable::new();
        t.insert(7, 9, 100);
        t.insert(9, 7, 200);
        assert_eq!(t.get(7, 9), Some(100));
        assert_eq!(t.get(9, 7), Some(200));
    }

    #[test]
    fn clear_in_place_keeps_capacity() {
        let mut t = UniqueTable::new();
        for i in 0..100u32 {
            t.insert(i, i, i + 2);
        }
        let cap = t.capacity();
        t.clear_in_place();
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), cap);
        assert_eq!(t.get(5, 5), None);
        t.insert(5, 5, 7);
        assert_eq!(t.get(5, 5), Some(7));
    }

    #[test]
    fn node_indices_visits_every_entry_once() {
        let mut t = UniqueTable::new();
        for i in 0..50u32 {
            t.insert(i, 2 * i, i + 2);
        }
        let mut seen: Vec<u32> = t.node_indices().collect();
        seen.sort_unstable();
        let expected: Vec<u32> = (2..52).collect();
        assert_eq!(seen, expected);
    }
}
