//! Dynamic variable reordering: adjacent-level swap and Rudell-style sifting.
//!
//! Reordering keeps every *protected* root denoting the same boolean
//! function; unprotected [`Ref`](crate::Ref) handles may dangle afterwards,
//! exactly as for [`BddManager::collect_garbage`].

use crate::manager::{BddManager, VarId, TERMINAL_LEVEL};

/// Configuration of the sifting reordering heuristic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiftConfig {
    /// A variable stops moving in one direction once the live node count
    /// exceeds `max_growth` times the best size seen for that variable.
    pub max_growth: f64,
    /// Maximum number of variables to sift (the largest levels first).
    /// `None` sifts every variable.
    pub max_vars: Option<usize>,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            max_growth: 1.2,
            max_vars: None,
        }
    }
}

impl BddManager {
    /// Exchanges the variables at `level` and `level + 1` while preserving
    /// the function of every live node.
    ///
    /// Node handles of nodes at `level` (and of every node not at these two
    /// levels) remain valid and keep denoting the same function. Nodes at
    /// `level + 1` that become dead are reclaimed immediately.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1` is not a valid level.
    pub fn swap_adjacent(&mut self, level: u32) {
        let x = level as usize;
        let y = x + 1;
        assert!(y < self.var_at_level.len(), "level out of range for swap");
        self.cache.invalidate_all();
        self.order_generation += 1;

        let x_nodes: Vec<u32> = self.unique[x].node_indices().collect();
        let y_nodes: Vec<u32> = self.unique[y].node_indices().collect();
        self.unique[x].clear_in_place();
        self.unique[y].clear_in_place();

        // Pass A: nodes at level x that do not depend on the level-y variable
        // keep their variable and simply move down to level y. Children are
        // packed edges: the pointed-at node sits at `edge >> 1`.
        let mut dependent: Vec<u32> = Vec::new();
        for idx in x_nodes {
            let n = self.nodes[idx as usize];
            let low_at_y = self.nodes[(n.low >> 1) as usize].level == y as u32;
            let high_at_y = self.nodes[(n.high >> 1) as usize].level == y as u32;
            if low_at_y || high_at_y {
                dependent.push(idx);
            } else {
                self.nodes[idx as usize].level = y as u32;
                // UniqueTable::insert debug-asserts key uniqueness itself.
                self.unique[y].insert(n.low, n.high, idx);
            }
        }

        // Pass B: rewrite the nodes that depend on both variables. The
        // grandchild cofactors push the else-edge's complement attribute
        // through; the then-edge is regular by canonicity, so `f11` is
        // regular and the rewritten then-edge `mk(y, f01, f11)` stays
        // regular — the in-place rewrite cannot break the canonical form.
        for idx in dependent {
            let n = self.nodes[idx as usize];
            let (f0, f1) = (n.low, n.high);
            let c0 = f0 & 1;
            let (f00, f01) = if self.nodes[(f0 >> 1) as usize].level == y as u32 {
                let child = self.nodes[(f0 >> 1) as usize];
                (child.low ^ c0, child.high ^ c0)
            } else {
                (f0, f0)
            };
            debug_assert_eq!(f1 & 1, 0, "then-edges are regular by canonicity");
            let (f10, f11) = if self.nodes[(f1 >> 1) as usize].level == y as u32 {
                let child = self.nodes[(f1 >> 1) as usize];
                (child.low, child.high)
            } else {
                (f1, f1)
            };
            let new_low = if f00 == f10 {
                f00
            } else {
                self.mk(y as u32, f00, f10)
            };
            let new_high = if f01 == f11 {
                f01
            } else {
                self.mk(y as u32, f01, f11)
            };
            debug_assert_ne!(new_low, new_high, "swapped node became redundant");
            debug_assert_eq!(new_high & 1, 0, "rewritten then-edge must stay regular");
            self.nodes[(new_low >> 1) as usize].refcount += 1;
            self.nodes[(new_high >> 1) as usize].refcount += 1;
            self.nodes[(f0 >> 1) as usize].refcount =
                self.nodes[(f0 >> 1) as usize].refcount.saturating_sub(1);
            self.nodes[(f1 >> 1) as usize].refcount =
                self.nodes[(f1 >> 1) as usize].refcount.saturating_sub(1);
            let node = &mut self.nodes[idx as usize];
            node.low = new_low;
            node.high = new_high;
            // The node keeps level x, which now hosts the other variable.
            self.unique[x].insert(new_low, new_high, idx);
        }

        // Pass C: surviving nodes of the old level y move up to level x;
        // dead ones are reclaimed.
        for idx in y_nodes {
            let n = self.nodes[idx as usize];
            let dead = n.refcount == 0 && !self.protected.contains_key(&idx);
            if dead {
                self.nodes[(n.low >> 1) as usize].refcount =
                    self.nodes[(n.low >> 1) as usize].refcount.saturating_sub(1);
                self.nodes[(n.high >> 1) as usize].refcount = self.nodes[(n.high >> 1) as usize]
                    .refcount
                    .saturating_sub(1);
                self.nodes[idx as usize].free = true;
                self.free_list.push(idx);
            } else {
                self.nodes[idx as usize].level = x as u32;
                self.unique[x].insert(n.low, n.high, idx);
            }
        }

        // Finally exchange the variable <-> level maps.
        let vx = self.var_at_level[x];
        let vy = self.var_at_level[y];
        self.var_at_level[x] = vy;
        self.var_at_level[y] = vx;
        self.level_of_var[vx as usize] = y as u32;
        self.level_of_var[vy as usize] = x as u32;
    }

    /// Moves variable `v` to `target_level` through adjacent swaps.
    pub fn move_var_to_level(&mut self, v: VarId, target_level: u32) {
        let mut cur = self.level_of(v);
        while cur < target_level {
            self.swap_adjacent(cur);
            cur += 1;
        }
        while cur > target_level {
            self.swap_adjacent(cur - 1);
            cur -= 1;
        }
    }

    /// Reorders the variables to exactly `order` (top to bottom) through
    /// adjacent swaps.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the declared variables.
    pub fn reorder_to(&mut self, order: &[VarId]) {
        assert_eq!(
            order.len(),
            self.num_vars(),
            "order must mention every variable exactly once"
        );
        let mut seen = vec![false; self.num_vars()];
        for v in order {
            assert!(
                !std::mem::replace(&mut seen[v.index()], true),
                "duplicate variable in order"
            );
        }
        for (target, &v) in order.iter().enumerate() {
            self.move_var_to_level(v, target as u32);
        }
    }

    /// Garbage-collects and then applies Rudell's sifting heuristic with the
    /// default [`SiftConfig`]. Returns the live node count after reordering.
    pub fn sift(&mut self) -> usize {
        self.sift_with(SiftConfig::default())
    }

    /// Sifting with an explicit configuration.
    ///
    /// Only [protected](BddManager::protect) roots are guaranteed to survive;
    /// call this only at points where every needed BDD is protected.
    pub fn sift_with(&mut self, config: SiftConfig) -> usize {
        self.collect_garbage();
        let nlevels = self.var_at_level.len();
        if nlevels < 2 {
            return self.live_node_count();
        }
        // Sift the variables with the most nodes first.
        let mut by_size: Vec<(usize, VarId)> = (0..nlevels)
            .map(|l| (self.unique[l].len(), self.var_at(l as u32)))
            .collect();
        by_size.sort_unstable_by_key(|&(size, _)| std::cmp::Reverse(size));
        let limit = config.max_vars.unwrap_or(nlevels).min(nlevels);

        for &(_, var) in by_size.iter().take(limit) {
            self.sift_one(var, config.max_growth);
        }
        self.collect_garbage();
        debug_assert!(
            self.check_canonical().is_ok(),
            "canonical-form audit failed after sifting: {:?}",
            self.check_canonical()
        );
        self.live_node_count()
    }

    fn sift_one(&mut self, var: VarId, max_growth: f64) {
        let nlevels = self.var_at_level.len() as u32;
        let start = self.level_of(var);
        let mut best_size = self.live_node_count();
        let mut best_level = start;

        // Decide which direction to explore first (shorter side first).
        let explore = |down_first: bool| -> [i32; 2] {
            if down_first {
                [1, -1]
            } else {
                [-1, 1]
            }
        };
        let down_first = (nlevels - 1 - start) <= start;

        for dir in explore(down_first) {
            // Return to the best position found so far before exploring the
            // other direction.
            self.move_var_to_level(var, best_level);
            let mut level = best_level;
            loop {
                let next = level as i64 + dir as i64;
                if next < 0 || next >= nlevels as i64 {
                    break;
                }
                if dir > 0 {
                    self.swap_adjacent(level);
                } else {
                    self.swap_adjacent(level - 1);
                }
                level = next as u32;
                let size = self.live_node_count();
                if size < best_size {
                    best_size = size;
                    best_level = level;
                }
                if size as f64 > best_size as f64 * max_growth {
                    break;
                }
            }
        }
        self.move_var_to_level(var, best_level);
    }

    /// Number of live internal nodes at each level (diagnostic for ordering
    /// experiments).
    pub fn level_profile(&self) -> Vec<usize> {
        self.unique.iter().map(|t| t.len()).collect()
    }

    /// Total number of live internal nodes (terminals excluded), counting
    /// only nodes registered in the unique tables.
    pub fn unique_table_size(&self) -> usize {
        self.unique.iter().map(|t| t.len()).sum()
    }

    #[allow(dead_code)]
    pub(crate) fn debug_assert_levels(&self) {
        for (idx, n) in self.nodes.iter().enumerate().skip(1) {
            if n.free {
                continue;
            }
            debug_assert!(n.level != TERMINAL_LEVEL);
            debug_assert!(
                self.nodes[(n.low >> 1) as usize].level > n.level,
                "node {idx}"
            );
            debug_assert!(
                self.nodes[(n.high >> 1) as usize].level > n.level,
                "node {idx}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Ref;

    /// Builds a function whose BDD size is order-sensitive:
    /// (x0 ∧ x3) ∨ (x1 ∧ x4) ∨ (x2 ∧ x5).
    fn order_sensitive(m: &mut BddManager) -> Ref {
        let v = m.variables();
        let mut acc = m.zero();
        for i in 0..3 {
            let a = m.var(v[i]);
            let b = m.var(v[i + 3]);
            let t = m.and(a, b);
            acc = m.or(acc, t);
        }
        acc
    }

    fn eval_reference(bits: &[bool]) -> bool {
        (bits[0] && bits[3]) || (bits[1] && bits[4]) || (bits[2] && bits[5])
    }

    fn assert_function(m: &BddManager, f: Ref) {
        for bits in 0u32..64 {
            let a: Vec<bool> = (0..6).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(
                m.eval(f, |v| a[v.index()]),
                eval_reference(&a),
                "mismatch for {a:?}"
            );
        }
    }

    #[test]
    fn swap_preserves_functions() {
        let mut m = BddManager::with_vars(6);
        let f = order_sensitive(&mut m);
        m.protect(f);
        for level in 0..5 {
            m.swap_adjacent(level);
            assert_function(&m, f);
            assert!(m.check_invariants().is_ok(), "after swap at {level}");
        }
        // Swap back in reverse order restores the original order.
        for level in (0..5).rev() {
            m.swap_adjacent(level);
        }
        assert_eq!(m.current_order(), m.variables());
        assert_function(&m, f);
    }

    #[test]
    fn reorder_to_target_order() {
        let mut m = BddManager::with_vars(6);
        let f = order_sensitive(&mut m);
        m.protect(f);
        let v = m.variables();
        let interleaved = vec![v[0], v[3], v[1], v[4], v[2], v[5]];
        m.reorder_to(&interleaved);
        assert_eq!(m.current_order(), interleaved);
        assert_function(&m, f);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn interleaving_shrinks_order_sensitive_function() {
        let mut m = BddManager::with_vars(6);
        let f = order_sensitive(&mut m);
        m.protect(f);
        m.collect_garbage();
        let before = m.node_count(f);
        let v = m.variables();
        m.reorder_to(&[v[0], v[3], v[1], v[4], v[2], v[5]]);
        m.collect_garbage();
        let after = m.node_count(f);
        assert!(
            after < before,
            "interleaved order should shrink the BDD ({before} -> {after})"
        );
    }

    #[test]
    fn sifting_never_loses_the_function_and_helps() {
        let mut m = BddManager::with_vars(6);
        let f = order_sensitive(&mut m);
        m.protect(f);
        m.collect_garbage();
        let before = m.node_count(f);
        m.sift();
        assert_function(&m, f);
        assert!(m.check_invariants().is_ok());
        let after = m.node_count(f);
        assert!(after <= before);
        // The optimal size for this function with interleaved order is 8
        // internal nodes + 2 terminals.
        assert!(
            after <= 10,
            "sifting should reach a near-optimal size, got {after}"
        );
    }

    #[test]
    fn sift_respects_max_vars() {
        let mut m = BddManager::with_vars(6);
        let f = order_sensitive(&mut m);
        m.protect(f);
        m.sift_with(SiftConfig {
            max_growth: 1.1,
            max_vars: Some(2),
        });
        assert_function(&m, f);
        assert!(m.check_invariants().is_ok());
    }
}
