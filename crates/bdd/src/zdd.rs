//! Zero-suppressed decision diagrams (ZDDs).
//!
//! ZDDs represent *families of sets* compactly when the sets are sparse, the
//! typical situation for one-variable-per-place Petri-net markings (Yoneda et
//! al., FMCAD 1996). The reproduction uses them as the baseline the dense
//! BDD encoding is compared against in Table 4 of the paper.
//!
//! The reduction rule differs from BDDs: a node whose `high` (element
//! present) child is the empty family is removed, while nodes with equal
//! children are kept.
//!
//! Storage mirrors the BDD kernel: one open-addressing
//! [`UniqueTable`](crate::table) per element level and a direct-mapped lossy
//! [`ComputedCache`](crate::cache) for the set operations (a lost cache
//! entry only costs a recomputation, so lossiness is sound).

use crate::budget::{Budget, Interrupt};
use crate::cache::ComputedCache;
use crate::table::UniqueTable;
use std::collections::HashMap;
use std::fmt;

/// Panic message of the infallible wrappers; only reachable when a budget
/// is installed *and* breached (see the BDD kernel's identical discipline).
const UNGOVERNED: &str =
    "budget breached inside an infallible ZDD operation; governed callers must use the try_* API";

/// A handle to a ZDD node owned by a [`ZddManager`].
///
/// Two handles from the same manager are equal iff they denote the same
/// family of sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZddRef(u32);

impl ZddRef {
    /// Raw arena index, for diagnostics.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ZddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "∅"),
            1 => write!(f, "{{∅}}"),
            i => write!(f, "z@{i}"),
        }
    }
}

const EMPTY: u32 = 0;
const BASE: u32 = 1;
const TERMINAL_LEVEL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct ZNode {
    level: u32,
    low: u32,
    high: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ZOp {
    Union,
    Intersect,
    Diff,
    Subset0,
    Subset1,
    Change,
    Apply,
}

/// One per-element step of a fused transition update (see
/// [`ZddManager::register_update`]). The four kinds cover both directions
/// of a Petri-net firing on the sparse marking representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZddUpdateAction {
    /// Keep only the sets containing the element and remove it from each
    /// (≡ `subset1`): a consumed place that is not produced back, or a
    /// produced place on the backward step.
    RequireRemove,
    /// Keep only the sets containing the element, leaving it in place: a
    /// self-loop place (in both the pre- and the post-set).
    RequireKeep,
    /// Toggle membership of the element in every set (≡ `change`): a
    /// produced place that was not consumed.
    Toggle,
    /// Keep only the sets *not* containing the element, then add it to each
    /// (≡ `subset0` followed by `change`): the backward step restoring a
    /// consumed place.
    ForbidAdd,
}

/// Handle to a fused update list interned by
/// [`ZddManager::register_update`]. The handle's identity keys the
/// computed cache, so repeated applications of the same update memoise
/// across calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ZddUpdate(u32);

/// Manager of zero-suppressed decision diagrams over a fixed set of
/// elements `0 .. num_elements`.
///
/// # Examples
///
/// ```
/// use pnsym_bdd::ZddManager;
/// let mut z = ZddManager::new(3);
/// let a = z.family_from_sets(&[vec![0, 1]]);
/// let b = z.family_from_sets(&[vec![2]]);
/// let u = z.union(a, b);
/// assert_eq!(z.count(u), 2.0);
/// assert!(z.contains(u, &[0, 1]));
/// assert!(z.contains(u, &[2]));
/// assert!(!z.contains(u, &[0]));
/// ```
pub struct ZddManager {
    nodes: Vec<ZNode>,
    /// One `(low, high) -> node` table per element level.
    unique: Vec<UniqueTable>,
    cache: ComputedCache,
    num_elements: usize,
    /// Interned fused-update action lists, sorted by element
    /// (see [`ZddManager::register_update`]).
    updates: Vec<Vec<(u32, ZddUpdateAction)>>,
    /// Dedup index over `updates`, so re-registering an identical list
    /// returns the same cache-keying handle.
    update_index: HashMap<Vec<(u32, ZddUpdateAction)>, u32>,
    /// The resource envelope governing this manager's operations, if any
    /// (see [`ZddManager::install_budget`]).
    budget: Option<Budget>,
    /// Table/cache growth events already accounted to the fault schedule.
    #[cfg(feature = "fault-inject")]
    growths_seen: (u64, u64),
}

impl fmt::Debug for ZddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ZddManager")
            .field("num_elements", &self.num_elements)
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl ZddManager {
    /// Creates a manager for families over elements `0 .. num_elements`.
    /// The element index doubles as the (fixed) level in the diagrams.
    pub fn new(num_elements: usize) -> Self {
        let mut nodes = Vec::with_capacity(1024);
        nodes.push(ZNode {
            level: TERMINAL_LEVEL,
            low: EMPTY,
            high: EMPTY,
        });
        nodes.push(ZNode {
            level: TERMINAL_LEVEL,
            low: BASE,
            high: BASE,
        });
        ZddManager {
            nodes,
            unique: (0..num_elements).map(|_| UniqueTable::new()).collect(),
            cache: ComputedCache::new(),
            num_elements,
            updates: Vec::new(),
            update_index: HashMap::new(),
            budget: None,
            #[cfg(feature = "fault-inject")]
            growths_seen: (0, 0),
        }
    }

    /// Installs `budget` as the governor of this manager's operations; the
    /// same cooperative-checkpoint discipline as
    /// [`BddManager::install_budget`](crate::BddManager::install_budget).
    pub fn install_budget(&mut self, budget: Budget) {
        #[cfg(feature = "fault-inject")]
        {
            self.growths_seen = (
                self.unique.iter().map(|t| t.growth_events()).sum(),
                self.cache.growth_events(),
            );
        }
        self.budget = Some(budget);
    }

    /// Removes and returns the installed budget (with its sticky breach, if
    /// any); the manager is ungoverned again afterwards.
    pub fn take_budget(&mut self) -> Option<Budget> {
        self.budget.take()
    }

    /// The installed budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// The amortized cooperative budget check (one call per cache miss;
    /// free when no budget is installed).
    #[inline]
    fn checkpoint(&mut self) -> Result<(), Interrupt> {
        match self.budget.as_mut() {
            None => Ok(()),
            Some(b) => {
                if b.tick() {
                    self.budget_check()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Forces a full budget check right now (pass/cluster boundaries).
    pub fn force_checkpoint(&mut self) -> Result<(), Interrupt> {
        if self.budget.is_none() {
            return Ok(());
        }
        self.budget_check()
    }

    #[cold]
    fn budget_check(&mut self) -> Result<(), Interrupt> {
        #[cfg(feature = "fault-inject")]
        {
            let table: u64 = self.unique.iter().map(|t| t.growth_events()).sum();
            let cache = self.cache.growth_events();
            let (table_seen, cache_seen) = self.growths_seen;
            self.growths_seen = (table, cache);
            let b = self.budget.as_mut().expect("budget_check without budget");
            b.observe_fault_events(crate::budget::FaultSite::TableGrowth, table - table_seen)?;
            b.observe_fault_events(crate::budget::FaultSite::CacheGrowth, cache - cache_seen)?;
        }
        let live = self.nodes.len();
        self.budget
            .as_mut()
            .expect("budget_check without budget")
            .check(live)
    }

    /// Number of elements the families range over.
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// The empty family `∅` (no sets at all).
    pub fn empty(&self) -> ZddRef {
        ZddRef(EMPTY)
    }

    /// The unit family `{∅}` containing only the empty set.
    pub fn base(&self) -> ZddRef {
        ZddRef(BASE)
    }

    /// Total number of nodes currently allocated (terminals included).
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, level: u32, low: u32, high: u32) -> u32 {
        // Zero-suppression rule.
        if high == EMPTY {
            return low;
        }
        if let Some(idx) = self.unique[level as usize].get(low, high) {
            return idx;
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(ZNode { level, low, high });
        self.unique[level as usize].insert(low, high, idx);
        self.cache.ensure_covers(2 * self.nodes.len());
        idx
    }

    #[inline]
    fn level(&self, f: u32) -> u32 {
        self.nodes[f as usize].level
    }

    /// The family containing exactly the given sets (each set is a list of
    /// element indices; duplicates within a set are ignored).
    ///
    /// # Panics
    ///
    /// Panics if any element index is out of range.
    pub fn family_from_sets(&mut self, sets: &[Vec<usize>]) -> ZddRef {
        let mut acc = self.empty();
        for set in sets {
            let single = self.single_set(set);
            acc = self.union(acc, single);
        }
        acc
    }

    /// The family containing exactly one set.
    ///
    /// # Panics
    ///
    /// Panics if any element index is out of range.
    pub fn single_set(&mut self, set: &[usize]) -> ZddRef {
        for &e in set {
            assert!(e < self.num_elements, "element {e} out of range");
        }
        let mut elems: Vec<usize> = set.to_vec();
        elems.sort_unstable();
        elems.dedup();
        // Build bottom-up (largest level nearest to the terminal).
        let mut acc = BASE;
        for &e in elems.iter().rev() {
            acc = self.mk(e as u32, EMPTY, acc);
        }
        ZddRef(acc)
    }

    /// Union of two families.
    pub fn union(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        self.try_union(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`ZddManager::union`]: unwinds with a typed [`Interrupt`]
    /// if the installed budget breaches mid-recursion.
    pub fn try_union(&mut self, f: ZddRef, g: ZddRef) -> Result<ZddRef, Interrupt> {
        Ok(ZddRef(self.union_rec(f.0, g.0)?))
    }

    fn union_rec(&mut self, f: u32, g: u32) -> Result<u32, Interrupt> {
        if f == g || g == EMPTY {
            return Ok(f);
        }
        if f == EMPTY {
            return Ok(g);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.cache.get(ZOp::Union as u8, a, b, 0) {
            return Ok(r);
        }
        self.checkpoint()?;
        let lf = self.level(f);
        let lg = self.level(g);
        let r = if lf < lg {
            let n = self.nodes[f as usize];
            let low = self.union_rec(n.low, g)?;
            self.mk(lf, low, n.high)
        } else if lg < lf {
            let n = self.nodes[g as usize];
            let low = self.union_rec(f, n.low)?;
            self.mk(lg, low, n.high)
        } else {
            let nf = self.nodes[f as usize];
            let ng = self.nodes[g as usize];
            let low = self.union_rec(nf.low, ng.low)?;
            let high = self.union_rec(nf.high, ng.high)?;
            self.mk(lf, low, high)
        };
        self.cache.put(ZOp::Union as u8, a, b, 0, r);
        Ok(r)
    }

    /// Intersection of two families.
    pub fn intersect(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        self.try_intersect(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`ZddManager::intersect`].
    pub fn try_intersect(&mut self, f: ZddRef, g: ZddRef) -> Result<ZddRef, Interrupt> {
        Ok(ZddRef(self.intersect_rec(f.0, g.0)?))
    }

    fn intersect_rec(&mut self, f: u32, g: u32) -> Result<u32, Interrupt> {
        if f == EMPTY || g == EMPTY {
            return Ok(EMPTY);
        }
        if f == g {
            return Ok(f);
        }
        let (a, b) = if f < g { (f, g) } else { (g, f) };
        if let Some(r) = self.cache.get(ZOp::Intersect as u8, a, b, 0) {
            return Ok(r);
        }
        self.checkpoint()?;
        let lf = self.level(f);
        let lg = self.level(g);
        let r = if lf < lg {
            let n = self.nodes[f as usize];
            self.intersect_rec(n.low, g)?
        } else if lg < lf {
            let n = self.nodes[g as usize];
            self.intersect_rec(f, n.low)?
        } else {
            let nf = self.nodes[f as usize];
            let ng = self.nodes[g as usize];
            let low = self.intersect_rec(nf.low, ng.low)?;
            let high = self.intersect_rec(nf.high, ng.high)?;
            self.mk(lf, low, high)
        };
        self.cache.put(ZOp::Intersect as u8, a, b, 0, r);
        Ok(r)
    }

    /// Set difference `f \ g` of two families.
    pub fn diff(&mut self, f: ZddRef, g: ZddRef) -> ZddRef {
        self.try_diff(f, g).expect(UNGOVERNED)
    }

    /// Fallible [`ZddManager::diff`].
    pub fn try_diff(&mut self, f: ZddRef, g: ZddRef) -> Result<ZddRef, Interrupt> {
        Ok(ZddRef(self.diff_rec(f.0, g.0)?))
    }

    fn diff_rec(&mut self, f: u32, g: u32) -> Result<u32, Interrupt> {
        if f == EMPTY || f == g {
            return Ok(EMPTY);
        }
        if g == EMPTY {
            return Ok(f);
        }
        if let Some(r) = self.cache.get(ZOp::Diff as u8, f, g, 0) {
            return Ok(r);
        }
        self.checkpoint()?;
        let lf = self.level(f);
        let lg = self.level(g);
        let r = if lf < lg {
            let n = self.nodes[f as usize];
            let low = self.diff_rec(n.low, g)?;
            self.mk(lf, low, n.high)
        } else if lg < lf {
            let n = self.nodes[g as usize];
            self.diff_rec(f, n.low)?
        } else {
            let nf = self.nodes[f as usize];
            let ng = self.nodes[g as usize];
            let low = self.diff_rec(nf.low, ng.low)?;
            let high = self.diff_rec(nf.high, ng.high)?;
            self.mk(lf, low, high)
        };
        self.cache.put(ZOp::Diff as u8, f, g, 0, r);
        Ok(r)
    }

    /// The sub-family of sets *not* containing `element`.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range.
    pub fn subset0(&mut self, f: ZddRef, element: usize) -> ZddRef {
        assert!(
            element < self.num_elements,
            "element {element} out of range"
        );
        let e = element as u32;
        ZddRef(self.subset0_rec(f.0, e))
    }

    fn subset0_rec(&mut self, f: u32, e: u32) -> u32 {
        let lf = self.level(f);
        if lf > e {
            return f; // element cannot occur below this point
        }
        let key = (ZOp::Subset0 as u8, f, e);
        if let Some(r) = self.cache.get(key.0, key.1, key.2, 0) {
            return r;
        }
        let n = self.nodes[f as usize];
        let r = if lf == e {
            n.low
        } else {
            let low = self.subset0_rec(n.low, e);
            let high = self.subset0_rec(n.high, e);
            self.mk(lf, low, high)
        };
        self.cache.put(key.0, key.1, key.2, 0, r);
        r
    }

    /// The sets containing `element`, with `element` removed from each.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range.
    pub fn subset1(&mut self, f: ZddRef, element: usize) -> ZddRef {
        assert!(
            element < self.num_elements,
            "element {element} out of range"
        );
        let e = element as u32;
        ZddRef(self.subset1_rec(f.0, e))
    }

    fn subset1_rec(&mut self, f: u32, e: u32) -> u32 {
        let lf = self.level(f);
        if lf > e {
            return EMPTY;
        }
        let key = (ZOp::Subset1 as u8, f, e);
        if let Some(r) = self.cache.get(key.0, key.1, key.2, 0) {
            return r;
        }
        let n = self.nodes[f as usize];
        let r = if lf == e {
            n.high
        } else {
            let low = self.subset1_rec(n.low, e);
            let high = self.subset1_rec(n.high, e);
            self.mk(lf, low, high)
        };
        self.cache.put(key.0, key.1, key.2, 0, r);
        r
    }

    /// Toggles the membership of `element` in every set of the family.
    ///
    /// # Panics
    ///
    /// Panics if `element` is out of range (the per-level unique tables,
    /// unlike the previous single map, only exist for declared elements).
    pub fn change(&mut self, f: ZddRef, element: usize) -> ZddRef {
        assert!(
            element < self.num_elements,
            "element {element} out of range"
        );
        let e = element as u32;
        ZddRef(self.change_rec(f.0, e))
    }

    fn change_rec(&mut self, f: u32, e: u32) -> u32 {
        let lf = self.level(f);
        let key = (ZOp::Change as u8, f, e);
        if lf > e {
            // The element does not occur: add it to every set.
            return self.mk(e, EMPTY, f);
        }
        if let Some(r) = self.cache.get(key.0, key.1, key.2, 0) {
            return r;
        }
        let n = self.nodes[f as usize];
        let r = if lf == e {
            self.mk(e, n.high, n.low)
        } else {
            let low = self.change_rec(n.low, e);
            let high = self.change_rec(n.high, e);
            self.mk(lf, low, high)
        };
        self.cache.put(key.0, key.1, key.2, 0, r);
        r
    }

    /// Interns a fused update: a list of per-element [`ZddUpdateAction`]s
    /// applied in one diagram traversal by [`ZddManager::apply_update`].
    ///
    /// This is the ZDD analogue of the BDD kernel's fused relational
    /// product: where the step-by-step formulation walks the whole diagram
    /// once per place (`subset1` per consumed place, `change` per produced
    /// place, each with its own cache entries and intermediate families),
    /// a registered update performs the entire transition firing in a
    /// single cached recursion, so no intermediate family is ever built.
    ///
    /// Registering the same action list twice returns the same handle, and
    /// the handle participates in the computed-cache key, so repeated
    /// applications memoise across calls and across fixpoint iterations.
    ///
    /// # Panics
    ///
    /// Panics if an element is out of range or listed twice.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_bdd::{ZddManager, ZddUpdateAction};
    /// let mut z = ZddManager::new(3);
    /// // Fire a transition consuming element 0 and producing element 2.
    /// let fire = z.register_update(&[
    ///     (0, ZddUpdateAction::RequireRemove),
    ///     (2, ZddUpdateAction::Toggle),
    /// ]);
    /// let s = z.family_from_sets(&[vec![0, 1], vec![1]]);
    /// let t = z.apply_update(s, fire);
    /// assert_eq!(z.sets(t), vec![vec![1, 2]]); // {1} lacked element 0
    /// ```
    pub fn register_update(&mut self, actions: &[(usize, ZddUpdateAction)]) -> ZddUpdate {
        let mut sorted: Vec<(u32, ZddUpdateAction)> = actions
            .iter()
            .map(|&(e, a)| {
                assert!(e < self.num_elements, "element {e} out of range");
                (e as u32, a)
            })
            .collect();
        sorted.sort_unstable_by_key(|&(e, _)| e);
        for w in sorted.windows(2) {
            assert!(w[0].0 != w[1].0, "element {} listed twice", w[0].0);
        }
        if let Some(&id) = self.update_index.get(&sorted) {
            return ZddUpdate(id);
        }
        let id = self.updates.len() as u32;
        self.updates.push(sorted.clone());
        self.update_index.insert(sorted, id);
        ZddUpdate(id)
    }

    /// Applies a registered fused update to every set of the family in one
    /// cached traversal (see [`ZddManager::register_update`]).
    pub fn apply_update(&mut self, f: ZddRef, update: ZddUpdate) -> ZddRef {
        self.try_apply_update(f, update).expect(UNGOVERNED)
    }

    /// Fallible [`ZddManager::apply_update`].
    pub fn try_apply_update(&mut self, f: ZddRef, update: ZddUpdate) -> Result<ZddRef, Interrupt> {
        assert!(
            (update.0 as usize) < self.updates.len(),
            "update handle from another manager"
        );
        Ok(ZddRef(self.apply_rec(f.0, update.0, 0)?))
    }

    fn apply_rec(&mut self, f: u32, u: u32, i: u32) -> Result<u32, Interrupt> {
        if f == EMPTY {
            return Ok(EMPTY);
        }
        if i as usize == self.updates[u as usize].len() {
            return Ok(f);
        }
        if let Some(r) = self.cache.get(ZOp::Apply as u8, f, u, i) {
            return Ok(r);
        }
        self.checkpoint()?;
        let (e, action) = self.updates[u as usize][i as usize];
        let lf = self.level(f);
        let r = if lf > e {
            // The element occurs in no set of `f` (the `BASE` terminal
            // included): requirements fail outright, additions prepend the
            // element above the whole remainder.
            match action {
                ZddUpdateAction::RequireRemove | ZddUpdateAction::RequireKeep => EMPTY,
                ZddUpdateAction::Toggle | ZddUpdateAction::ForbidAdd => {
                    let rest = self.apply_rec(f, u, i + 1)?;
                    self.mk(e, EMPTY, rest)
                }
            }
        } else if lf == e {
            let n = self.nodes[f as usize];
            match action {
                ZddUpdateAction::RequireRemove => self.apply_rec(n.high, u, i + 1)?,
                ZddUpdateAction::RequireKeep => {
                    let rest = self.apply_rec(n.high, u, i + 1)?;
                    self.mk(e, EMPTY, rest)
                }
                ZddUpdateAction::Toggle => {
                    // Sets without the element gain it and vice versa, so
                    // the two children swap roles.
                    let gained = self.apply_rec(n.low, u, i + 1)?;
                    let lost = self.apply_rec(n.high, u, i + 1)?;
                    self.mk(e, lost, gained)
                }
                ZddUpdateAction::ForbidAdd => {
                    let rest = self.apply_rec(n.low, u, i + 1)?;
                    self.mk(e, EMPTY, rest)
                }
            }
        } else {
            // lf < e: this element is untouched; push the update into both
            // children.
            let n = self.nodes[f as usize];
            let low = self.apply_rec(n.low, u, i)?;
            let high = self.apply_rec(n.high, u, i)?;
            self.mk(lf, low, high)
        };
        self.cache.put(ZOp::Apply as u8, f, u, i, r);
        Ok(r)
    }

    /// Number of sets in the family (exact for counts below 2^53).
    pub fn count(&self, f: ZddRef) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.count_rec(f.0, &mut memo)
    }

    fn count_rec(&self, f: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        match f {
            EMPTY => 0.0,
            BASE => 1.0,
            _ => {
                if let Some(&c) = memo.get(&f) {
                    return c;
                }
                let n = self.nodes[f as usize];
                let c = self.count_rec(n.low, memo) + self.count_rec(n.high, memo);
                memo.insert(f, c);
                c
            }
        }
    }

    /// Whether the family contains exactly the given set.
    pub fn contains(&self, f: ZddRef, set: &[usize]) -> bool {
        let mut elems: Vec<u32> = set.iter().map(|&e| e as u32).collect();
        elems.sort_unstable();
        elems.dedup();
        let mut cur = f.0;
        let mut i = 0;
        loop {
            if cur == EMPTY {
                return false;
            }
            if cur == BASE {
                return i == elems.len();
            }
            let n = self.nodes[cur as usize];
            if i < elems.len() && elems[i] == n.level {
                cur = n.high;
                i += 1;
            } else if i < elems.len() && elems[i] < n.level {
                // A required element can no longer occur.
                return false;
            } else {
                cur = n.low;
            }
        }
    }

    /// Number of nodes in the diagram rooted at `f` (terminals included).
    pub fn node_count(&self, f: ZddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(idx) = stack.pop() {
            if !seen.insert(idx) {
                continue;
            }
            let n = self.nodes[idx as usize];
            if n.level != TERMINAL_LEVEL {
                stack.push(n.low);
                stack.push(n.high);
            }
        }
        seen.len()
    }

    /// Enumerates every set of the family (each as a sorted vector of
    /// element indices). Intended for tests and small families.
    pub fn sets(&self, f: ZddRef) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.sets_rec(f.0, &mut prefix, &mut out);
        out.sort();
        out
    }

    fn sets_rec(&self, f: u32, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        match f {
            EMPTY => {}
            BASE => out.push(prefix.clone()),
            _ => {
                let n = self.nodes[f as usize];
                self.sets_rec(n.low, prefix, out);
                prefix.push(n.level as usize);
                self.sets_rec(n.high, prefix, out);
                prefix.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_base() {
        let z = ZddManager::new(4);
        assert_eq!(z.count(z.empty()), 0.0);
        assert_eq!(z.count(z.base()), 1.0);
        assert!(z.contains(z.base(), &[]));
        assert!(!z.contains(z.empty(), &[]));
    }

    #[test]
    fn families_and_set_operations() {
        let mut z = ZddManager::new(5);
        let f = z.family_from_sets(&[vec![0, 2], vec![1], vec![0, 1, 3]]);
        assert_eq!(z.count(f), 3.0);
        assert!(z.contains(f, &[0, 2]));
        assert!(z.contains(f, &[1]));
        assert!(!z.contains(f, &[0]));

        let g = z.family_from_sets(&[vec![1], vec![4]]);
        let u = z.union(f, g);
        assert_eq!(z.count(u), 4.0);
        let i = z.intersect(f, g);
        assert_eq!(z.sets(i), vec![vec![1]]);
        let d = z.diff(f, g);
        assert_eq!(z.count(d), 2.0);
        assert!(!z.contains(d, &[1]));
    }

    #[test]
    fn union_is_idempotent_and_commutative() {
        let mut z = ZddManager::new(4);
        let f = z.family_from_sets(&[vec![0], vec![1, 2]]);
        let g = z.family_from_sets(&[vec![3], vec![0]]);
        assert_eq!(z.union(f, f), f);
        let fg = z.union(f, g);
        let gf = z.union(g, f);
        assert_eq!(fg, gf);
    }

    #[test]
    fn subsets_partition_the_family() {
        let mut z = ZddManager::new(4);
        let f = z.family_from_sets(&[vec![0, 1], vec![1, 2], vec![3], vec![]]);
        let with1 = z.subset1(f, 1);
        let without1 = z.subset0(f, 1);
        assert_eq!(z.sets(with1), vec![vec![0], vec![2]]);
        assert_eq!(z.sets(without1), vec![vec![], vec![3]]);
        assert_eq!(z.count(with1) + z.count(without1), z.count(f));
    }

    #[test]
    fn change_toggles_membership() {
        let mut z = ZddManager::new(4);
        let f = z.family_from_sets(&[vec![0], vec![1]]);
        let g = z.change(f, 0);
        assert_eq!(z.sets(g), vec![vec![], vec![0, 1]]);
        // Toggling twice is the identity.
        let h = z.change(g, 0);
        assert_eq!(h, f);
    }

    #[test]
    fn single_set_ignores_duplicates() {
        let mut z = ZddManager::new(4);
        let f = z.single_set(&[2, 0, 2]);
        assert_eq!(z.sets(f), vec![vec![0, 2]]);
        assert!(z.node_count(f) > 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_element_panics() {
        let mut z = ZddManager::new(2);
        let _ = z.single_set(&[5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_change_panics() {
        let mut z = ZddManager::new(2);
        let b = z.base();
        let _ = z.change(b, 5);
    }

    #[test]
    fn canonical_handles() {
        let mut z = ZddManager::new(4);
        let f = z.family_from_sets(&[vec![0, 1], vec![2]]);
        let g1 = z.family_from_sets(&[vec![2], vec![0, 1]]);
        assert_eq!(f, g1);
    }

    /// Applies the same update through the step-by-step operations, as the
    /// pre-fusion engine did: the fused recursion must agree exactly.
    fn sequential_update(
        z: &mut ZddManager,
        f: ZddRef,
        actions: &[(usize, ZddUpdateAction)],
    ) -> ZddRef {
        let mut acc = f;
        for &(e, action) in actions {
            acc = match action {
                ZddUpdateAction::RequireRemove => z.subset1(acc, e),
                ZddUpdateAction::RequireKeep => {
                    let kept = z.subset1(acc, e);
                    z.change(kept, e)
                }
                ZddUpdateAction::Toggle => z.change(acc, e),
                ZddUpdateAction::ForbidAdd => {
                    let without = z.subset0(acc, e);
                    z.change(without, e)
                }
            };
        }
        acc
    }

    #[test]
    fn fused_update_matches_sequential_composition() {
        use ZddUpdateAction::*;
        let mut z = ZddManager::new(6);
        // A family mixing all membership patterns over the touched elements.
        let f = z.family_from_sets(&[
            vec![],
            vec![0],
            vec![1],
            vec![0, 1, 3],
            vec![2, 4],
            vec![0, 2, 5],
            vec![1, 2, 3, 4, 5],
        ]);
        let updates: Vec<Vec<(usize, ZddUpdateAction)>> = vec![
            vec![(0, RequireRemove), (2, Toggle)],
            vec![(1, RequireKeep)],
            vec![(3, ForbidAdd), (0, RequireRemove)],
            vec![(5, Toggle), (4, RequireRemove), (1, ForbidAdd)],
            vec![
                (0, RequireKeep),
                (1, RequireRemove),
                (2, ForbidAdd),
                (3, Toggle),
            ],
            vec![],
        ];
        for actions in updates {
            let expected = sequential_update(&mut z, f, &actions);
            let u = z.register_update(&actions);
            let got = z.apply_update(f, u);
            assert_eq!(got, expected, "actions {actions:?}");
            // Applying through the cache a second time returns the same
            // canonical handle.
            assert_eq!(z.apply_update(f, u), expected);
        }
    }

    #[test]
    fn fused_update_on_empty_and_base() {
        use ZddUpdateAction::*;
        let mut z = ZddManager::new(3);
        let fire = z.register_update(&[(0, RequireRemove), (1, Toggle)]);
        assert_eq!(z.apply_update(z.empty(), fire), z.empty());
        // The empty set fails the requirement on element 0.
        assert_eq!(z.apply_update(z.base(), fire), z.empty());
        let add = z.register_update(&[(1, Toggle), (2, ForbidAdd)]);
        let b = z.base();
        let got = z.apply_update(b, add);
        assert_eq!(z.sets(got), vec![vec![1, 2]]);
    }

    #[test]
    fn registering_the_same_update_returns_the_same_handle() {
        use ZddUpdateAction::*;
        let mut z = ZddManager::new(4);
        let a = z.register_update(&[(2, Toggle), (0, RequireRemove)]);
        // Same actions in a different textual order intern identically.
        let b = z.register_update(&[(0, RequireRemove), (2, Toggle)]);
        assert_eq!(a, b);
        let c = z.register_update(&[(0, RequireRemove)]);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_update_element_panics() {
        use ZddUpdateAction::*;
        let mut z = ZddManager::new(4);
        let _ = z.register_update(&[(1, Toggle), (1, RequireRemove)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_update_element_panics() {
        use ZddUpdateAction::*;
        let mut z = ZddManager::new(2);
        let _ = z.register_update(&[(7, Toggle)]);
    }

    /// Builds two moderately wide families over `n` elements for the
    /// budget tests: enough distinct subproblems that a tight step ceiling
    /// fires mid-recursion rather than before or after the real work.
    fn wide_families(n: usize) -> (ZddManager, ZddRef, ZddRef) {
        let mut z = ZddManager::new(n);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                left.push(vec![i, j]);
                right.push(vec![i, (j + 1) % n]);
            }
            left.push((0..=i).collect());
            right.push((i..n).collect());
        }
        let f = z.family_from_sets(&left);
        let g = z.family_from_sets(&right);
        (z, f, g)
    }

    #[test]
    fn interrupted_zdd_operation_leaves_the_manager_consistent() {
        use crate::budget::{Budget, TruncationReason};

        let (mut z, f, g) = wide_families(10);
        // A reference result from an ungoverned manager.
        let (mut zr, fr, gr) = wide_families(10);
        let union_ref = zr.union(fr, gr);
        let expected_sets = zr.count(union_ref);

        z.install_budget(Budget::new().with_step_ceiling(3));
        let err = z.try_union(f, g).expect_err("ceiling of 3 must trip");
        assert_eq!(err.reason, TruncationReason::StepBudget);
        // The breach is sticky: every governed operation now unwinds with
        // the same first reason.
        let err2 = z.try_diff(f, g).expect_err("sticky breach");
        assert_eq!(err2.reason, TruncationReason::StepBudget);

        // Removing the budget restores the manager: the interrupted
        // operation re-runs to completion on the same arena and matches
        // the ungoverned reference.
        let spent = z.take_budget().expect("budget was installed");
        assert!(spent.breached().is_some());
        let union_after = z.union(f, g);
        assert_eq!(z.count(union_after), expected_sets);
    }

    #[test]
    fn ungoverned_zdd_managers_never_interrupt() {
        let (mut z, f, g) = wide_families(8);
        let u = z.try_union(f, g).expect("no budget installed");
        let i = z.try_intersect(f, g).expect("no budget installed");
        let d = z.try_diff(u, i).expect("no budget installed");
        assert_eq!(z.count(d), z.count(u) - z.count(i));
    }
}
