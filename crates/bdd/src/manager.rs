//! The [`BddManager`]: node arena, unique tables, computed cache, garbage
//! collection and variable bookkeeping.
//!
//! The manager stores every node of every BDD it ever created in a single
//! arena. Nodes are identified by [`Ref`] handles (plain `u32` indices), so
//! handles are `Copy` and comparing two handles for equality decides function
//! equality in O(1) (the manager maintains strong canonicity).
//!
//! Canonicity is enforced by one open-addressing [`UniqueTable`] per level
//! (multiplicative hashing, linear probing, no per-entry allocation) and
//! operations are memoised in a direct-mapped lossy [`ComputedCache`]
//! invalidated by generation counter — see [`crate::table`] and
//! [`crate::cache`] for the rationale.

use crate::budget::{Budget, Interrupt};
use crate::cache::ComputedCache;
use crate::table::UniqueTable;
use std::collections::HashMap;
use std::fmt;

/// A handle to a BDD node owned by a [`BddManager`].
///
/// Two `Ref`s obtained from the *same* manager denote the same boolean
/// function if and only if they are equal. A `Ref` is only meaningful
/// together with the manager that produced it.
///
/// # Examples
///
/// ```
/// use pnsym_bdd::BddManager;
/// let mut m = BddManager::new();
/// let x = m.add_var();
/// let a = m.var(x);
/// let b = m.var(x);
/// assert_eq!(a, b); // canonicity: same function, same handle
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The raw index of the node inside the manager's arena.
    ///
    /// Only useful for diagnostics (e.g. DOT export labels).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "FALSE"),
            1 => write!(f, "TRUE"),
            i => write!(f, "@{i}"),
        }
    }
}

/// Identifier of a boolean variable managed by a [`BddManager`].
///
/// Variable identity is stable across dynamic reordering: reordering changes
/// the *level* (position in the order) of a variable, never its `VarId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The numeric id of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Index of the constant `FALSE` node.
pub(crate) const FALSE: u32 = 0;
/// Index of the constant `TRUE` node.
pub(crate) const TRUE: u32 = 1;
/// Pseudo-level used for terminal nodes: below every variable level.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// An internal BDD node. `level` is the position of the node's variable in
/// the current variable order (low levels are close to the root).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) level: u32,
    pub(crate) low: u32,
    pub(crate) high: u32,
    /// Number of internal parent edges pointing at this node. External
    /// references are tracked separately through [`BddManager::protect`].
    pub(crate) refcount: u32,
    /// Mark bit used by mark-and-sweep garbage collection.
    pub(crate) marked: bool,
    /// Whether the slot is free (on the free list).
    pub(crate) free: bool,
}

/// Operation tags used as part of computed-cache keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Or,
    Xor,
    Not,
    Ite,
    Exists,
    AndExists,
    Constrain,
}

/// Computed-cache hit/miss counters of one operation family
/// (see [`ManagerStats::per_op`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (each miss is one recursive expansion).
    pub misses: u64,
}

impl OpCacheStats {
    /// Total lookups of this operation.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Statistics snapshot of a [`BddManager`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Number of live (allocated, non-free) nodes, including terminals.
    pub live_nodes: usize,
    /// Total arena capacity (live + freed slots).
    pub arena_size: usize,
    /// Number of variables.
    pub num_vars: usize,
    /// Number of garbage collections performed so far.
    pub gc_runs: usize,
    /// Cumulative number of nodes reclaimed by garbage collection.
    pub gc_reclaimed: usize,
    /// Exact high-water mark of the live-node count, updated on every
    /// allocation (see [`BddManager::peak_live_nodes`]).
    pub peak_live_nodes: usize,
    /// Entries across all per-level unique tables (live internal nodes).
    pub unique_entries: usize,
    /// Slots allocated across all per-level unique tables.
    pub unique_capacity: usize,
    /// Slots of the computed cache (bounded; see
    /// [`BddManager::set_cache_max_log2`]).
    pub cache_capacity: usize,
    /// Computed-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Computed-cache lookups that missed.
    pub cache_misses: u64,
    /// Computed-cache inserts that evicted a live entry (lossy collisions).
    pub cache_overwrites: u64,
    /// Per-operation cache counters of `and`.
    pub op_and: OpCacheStats,
    /// Per-operation cache counters of `or` (the image-fold workhorse).
    pub op_or: OpCacheStats,
    /// Per-operation cache counters of `not`.
    pub op_not: OpCacheStats,
    /// Per-operation cache counters of `exists`.
    pub op_exists: OpCacheStats,
    /// Per-operation cache counters of the fused relational product
    /// `and_exists`.
    pub op_and_exists: OpCacheStats,
}

impl ManagerStats {
    /// Load factor of the unique tables (entries over slots), in `[0, 1]`.
    pub fn unique_load(&self) -> f64 {
        if self.unique_capacity == 0 {
            0.0
        } else {
            self.unique_entries as f64 / self.unique_capacity as f64
        }
    }

    /// Fraction of computed-cache lookups answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The per-operation counters paired with their operation names, for
    /// iteration (statistics tables, JSON records).
    pub fn per_op(&self) -> [(&'static str, OpCacheStats); 5] {
        [
            ("and", self.op_and),
            ("or", self.op_or),
            ("not", self.op_not),
            ("exists", self.op_exists),
            ("and_exists", self.op_and_exists),
        ]
    }
}

/// A shared-storage manager for Reduced Ordered Binary Decision Diagrams.
///
/// The manager owns the node arena, the per-level unique tables enforcing
/// canonicity, and the computed cache used to memoise boolean operations.
/// All operations producing new BDDs take `&mut self`.
///
/// # Garbage collection and protection
///
/// BDD nodes are never freed implicitly. Call [`BddManager::protect`] on the
/// roots that must survive, then [`BddManager::collect_garbage`] (or
/// [`sift`](crate::reorder) which garbage-collects internally). Any
/// unprotected `Ref` may dangle after a collection or a reordering.
///
/// # Examples
///
/// ```
/// use pnsym_bdd::BddManager;
/// let mut m = BddManager::with_vars(2);
/// let (x0, x1) = (m.var_id(0), m.var_id(1));
/// let a = m.var(x0);
/// let b = m.var(x1);
/// let f = m.and(a, b);
/// assert!(m.eval(f, |v| v == x0 || v == x1));
/// assert!(!m.eval(f, |v| v == x0));
/// ```
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    /// Per-level unique tables: `(low, high) -> node index`.
    pub(crate) unique: Vec<UniqueTable>,
    /// Computed cache for memoised operations.
    pub(crate) cache: ComputedCache,
    /// `var_at_level[level] = var`.
    pub(crate) var_at_level: Vec<u32>,
    /// `level_of_var[var] = level`.
    pub(crate) level_of_var: Vec<u32>,
    /// Free arena slots available for reuse.
    pub(crate) free_list: Vec<u32>,
    /// Externally protected roots with protection counts.
    pub(crate) protected: HashMap<u32, usize>,
    pub(crate) gc_runs: usize,
    pub(crate) gc_reclaimed: usize,
    pub(crate) peak_live: usize,
    /// Threshold of live nodes above which callers are advised to collect.
    pub(crate) gc_hint_threshold: usize,
    /// Bumped by every adjacent-level swap (and hence by every sift or
    /// explicit reordering). Lets traversal schedulers detect that cached
    /// level information went stale (see [`BddManager::order_generation`]).
    pub(crate) order_generation: u64,
    /// Peak live-node count reported by shard replica managers of this
    /// manager (parallel traversal workers); folded into
    /// [`BddManager::peak_live_nodes`] so parallel statistics account for
    /// worker arenas too.
    pub(crate) shard_peak: usize,
    /// The resource envelope governing this manager's operations, if any
    /// (see [`BddManager::install_budget`]).
    pub(crate) budget: Option<Budget>,
    /// Table/cache growth events already accounted to the fault schedule
    /// when the current budget was installed.
    #[cfg(feature = "fault-inject")]
    pub(crate) growths_seen: (u64, u64),
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.num_vars())
            .field("live_nodes", &self.live_node_count())
            .field("arena_size", &self.nodes.len())
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager with no variables.
    pub fn new() -> Self {
        let mut m = BddManager {
            nodes: Vec::with_capacity(1024),
            unique: Vec::new(),
            cache: ComputedCache::new(),
            var_at_level: Vec::new(),
            level_of_var: Vec::new(),
            free_list: Vec::new(),
            protected: HashMap::new(),
            gc_runs: 0,
            gc_reclaimed: 0,
            peak_live: 2,
            gc_hint_threshold: 1 << 20,
            order_generation: 0,
            shard_peak: 0,
            budget: None,
            #[cfg(feature = "fault-inject")]
            growths_seen: (0, 0),
        };
        // Terminal nodes FALSE (0) and TRUE (1).
        m.nodes.push(Node {
            level: TERMINAL_LEVEL,
            low: FALSE,
            high: FALSE,
            refcount: 0,
            marked: false,
            free: false,
        });
        m.nodes.push(Node {
            level: TERMINAL_LEVEL,
            low: TRUE,
            high: TRUE,
            refcount: 0,
            marked: false,
            free: false,
        });
        m
    }

    /// Creates a manager with `n` variables already declared
    /// (`VarId(0) .. VarId(n-1)`, initially ordered by id).
    pub fn with_vars(n: usize) -> Self {
        let mut m = Self::new();
        for _ in 0..n {
            m.add_var();
        }
        m
    }

    /// Declares a new variable, placed at the bottom of the current order.
    pub fn add_var(&mut self) -> VarId {
        let var = self.level_of_var.len() as u32;
        let level = self.var_at_level.len() as u32;
        self.var_at_level.push(var);
        self.level_of_var.push(level);
        self.unique.push(UniqueTable::new());
        VarId(var)
    }

    /// Returns the `i`-th variable id.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn var_id(&self, i: usize) -> VarId {
        assert!(i < self.level_of_var.len(), "variable index out of range");
        VarId(i as u32)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.level_of_var.len()
    }

    /// All declared variables in id order.
    pub fn variables(&self) -> Vec<VarId> {
        (0..self.level_of_var.len() as u32).map(VarId).collect()
    }

    /// The constant `FALSE` function.
    pub fn zero(&self) -> Ref {
        Ref(FALSE)
    }

    /// The constant `TRUE` function.
    pub fn one(&self) -> Ref {
        Ref(TRUE)
    }

    /// Returns `true` if `f` is one of the two constant functions.
    pub fn is_constant(&self, f: Ref) -> bool {
        f.0 == FALSE || f.0 == TRUE
    }

    /// The positive literal of variable `v` as a BDD.
    pub fn var(&mut self, v: VarId) -> Ref {
        let level = self.level_of(v);
        let idx = self.mk(level, FALSE, TRUE);
        Ref(idx)
    }

    /// The negative literal of variable `v` as a BDD.
    pub fn nvar(&mut self, v: VarId) -> Ref {
        let level = self.level_of(v);
        let idx = self.mk(level, TRUE, FALSE);
        Ref(idx)
    }

    /// Current level (position in the variable order) of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not declared by this manager.
    pub fn level_of(&self, v: VarId) -> u32 {
        self.level_of_var[v.0 as usize]
    }

    /// Variable sitting at level `level` of the current order.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn var_at(&self, level: u32) -> VarId {
        VarId(self.var_at_level[level as usize])
    }

    /// The current variable order, from the top level downwards.
    pub fn current_order(&self) -> Vec<VarId> {
        self.var_at_level.iter().map(|&v| VarId(v)).collect()
    }

    /// Variable labelling the root node of `f`, or `None` for constants.
    pub fn root_var(&self, f: Ref) -> Option<VarId> {
        let n = &self.nodes[f.0 as usize];
        if n.level == TERMINAL_LEVEL {
            None
        } else {
            Some(self.var_at(n.level))
        }
    }

    /// Low (else) child of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn low(&self, f: Ref) -> Ref {
        assert!(!self.is_constant(f), "constants have no children");
        Ref(self.nodes[f.0 as usize].low)
    }

    /// High (then) child of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn high(&self, f: Ref) -> Ref {
        assert!(!self.is_constant(f), "constants have no children");
        Ref(self.nodes[f.0 as usize].high)
    }

    #[inline]
    pub(crate) fn level(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].level
    }

    /// Find-or-create a node `(level, low, high)`, applying the reduction
    /// rule (redundant test elimination).
    pub(crate) fn mk(&mut self, level: u32, low: u32, high: u32) -> u32 {
        debug_assert!(level != TERMINAL_LEVEL);
        debug_assert!(
            self.level(low) > level && self.level(high) > level,
            "children must sit strictly below the new node"
        );
        if low == high {
            return low;
        }
        if let Some(idx) = self.unique[level as usize].get(low, high) {
            return idx;
        }
        let idx = self.alloc(level, low, high);
        self.unique[level as usize].insert(low, high, idx);
        idx
    }

    fn alloc(&mut self, level: u32, low: u32, high: u32) -> u32 {
        self.nodes[low as usize].refcount = self.nodes[low as usize].refcount.saturating_add(1);
        self.nodes[high as usize].refcount = self.nodes[high as usize].refcount.saturating_add(1);
        let idx = if let Some(idx) = self.free_list.pop() {
            self.nodes[idx as usize] = Node {
                level,
                low,
                high,
                refcount: 0,
                marked: false,
                free: false,
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                level,
                low,
                high,
                refcount: 0,
                marked: false,
                free: false,
            });
            // Keep the computed cache sized ahead of the arena: the apply
            // recursions memoise operand *pairs*, whose working set runs
            // ahead of the node count, and a cache much smaller than that
            // working set thrashes (see ComputedCache).
            self.cache.ensure_covers(2 * self.nodes.len());
            idx
        };
        // Every allocation grows the live set by exactly one node, so the
        // high-water mark is exact here — sampling it between operations
        // (as the traversal loop once did) misses intra-image peaks.
        let live = self.nodes.len() - self.free_list.len();
        if live > self.peak_live {
            self.peak_live = live;
        }
        idx
    }

    /// Protects `f` (and implicitly every node reachable from it) from
    /// garbage collection and reordering invalidation. Protection is
    /// counted: call [`BddManager::unprotect`] the same number of times.
    pub fn protect(&mut self, f: Ref) {
        *self.protected.entry(f.0).or_insert(0) += 1;
    }

    /// Releases one protection previously acquired with [`BddManager::protect`].
    ///
    /// Unprotecting a node that is not protected is a no-op.
    pub fn unprotect(&mut self, f: Ref) {
        if let Some(count) = self.protected.get_mut(&f.0) {
            *count -= 1;
            if *count == 0 {
                self.protected.remove(&f.0);
            }
        }
    }

    /// Number of live nodes (including the two terminals).
    pub fn live_node_count(&self) -> usize {
        self.nodes.len() - self.free_list.len()
    }

    /// Exact high-water mark of the live-node count over the manager's
    /// lifetime, maintained on every allocation (so peaks *inside* one
    /// image computation are captured, not only those visible between
    /// operations). Includes any shard peaks folded in through
    /// [`BddManager::absorb_shard_peak`].
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
            .max(self.live_node_count())
            .max(self.shard_peak)
    }

    /// Folds the peak live-node count of a shard replica manager (a
    /// parallel-traversal worker arena) into this manager's peak
    /// accounting, so [`BddManager::peak_live_nodes`] reflects the largest
    /// arena the whole traversal — owner or worker — ever held. Callers
    /// that want combined-footprint peaks can pass the sum of the workers'
    /// peaks of one pass.
    pub fn absorb_shard_peak(&mut self, peak: usize) {
        self.shard_peak = self.shard_peak.max(peak);
    }

    /// Total number of protections currently held on roots of this manager
    /// (the sum of the per-root protection counts). Balanced
    /// protect/unprotect discipline — e.g. across a witness-trace
    /// extraction — leaves this value unchanged.
    pub fn protected_root_count(&self) -> usize {
        self.protected.values().sum()
    }

    /// Generation counter of the variable order: bumped by every
    /// adjacent-level swap, and therefore by every sifting pass or
    /// explicit reordering that actually moved a variable. Schedulers that
    /// cache per-level information (e.g. the saturation strategy's level
    /// buckets) compare generations to detect staleness.
    pub fn order_generation(&self) -> u64 {
        self.order_generation
    }

    /// Whether the number of live nodes has crossed the advisory GC threshold.
    pub fn should_collect(&self) -> bool {
        self.live_node_count() >= self.gc_hint_threshold
    }

    /// Sets the advisory GC threshold used by [`BddManager::should_collect`].
    pub fn set_gc_threshold(&mut self, nodes: usize) {
        self.gc_hint_threshold = nodes.max(16);
    }

    /// The current advisory GC threshold (see [`BddManager::should_collect`]).
    pub fn gc_threshold(&self) -> usize {
        self.gc_hint_threshold
    }

    /// Installs `budget` as the governor of this manager's operations.
    ///
    /// Once installed, the fallible `try_*` operation family checks the
    /// budget cooperatively (amortized inside the recursions, see
    /// [`Budget`]) and unwinds with a typed
    /// [`Interrupt`] on breach; the infallible
    /// wrappers (`and`, `or`, …) panic on breach, so governed callers
    /// must use `try_*`. Replaces any previously installed budget.
    pub fn install_budget(&mut self, budget: Budget) {
        #[cfg(feature = "fault-inject")]
        {
            self.growths_seen = (self.table_growth_events(), self.cache.growth_events());
        }
        self.budget = Some(budget);
    }

    /// Removes and returns the installed budget (with its sticky breach, if
    /// any). Afterwards the manager is ungoverned again: the same query can
    /// be re-run to completion on the same, still-consistent manager.
    pub fn take_budget(&mut self) -> Option<Budget> {
        self.budget.take()
    }

    /// The installed budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// The amortized cooperative budget check: counts one governed step
    /// and, every [`Budget::CHECK_INTERVAL`] steps (or promptly once a
    /// ceiling is exceeded), performs the real deadline/node-count check.
    /// Free when no budget is installed; the kernel recursions call this
    /// once per cache miss.
    #[inline]
    pub fn checkpoint(&mut self) -> Result<(), Interrupt> {
        match self.budget.as_mut() {
            None => Ok(()),
            Some(b) => {
                if b.tick() {
                    self.checkpoint_slow()
                } else {
                    Ok(())
                }
            }
        }
    }

    #[cold]
    fn checkpoint_slow(&mut self) -> Result<(), Interrupt> {
        self.budget_check()
    }

    /// Forces a full budget check right now, skipping the amortization.
    /// Traversal drivers call this at every pass/cluster boundary so even
    /// a run too small to trip the amortized in-recursion check still
    /// observes a tiny deadline deterministically.
    pub fn force_checkpoint(&mut self) -> Result<(), Interrupt> {
        if self.budget.is_none() {
            return Ok(());
        }
        self.budget_check()
    }

    fn budget_check(&mut self) -> Result<(), Interrupt> {
        #[cfg(feature = "fault-inject")]
        {
            let table = self.table_growth_events();
            let cache = self.cache.growth_events();
            let (table_seen, cache_seen) = self.growths_seen;
            self.growths_seen = (table, cache);
            let b = self.budget.as_mut().expect("budget_check without budget");
            b.observe_fault_events(crate::budget::FaultSite::TableGrowth, table - table_seen)?;
            b.observe_fault_events(crate::budget::FaultSite::CacheGrowth, cache - cache_seen)?;
        }
        let live = self.live_node_count();
        self.budget
            .as_mut()
            .expect("budget_check without budget")
            .check(live)
    }

    /// Records one event at an out-of-kernel fault-injection site (replica
    /// import, worker spawn); fails when the installed budget's schedule
    /// trips on it. A manager without a budget observes nothing.
    #[cfg(feature = "fault-inject")]
    pub fn fault_event(&mut self, site: crate::budget::FaultSite) -> Result<(), Interrupt> {
        match self.budget.as_mut() {
            Some(b) => b.observe_fault_events(site, 1),
            None => Ok(()),
        }
    }

    #[cfg(feature = "fault-inject")]
    fn table_growth_events(&self) -> u64 {
        self.unique.iter().map(|t| t.growth_events()).sum()
    }

    /// Total computed-cache lookups (hits plus misses) issued so far.
    ///
    /// Unlike wall time, this is a deterministic operation count: two runs
    /// that issue the same operation sequence report identical values, so
    /// deltas of this counter can be used as a reproducible cost metric
    /// (e.g. for load balancing work across replica managers).
    pub fn cache_lookups(&self) -> u64 {
        let counters = self.cache.counters();
        counters.hits() + counters.misses()
    }

    /// Returns a snapshot of manager statistics.
    pub fn stats(&self) -> ManagerStats {
        let counters = self.cache.counters();
        let op = |op: Op| {
            let c = counters.per_op[op as usize];
            OpCacheStats {
                hits: c.hits,
                misses: c.misses,
            }
        };
        ManagerStats {
            live_nodes: self.live_node_count(),
            arena_size: self.nodes.len(),
            num_vars: self.num_vars(),
            gc_runs: self.gc_runs,
            gc_reclaimed: self.gc_reclaimed,
            peak_live_nodes: self.peak_live_nodes(),
            unique_entries: self.unique.iter().map(|t| t.len()).sum(),
            unique_capacity: self.unique.iter().map(|t| t.capacity()).sum(),
            cache_capacity: self.cache.capacity(),
            cache_hits: counters.hits(),
            cache_misses: counters.misses(),
            cache_overwrites: counters.overwrites,
            op_and: op(Op::And),
            op_or: op(Op::Or),
            op_not: op(Op::Not),
            op_exists: op(Op::Exists),
            op_and_exists: op(Op::AndExists),
        }
    }

    /// Caps the computed cache at `2^max_log2` slots. The cache starts small
    /// and grows under insert pressure, but never beyond this bound, after
    /// which colliding inserts overwrite (the cache is lossy by design).
    pub fn set_cache_max_log2(&mut self, max_log2: u32) {
        self.cache.set_max_log2(max_log2);
    }

    /// Mark-and-sweep garbage collection.
    ///
    /// Every node not reachable from a [protected](BddManager::protect) root
    /// is reclaimed. Unique tables are rebuilt *in place* (their allocations
    /// are kept) and the computed cache is invalidated in O(1) by bumping its
    /// generation counter, so a collection costs one pass over the arena and
    /// nothing else. Unprotected `Ref`s held by the caller are invalidated.
    pub fn collect_garbage(&mut self) {
        // Mark phase.
        let roots: Vec<u32> = self.protected.keys().copied().collect();
        for r in roots {
            self.mark(r);
        }
        self.nodes[FALSE as usize].marked = true;
        self.nodes[TRUE as usize].marked = true;
        // Sweep phase: empty the tables without freeing their storage.
        let mut reclaimed = 0usize;
        for level_table in &mut self.unique {
            level_table.clear_in_place();
        }
        self.free_list.clear();
        for idx in 0..self.nodes.len() as u32 {
            let (marked, free) = {
                let n = &self.nodes[idx as usize];
                (n.marked, n.free)
            };
            if free {
                self.free_list.push(idx);
                continue;
            }
            if marked {
                let n = &mut self.nodes[idx as usize];
                n.marked = false;
                n.refcount = 0;
            } else if idx != FALSE && idx != TRUE {
                let n = &mut self.nodes[idx as usize];
                n.free = true;
                n.refcount = 0;
                self.free_list.push(idx);
                reclaimed += 1;
            }
        }
        // Re-insert survivors into the kept storage and rebuild refcounts.
        for idx in 2..self.nodes.len() as u32 {
            let n = self.nodes[idx as usize];
            if n.free {
                continue;
            }
            self.unique[n.level as usize].insert(n.low, n.high, idx);
            self.nodes[n.low as usize].refcount += 1;
            self.nodes[n.high as usize].refcount += 1;
        }
        self.cache.invalidate_all();
        self.gc_runs += 1;
        self.gc_reclaimed += reclaimed;
    }

    fn mark(&mut self, root: u32) {
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let n = &mut self.nodes[idx as usize];
            if n.marked || n.free {
                continue;
            }
            n.marked = true;
            if n.level != TERMINAL_LEVEL {
                stack.push(n.low);
                stack.push(n.high);
            }
        }
    }

    #[inline]
    pub(crate) fn cache_get(&mut self, key: (Op, u32, u32, u32)) -> Option<u32> {
        self.cache.get(key.0 as u8, key.1, key.2, key.3)
    }

    #[inline]
    pub(crate) fn cache_put(&mut self, key: (Op, u32, u32, u32), value: u32) {
        self.cache.put(key.0 as u8, key.1, key.2, key.3, value);
    }

    /// Invalidates the computed cache (normally only needed by reordering).
    /// O(1): bumps the cache generation instead of touching the slots.
    pub fn clear_cache(&mut self) {
        self.cache.invalidate_all();
    }

    /// Checks internal invariants: canonicity (no duplicate or redundant
    /// nodes) and order consistency (children below parents). Intended for
    /// tests; cost is linear in the arena size.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen: HashMap<(u32, u32, u32), u32> = HashMap::new();
        for idx in 2..self.nodes.len() as u32 {
            let n = &self.nodes[idx as usize];
            if n.free {
                continue;
            }
            if n.low == n.high {
                return Err(format!("node {idx} is redundant (low == high)"));
            }
            if self.level(n.low) <= n.level || self.level(n.high) <= n.level {
                return Err(format!("node {idx} violates the variable order"));
            }
            if self.nodes[n.low as usize].free || self.nodes[n.high as usize].free {
                return Err(format!("node {idx} points at a freed node"));
            }
            if let Some(&other) = seen.get(&(n.level, n.low, n.high)) {
                return Err(format!("nodes {other} and {idx} are duplicates"));
            }
            seen.insert((n.level, n.low, n.high), idx);
            match self.unique[n.level as usize].get(n.low, n.high) {
                Some(u) if u == idx => {}
                _ => return Err(format!("node {idx} missing from its unique table")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_distinct() {
        let m = BddManager::new();
        assert_ne!(m.zero(), m.one());
        assert!(m.is_constant(m.zero()));
        assert!(m.is_constant(m.one()));
    }

    #[test]
    fn var_nodes_are_canonical() {
        let mut m = BddManager::with_vars(3);
        let v1 = m.var_id(1);
        let a = m.var(v1);
        let b = m.var(v1);
        assert_eq!(a, b);
        assert_eq!(m.root_var(a), Some(v1));
        assert_eq!(m.low(a), m.zero());
        assert_eq!(m.high(a), m.one());
    }

    #[test]
    fn mk_applies_reduction_rule() {
        let mut m = BddManager::with_vars(1);
        let idx = m.mk(0, TRUE, TRUE);
        assert_eq!(idx, TRUE);
    }

    #[test]
    fn gc_reclaims_unprotected_nodes() {
        let mut m = BddManager::with_vars(4);
        let vars: Vec<_> = m.variables();
        let mut f = m.one();
        for &v in &vars {
            let lit = m.var(v);
            f = m.and(f, lit);
        }
        let before = m.live_node_count();
        assert!(before > 2);
        m.protect(f);
        m.collect_garbage();
        assert!(m.live_node_count() <= before);
        // f still evaluates correctly after GC.
        assert!(m.eval(f, |_| true));
        assert!(!m.eval(f, |v| v.0 != 0));
        m.unprotect(f);
        m.collect_garbage();
        // Only terminals remain.
        assert_eq!(m.live_node_count(), 2);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn stats_reports_progress() {
        let mut m = BddManager::with_vars(2);
        let x = m.var_id(0);
        let y = m.var_id(1);
        let a = m.var(x);
        let b = m.var(y);
        let f = m.or(a, b);
        m.protect(f);
        m.collect_garbage();
        let s = m.stats();
        assert_eq!(s.num_vars, 2);
        assert!(s.live_nodes >= 4);
        assert_eq!(s.gc_runs, 1);
    }

    #[test]
    fn protection_is_counted() {
        let mut m = BddManager::with_vars(2);
        let x = m.var_id(0);
        let f = m.var(x);
        m.protect(f);
        m.protect(f);
        m.unprotect(f);
        m.collect_garbage();
        assert_eq!(m.root_var(f), Some(x));
        m.unprotect(f);
        m.collect_garbage();
        assert_eq!(m.live_node_count(), 2);
    }
}
