//! The [`BddManager`]: node arena, unique tables, computed cache, garbage
//! collection and variable bookkeeping.
//!
//! The manager stores every node of every BDD it ever created in a single
//! arena. Functions are identified by [`Ref`] handles carrying a
//! *complement attribute* (Brace–Rudell–Bryant): a `Ref` packs a node index
//! and a complement bit (`edge = node_index << 1 | complemented`), so `f`
//! and `¬f` share one subgraph and negation is a bit flip. There is a
//! single terminal node (arena index 0); the constant `TRUE` is the regular
//! edge to it and `FALSE` the complemented one.
//!
//! Canonicity rests on two rules enforced by [`BddManager::mk`]:
//!
//! 1. the classic reduction rule (no redundant tests, no duplicate nodes),
//! 2. the *regular then-edge* rule: a stored node's high (then) edge is
//!    never complemented. A candidate node with a complemented then-edge is
//!    stored with both children flipped and handed out as a complemented
//!    edge instead.
//!
//! With both rules, equal `Ref`s ⇔ equal functions, in O(1). Canonicity is
//! enforced by one open-addressing [`UniqueTable`] per level
//! (multiplicative hashing, linear probing, no per-entry allocation) and
//! operations are memoised in a direct-mapped lossy [`ComputedCache`]
//! invalidated by generation counter — see [`crate::table`] and
//! [`crate::cache`] for the rationale. [`BddManager::check_canonical`]
//! audits the whole arena against these rules (debug-asserted after every
//! collection and sift).

use crate::budget::{Budget, Interrupt};
use crate::cache::ComputedCache;
use crate::table::UniqueTable;
use std::collections::HashMap;
use std::fmt;

/// A handle to a BDD function owned by a [`BddManager`]: a packed edge
/// `node_index << 1 | complement`.
///
/// Two `Ref`s obtained from the *same* manager denote the same boolean
/// function if and only if they are equal. A `Ref` is only meaningful
/// together with the manager that produced it. Negating a function flips
/// the complement bit (see [`BddManager::not`]) — `f` and `¬f` share every
/// node.
///
/// # Examples
///
/// ```
/// use pnsym_bdd::BddManager;
/// let mut m = BddManager::new();
/// let x = m.add_var();
/// let a = m.var(x);
/// let b = m.var(x);
/// assert_eq!(a, b); // canonicity: same function, same handle
/// let na = m.not(a);
/// assert_ne!(na, a);
/// assert_eq!(m.not(na), a); // double negation is the identity bit flip
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The raw packed edge value (`node_index << 1 | complement_bit`).
    ///
    /// Only useful for diagnostics (e.g. DOT export labels).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Whether this edge carries the complement attribute.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            ONE => write!(f, "TRUE"),
            ZERO => write!(f, "FALSE"),
            e if e & 1 == 1 => write!(f, "!@{}", e >> 1),
            e => write!(f, "@{}", e >> 1),
        }
    }
}

/// Identifier of a boolean variable managed by a [`BddManager`].
///
/// Variable identity is stable across dynamic reordering: reordering changes
/// the *level* (position in the order) of a variable, never its `VarId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The numeric id of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The constant `TRUE` as an edge: the regular edge to the terminal node.
pub(crate) const ONE: u32 = 0;
/// The constant `FALSE` as an edge: the complemented edge to the terminal.
pub(crate) const ZERO: u32 = 1;
/// Arena index of the single terminal node.
pub(crate) const TERMINAL: u32 = 0;
/// Pseudo-level used for the terminal node: below every variable level.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// An internal BDD node. `level` is the position of the node's variable in
/// the current variable order (low levels are close to the root). `low` and
/// `high` are packed edges; the canonical form guarantees `high` is regular
/// (complement bit clear).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) level: u32,
    pub(crate) low: u32,
    pub(crate) high: u32,
    /// Number of internal parent edges pointing at this node. External
    /// references are tracked separately through [`BddManager::protect`].
    pub(crate) refcount: u32,
    /// Mark bit used by mark-and-sweep garbage collection.
    pub(crate) marked: bool,
    /// Whether the slot is free (on the free list).
    pub(crate) free: bool,
}

/// Operation tags used as part of computed-cache keys.
///
/// `not` needs no tag (it is a bit flip) and `or` none either (De Morgan
/// delegates to `And` with complemented operands, sharing its entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    And,
    Xor,
    Ite,
    Exists,
    AndExists,
    Constrain,
}

/// Computed-cache hit/miss counters of one operation family
/// (see [`ManagerStats::per_op`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (each miss is one recursive expansion).
    pub misses: u64,
}

impl OpCacheStats {
    /// Total lookups of this operation.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Statistics snapshot of a [`BddManager`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Number of live (allocated, non-free) nodes, including the terminal.
    pub live_nodes: usize,
    /// Total arena capacity (live + freed slots).
    pub arena_size: usize,
    /// Number of variables.
    pub num_vars: usize,
    /// Number of garbage collections performed so far.
    pub gc_runs: usize,
    /// Cumulative number of nodes reclaimed by garbage collection.
    pub gc_reclaimed: usize,
    /// Exact high-water mark of the live-node count, updated on every
    /// allocation (see [`BddManager::peak_live_nodes`]).
    pub peak_live_nodes: usize,
    /// Entries across all per-level unique tables (live internal nodes).
    pub unique_entries: usize,
    /// Slots allocated across all per-level unique tables.
    pub unique_capacity: usize,
    /// Slots of the computed cache (bounded; see
    /// [`BddManager::set_cache_max_log2`]).
    pub cache_capacity: usize,
    /// Computed-cache lookups answered from the cache.
    pub cache_hits: u64,
    /// Computed-cache lookups that missed.
    pub cache_misses: u64,
    /// Computed-cache inserts that evicted a live entry (lossy collisions).
    pub cache_overwrites: u64,
    /// Per-operation cache counters of `and` (also carries the traffic of
    /// `or` and `diff`, which are derived through De Morgan on complement
    /// edges and share the `and` cache entries).
    pub op_and: OpCacheStats,
    /// Per-operation cache counters of `or`. Always zero under complement
    /// edges: `or` is derived (`¬(¬f ∧ ¬g)`) and its traffic is accounted
    /// to [`ManagerStats::op_and`]. Kept for reporting compatibility.
    pub op_or: OpCacheStats,
    /// Per-operation cache counters of `not`. Always zero under complement
    /// edges: negation is an O(1) bit flip that touches neither the cache
    /// nor the arena. Kept for reporting compatibility.
    pub op_not: OpCacheStats,
    /// Per-operation cache counters of `exists`.
    pub op_exists: OpCacheStats,
    /// Per-operation cache counters of the fused relational product
    /// `and_exists`.
    pub op_and_exists: OpCacheStats,
}

impl ManagerStats {
    /// Load factor of the unique tables (entries over slots), in `[0, 1]`.
    pub fn unique_load(&self) -> f64 {
        if self.unique_capacity == 0 {
            0.0
        } else {
            self.unique_entries as f64 / self.unique_capacity as f64
        }
    }

    /// Fraction of computed-cache lookups answered from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// The per-operation counters paired with their operation names, for
    /// iteration (statistics tables, JSON records). `or` and `not` remain
    /// listed (as all-zero entries) so long-lived consumers of the record
    /// format can observe their traffic vanishing under complement edges.
    pub fn per_op(&self) -> [(&'static str, OpCacheStats); 5] {
        [
            ("and", self.op_and),
            ("or", self.op_or),
            ("not", self.op_not),
            ("exists", self.op_exists),
            ("and_exists", self.op_and_exists),
        ]
    }
}

/// A shared-storage manager for Reduced Ordered Binary Decision Diagrams
/// with complement edges.
///
/// The manager owns the node arena, the per-level unique tables enforcing
/// canonicity, and the computed cache used to memoise boolean operations.
/// All operations producing new BDDs take `&mut self`.
///
/// # Garbage collection and protection
///
/// BDD nodes are never freed implicitly. Call [`BddManager::protect`] on the
/// roots that must survive, then [`BddManager::collect_garbage`] (or
/// [`sift`](crate::reorder) which garbage-collects internally). Any
/// unprotected `Ref` may dangle after a collection or a reordering.
/// Protection attaches to the *node*, so protecting `f` protects `¬f` too
/// (they are one subgraph).
///
/// # Examples
///
/// ```
/// use pnsym_bdd::BddManager;
/// let mut m = BddManager::with_vars(2);
/// let (x0, x1) = (m.var_id(0), m.var_id(1));
/// let a = m.var(x0);
/// let b = m.var(x1);
/// let f = m.and(a, b);
/// assert!(m.eval(f, |v| v == x0 || v == x1));
/// assert!(!m.eval(f, |v| v == x0));
/// ```
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    /// Per-level unique tables: `(low_edge, high_edge) -> node index`.
    pub(crate) unique: Vec<UniqueTable>,
    /// Computed cache for memoised operations.
    pub(crate) cache: ComputedCache,
    /// `var_at_level[level] = var`.
    pub(crate) var_at_level: Vec<u32>,
    /// `level_of_var[var] = level`.
    pub(crate) level_of_var: Vec<u32>,
    /// Free arena slots available for reuse.
    pub(crate) free_list: Vec<u32>,
    /// Externally protected roots with protection counts, keyed by *node
    /// index* (protection is complement-agnostic).
    pub(crate) protected: HashMap<u32, usize>,
    pub(crate) gc_runs: usize,
    pub(crate) gc_reclaimed: usize,
    pub(crate) peak_live: usize,
    /// Threshold of live nodes above which callers are advised to collect.
    pub(crate) gc_hint_threshold: usize,
    /// Bumped by every adjacent-level swap (and hence by every sift or
    /// explicit reordering). Lets traversal schedulers detect that cached
    /// level information went stale (see [`BddManager::order_generation`]).
    pub(crate) order_generation: u64,
    /// Peak live-node count reported by shard replica managers of this
    /// manager (parallel traversal workers); folded into
    /// [`BddManager::peak_live_nodes`] so parallel statistics account for
    /// worker arenas too.
    pub(crate) shard_peak: usize,
    /// The resource envelope governing this manager's operations, if any
    /// (see [`BddManager::install_budget`]).
    pub(crate) budget: Option<Budget>,
    /// Table/cache growth events already accounted to the fault schedule
    /// when the current budget was installed.
    #[cfg(feature = "fault-inject")]
    pub(crate) growths_seen: (u64, u64),
}

impl fmt::Debug for BddManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.num_vars())
            .field("live_nodes", &self.live_node_count())
            .field("arena_size", &self.nodes.len())
            .finish()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates an empty manager with no variables.
    pub fn new() -> Self {
        let mut m = BddManager {
            nodes: Vec::with_capacity(1024),
            unique: Vec::new(),
            cache: ComputedCache::new(),
            var_at_level: Vec::new(),
            level_of_var: Vec::new(),
            free_list: Vec::new(),
            protected: HashMap::new(),
            gc_runs: 0,
            gc_reclaimed: 0,
            peak_live: 1,
            gc_hint_threshold: 1 << 20,
            order_generation: 0,
            shard_peak: 0,
            budget: None,
            #[cfg(feature = "fault-inject")]
            growths_seen: (0, 0),
        };
        // The single terminal node: TRUE is the regular edge to it, FALSE
        // the complemented one.
        m.nodes.push(Node {
            level: TERMINAL_LEVEL,
            low: ONE,
            high: ONE,
            refcount: 0,
            marked: false,
            free: false,
        });
        m
    }

    /// Creates a manager with `n` variables already declared
    /// (`VarId(0) .. VarId(n-1)`, initially ordered by id).
    pub fn with_vars(n: usize) -> Self {
        let mut m = Self::new();
        for _ in 0..n {
            m.add_var();
        }
        m
    }

    /// Declares a new variable, placed at the bottom of the current order.
    pub fn add_var(&mut self) -> VarId {
        let var = self.level_of_var.len() as u32;
        let level = self.var_at_level.len() as u32;
        self.var_at_level.push(var);
        self.level_of_var.push(level);
        self.unique.push(UniqueTable::new());
        VarId(var)
    }

    /// Returns the `i`-th variable id.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn var_id(&self, i: usize) -> VarId {
        assert!(i < self.level_of_var.len(), "variable index out of range");
        VarId(i as u32)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.level_of_var.len()
    }

    /// All declared variables in id order.
    pub fn variables(&self) -> Vec<VarId> {
        (0..self.level_of_var.len() as u32).map(VarId).collect()
    }

    /// The constant `FALSE` function (the complemented terminal edge).
    pub fn zero(&self) -> Ref {
        Ref(ZERO)
    }

    /// The constant `TRUE` function (the regular terminal edge).
    pub fn one(&self) -> Ref {
        Ref(ONE)
    }

    /// Returns `true` if `f` is one of the two constant functions.
    pub fn is_constant(&self, f: Ref) -> bool {
        f.0 <= 1
    }

    /// The positive literal of variable `v` as a BDD.
    pub fn var(&mut self, v: VarId) -> Ref {
        let level = self.level_of(v);
        Ref(self.mk(level, ZERO, ONE))
    }

    /// The negative literal of variable `v` as a BDD.
    ///
    /// Shares its single node with [`BddManager::var`] of the same
    /// variable: the negative literal is the complemented edge.
    pub fn nvar(&mut self, v: VarId) -> Ref {
        let level = self.level_of(v);
        Ref(self.mk(level, ONE, ZERO))
    }

    /// Current level (position in the variable order) of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not declared by this manager.
    pub fn level_of(&self, v: VarId) -> u32 {
        self.level_of_var[v.0 as usize]
    }

    /// Variable sitting at level `level` of the current order.
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn var_at(&self, level: u32) -> VarId {
        VarId(self.var_at_level[level as usize])
    }

    /// The current variable order, from the top level downwards.
    pub fn current_order(&self) -> Vec<VarId> {
        self.var_at_level.iter().map(|&v| VarId(v)).collect()
    }

    /// Variable labelling the root node of `f`, or `None` for constants.
    pub fn root_var(&self, f: Ref) -> Option<VarId> {
        let n = &self.nodes[(f.0 >> 1) as usize];
        if n.level == TERMINAL_LEVEL {
            None
        } else {
            Some(self.var_at(n.level))
        }
    }

    /// Low (else) cofactor of `f` at its root variable, with the complement
    /// attribute of `f` pushed through.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn low(&self, f: Ref) -> Ref {
        assert!(!self.is_constant(f), "constants have no children");
        Ref(self.nodes[(f.0 >> 1) as usize].low ^ (f.0 & 1))
    }

    /// High (then) cofactor of `f` at its root variable, with the
    /// complement attribute of `f` pushed through.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a constant.
    pub fn high(&self, f: Ref) -> Ref {
        assert!(!self.is_constant(f), "constants have no children");
        Ref(self.nodes[(f.0 >> 1) as usize].high ^ (f.0 & 1))
    }

    /// Level of the node an edge points at (terminals report
    /// [`TERMINAL_LEVEL`], i.e. below every variable).
    #[inline]
    pub(crate) fn level(&self, edge: u32) -> u32 {
        self.nodes[(edge >> 1) as usize].level
    }

    /// The node an edge points at.
    #[inline]
    pub(crate) fn node(&self, edge: u32) -> Node {
        self.nodes[(edge >> 1) as usize]
    }

    /// Find-or-create the function `var(level) ? high : low` and return it
    /// as a packed edge. Applies the reduction rule (redundant test
    /// elimination) and the regular then-edge canonicalisation: when `high`
    /// is complemented, the node is stored with both children flipped and
    /// the result edge carries the complement attribute instead.
    pub(crate) fn mk(&mut self, level: u32, low: u32, high: u32) -> u32 {
        debug_assert!(level != TERMINAL_LEVEL);
        debug_assert!(
            self.level(low) > level && self.level(high) > level,
            "children must sit strictly below the new node"
        );
        if low == high {
            return low;
        }
        // Canonical rule: the stored then-edge is always regular.
        let c = high & 1;
        let (low, high) = (low ^ c, high ^ c);
        let idx = if let Some(idx) = self.unique[level as usize].get(low, high) {
            idx
        } else {
            let idx = self.alloc(level, low, high);
            self.unique[level as usize].insert(low, high, idx);
            idx
        };
        (idx << 1) | c
    }

    fn alloc(&mut self, level: u32, low: u32, high: u32) -> u32 {
        let low_node = (low >> 1) as usize;
        let high_node = (high >> 1) as usize;
        self.nodes[low_node].refcount = self.nodes[low_node].refcount.saturating_add(1);
        self.nodes[high_node].refcount = self.nodes[high_node].refcount.saturating_add(1);
        let idx = if let Some(idx) = self.free_list.pop() {
            self.nodes[idx as usize] = Node {
                level,
                low,
                high,
                refcount: 0,
                marked: false,
                free: false,
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(Node {
                level,
                low,
                high,
                refcount: 0,
                marked: false,
                free: false,
            });
            // Keep the computed cache sized ahead of the arena: the apply
            // recursions memoise operand *pairs*, whose working set runs
            // ahead of the node count, and a cache much smaller than that
            // working set thrashes (see ComputedCache).
            self.cache.ensure_covers(2 * self.nodes.len());
            idx
        };
        // Every allocation grows the live set by exactly one node, so the
        // high-water mark is exact here — sampling it between operations
        // (as the traversal loop once did) misses intra-image peaks.
        let live = self.nodes.len() - self.free_list.len();
        if live > self.peak_live {
            self.peak_live = live;
        }
        idx
    }

    /// Protects `f` (and implicitly every node reachable from it) from
    /// garbage collection and reordering invalidation. Protection is
    /// counted: call [`BddManager::unprotect`] the same number of times.
    /// Protection attaches to the node, so `f` and `¬f` share it.
    pub fn protect(&mut self, f: Ref) {
        *self.protected.entry(f.0 >> 1).or_insert(0) += 1;
    }

    /// Releases one protection previously acquired with [`BddManager::protect`].
    ///
    /// Unprotecting a node that is not protected is a no-op.
    pub fn unprotect(&mut self, f: Ref) {
        if let Some(count) = self.protected.get_mut(&(f.0 >> 1)) {
            *count -= 1;
            if *count == 0 {
                self.protected.remove(&(f.0 >> 1));
            }
        }
    }

    /// Number of live nodes (including the terminal).
    pub fn live_node_count(&self) -> usize {
        self.nodes.len() - self.free_list.len()
    }

    /// Exact high-water mark of the live-node count over the manager's
    /// lifetime, maintained on every allocation (so peaks *inside* one
    /// image computation are captured, not only those visible between
    /// operations). Includes any shard peaks folded in through
    /// [`BddManager::absorb_shard_peak`].
    pub fn peak_live_nodes(&self) -> usize {
        self.peak_live
            .max(self.live_node_count())
            .max(self.shard_peak)
    }

    /// Folds the peak live-node count of a shard replica manager (a
    /// parallel-traversal worker arena) into this manager's peak
    /// accounting, so [`BddManager::peak_live_nodes`] reflects the largest
    /// arena the whole traversal — owner or worker — ever held. Callers
    /// that want combined-footprint peaks can pass the sum of the workers'
    /// peaks of one pass.
    pub fn absorb_shard_peak(&mut self, peak: usize) {
        self.shard_peak = self.shard_peak.max(peak);
    }

    /// Total number of protections currently held on roots of this manager
    /// (the sum of the per-root protection counts). Balanced
    /// protect/unprotect discipline — e.g. across a witness-trace
    /// extraction — leaves this value unchanged.
    pub fn protected_root_count(&self) -> usize {
        self.protected.values().sum()
    }

    /// Generation counter of the variable order: bumped by every
    /// adjacent-level swap, and therefore by every sifting pass or
    /// explicit reordering that actually moved a variable. Schedulers that
    /// cache per-level information (e.g. the saturation strategy's level
    /// buckets) compare generations to detect staleness.
    pub fn order_generation(&self) -> u64 {
        self.order_generation
    }

    /// Whether the number of live nodes has crossed the advisory GC threshold.
    pub fn should_collect(&self) -> bool {
        self.live_node_count() >= self.gc_hint_threshold
    }

    /// Sets the advisory GC threshold used by [`BddManager::should_collect`].
    pub fn set_gc_threshold(&mut self, nodes: usize) {
        self.gc_hint_threshold = nodes.max(16);
    }

    /// The current advisory GC threshold (see [`BddManager::should_collect`]).
    pub fn gc_threshold(&self) -> usize {
        self.gc_hint_threshold
    }

    /// Installs `budget` as the governor of this manager's operations.
    ///
    /// Once installed, the fallible `try_*` operation family checks the
    /// budget cooperatively (amortized inside the recursions, see
    /// [`Budget`]) and unwinds with a typed
    /// [`Interrupt`] on breach; the infallible
    /// wrappers (`and`, `or`, …) panic on breach, so governed callers
    /// must use `try_*`. Replaces any previously installed budget.
    pub fn install_budget(&mut self, budget: Budget) {
        #[cfg(feature = "fault-inject")]
        {
            self.growths_seen = (self.table_growth_events(), self.cache.growth_events());
        }
        self.budget = Some(budget);
    }

    /// Removes and returns the installed budget (with its sticky breach, if
    /// any). Afterwards the manager is ungoverned again: the same query can
    /// be re-run to completion on the same, still-consistent manager.
    pub fn take_budget(&mut self) -> Option<Budget> {
        self.budget.take()
    }

    /// The installed budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// The amortized cooperative budget check: counts one governed step
    /// and, every [`Budget::CHECK_INTERVAL`] steps (or promptly once a
    /// ceiling is exceeded), performs the real deadline/node-count check.
    /// Free when no budget is installed; the kernel recursions call this
    /// once per cache miss.
    #[inline]
    pub fn checkpoint(&mut self) -> Result<(), Interrupt> {
        match self.budget.as_mut() {
            None => Ok(()),
            Some(b) => {
                if b.tick() {
                    self.checkpoint_slow()
                } else {
                    Ok(())
                }
            }
        }
    }

    #[cold]
    fn checkpoint_slow(&mut self) -> Result<(), Interrupt> {
        self.budget_check()
    }

    /// Forces a full budget check right now, skipping the amortization.
    /// Traversal drivers call this at every pass/cluster boundary so even
    /// a run too small to trip the amortized in-recursion check still
    /// observes a tiny deadline deterministically.
    pub fn force_checkpoint(&mut self) -> Result<(), Interrupt> {
        if self.budget.is_none() {
            return Ok(());
        }
        self.budget_check()
    }

    fn budget_check(&mut self) -> Result<(), Interrupt> {
        #[cfg(feature = "fault-inject")]
        {
            let table = self.table_growth_events();
            let cache = self.cache.growth_events();
            let (table_seen, cache_seen) = self.growths_seen;
            self.growths_seen = (table, cache);
            let b = self.budget.as_mut().expect("budget_check without budget");
            b.observe_fault_events(crate::budget::FaultSite::TableGrowth, table - table_seen)?;
            b.observe_fault_events(crate::budget::FaultSite::CacheGrowth, cache - cache_seen)?;
        }
        let live = self.live_node_count();
        self.budget
            .as_mut()
            .expect("budget_check without budget")
            .check(live)
    }

    /// Records one event at an out-of-kernel fault-injection site (replica
    /// import, worker spawn); fails when the installed budget's schedule
    /// trips on it. A manager without a budget observes nothing.
    #[cfg(feature = "fault-inject")]
    pub fn fault_event(&mut self, site: crate::budget::FaultSite) -> Result<(), Interrupt> {
        match self.budget.as_mut() {
            Some(b) => b.observe_fault_events(site, 1),
            None => Ok(()),
        }
    }

    #[cfg(feature = "fault-inject")]
    fn table_growth_events(&self) -> u64 {
        self.unique.iter().map(|t| t.growth_events()).sum()
    }

    /// Total computed-cache lookups (hits plus misses) issued so far.
    ///
    /// Unlike wall time, this is a deterministic operation count: two runs
    /// that issue the same operation sequence report identical values, so
    /// deltas of this counter can be used as a reproducible cost metric
    /// (e.g. for load balancing work across replica managers).
    pub fn cache_lookups(&self) -> u64 {
        let counters = self.cache.counters();
        counters.hits() + counters.misses()
    }

    /// Returns a snapshot of manager statistics.
    pub fn stats(&self) -> ManagerStats {
        let counters = self.cache.counters();
        let op = |op: Op| {
            let c = counters.per_op[op as usize];
            OpCacheStats {
                hits: c.hits,
                misses: c.misses,
            }
        };
        ManagerStats {
            live_nodes: self.live_node_count(),
            arena_size: self.nodes.len(),
            num_vars: self.num_vars(),
            gc_runs: self.gc_runs,
            gc_reclaimed: self.gc_reclaimed,
            peak_live_nodes: self.peak_live_nodes(),
            unique_entries: self.unique.iter().map(|t| t.len()).sum(),
            unique_capacity: self.unique.iter().map(|t| t.capacity()).sum(),
            cache_capacity: self.cache.capacity(),
            cache_hits: counters.hits(),
            cache_misses: counters.misses(),
            cache_overwrites: counters.overwrites,
            op_and: op(Op::And),
            // `or` and `not` are derived under complement edges: zero cache
            // traffic by construction (see the field docs).
            op_or: OpCacheStats::default(),
            op_not: OpCacheStats::default(),
            op_exists: op(Op::Exists),
            op_and_exists: op(Op::AndExists),
        }
    }

    /// Caps the computed cache at `2^max_log2` slots. The cache starts small
    /// and grows under insert pressure, but never beyond this bound, after
    /// which colliding inserts overwrite (the cache is lossy by design).
    pub fn set_cache_max_log2(&mut self, max_log2: u32) {
        self.cache.set_max_log2(max_log2);
    }

    /// Mark-and-sweep garbage collection.
    ///
    /// Every node not reachable from a [protected](BddManager::protect) root
    /// is reclaimed. Unique tables are rebuilt *in place* (their allocations
    /// are kept) and the computed cache is invalidated in O(1) by bumping its
    /// generation counter, so a collection costs one pass over the arena and
    /// nothing else. Unprotected `Ref`s held by the caller are invalidated.
    pub fn collect_garbage(&mut self) {
        // Mark phase (roots are node indices).
        let roots: Vec<u32> = self.protected.keys().copied().collect();
        for r in roots {
            self.mark(r);
        }
        self.nodes[TERMINAL as usize].marked = true;
        // Sweep phase: empty the tables without freeing their storage.
        let mut reclaimed = 0usize;
        for level_table in &mut self.unique {
            level_table.clear_in_place();
        }
        self.free_list.clear();
        for idx in 0..self.nodes.len() as u32 {
            let (marked, free) = {
                let n = &self.nodes[idx as usize];
                (n.marked, n.free)
            };
            if free {
                self.free_list.push(idx);
                continue;
            }
            if marked {
                let n = &mut self.nodes[idx as usize];
                n.marked = false;
                n.refcount = 0;
            } else if idx != TERMINAL {
                let n = &mut self.nodes[idx as usize];
                n.free = true;
                n.refcount = 0;
                self.free_list.push(idx);
                reclaimed += 1;
            }
        }
        // Re-insert survivors into the kept storage and rebuild refcounts.
        for idx in 1..self.nodes.len() as u32 {
            let n = self.nodes[idx as usize];
            if n.free {
                continue;
            }
            self.unique[n.level as usize].insert(n.low, n.high, idx);
            self.nodes[(n.low >> 1) as usize].refcount += 1;
            self.nodes[(n.high >> 1) as usize].refcount += 1;
        }
        self.cache.invalidate_all();
        self.gc_runs += 1;
        self.gc_reclaimed += reclaimed;
        debug_assert!(
            self.check_canonical().is_ok(),
            "canonical-form audit failed after GC: {:?}",
            self.check_canonical()
        );
    }

    fn mark(&mut self, root: u32) {
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let n = &mut self.nodes[idx as usize];
            if n.marked || n.free {
                continue;
            }
            n.marked = true;
            if n.level != TERMINAL_LEVEL {
                stack.push(n.low >> 1);
                stack.push(n.high >> 1);
            }
        }
    }

    #[inline]
    pub(crate) fn cache_get(&mut self, key: (Op, u32, u32, u32)) -> Option<u32> {
        self.cache.get(key.0 as u8, key.1, key.2, key.3)
    }

    #[inline]
    pub(crate) fn cache_put(&mut self, key: (Op, u32, u32, u32), value: u32) {
        self.cache.put(key.0 as u8, key.1, key.2, key.3, value);
    }

    /// Invalidates the computed cache (normally only needed by reordering).
    /// O(1): bumps the cache generation instead of touching the slots.
    pub fn clear_cache(&mut self) {
        self.cache.invalidate_all();
    }

    /// Audits the whole arena against the canonical form of the
    /// complement-edge representation. Checks, for every live node:
    ///
    /// * the then-edge is regular (never complemented),
    /// * the node is not redundant (`low != high`),
    /// * both children sit strictly below it in the variable order,
    /// * neither child is a freed slot,
    /// * no two live nodes share `(level, low, high)`,
    /// * the node is registered in its level's unique table under exactly
    ///   its own index.
    ///
    /// Intended for tests and the CI fault-injection job; cost is linear in
    /// the arena size. Debug-asserted after every garbage collection and
    /// every sift.
    pub fn check_canonical(&self) -> Result<(), String> {
        let mut seen: HashMap<(u32, u32, u32), u32> = HashMap::new();
        for idx in 1..self.nodes.len() as u32 {
            let n = &self.nodes[idx as usize];
            if n.free {
                continue;
            }
            if n.level == TERMINAL_LEVEL {
                return Err(format!("internal node {idx} has the terminal level"));
            }
            if n.high & 1 == 1 {
                return Err(format!("node {idx} has a complemented then-edge"));
            }
            if n.low == n.high {
                return Err(format!("node {idx} is redundant (low == high)"));
            }
            if self.level(n.low) <= n.level || self.level(n.high) <= n.level {
                return Err(format!("node {idx} violates the variable order"));
            }
            if self.nodes[(n.low >> 1) as usize].free || self.nodes[(n.high >> 1) as usize].free {
                return Err(format!("node {idx} points at a freed node"));
            }
            if let Some(&other) = seen.get(&(n.level, n.low, n.high)) {
                return Err(format!("nodes {other} and {idx} are duplicates"));
            }
            seen.insert((n.level, n.low, n.high), idx);
            match self.unique[n.level as usize].get(n.low, n.high) {
                Some(u) if u == idx => {}
                _ => return Err(format!("node {idx} missing from its unique table")),
            }
        }
        Ok(())
    }

    /// Checks internal invariants; an alias of
    /// [`BddManager::check_canonical`] kept for the pre-complement-edge
    /// test suites.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_distinct() {
        let m = BddManager::new();
        assert_ne!(m.zero(), m.one());
        assert!(m.is_constant(m.zero()));
        assert!(m.is_constant(m.one()));
        // One shared terminal node: FALSE is the complemented edge to it.
        assert_eq!(m.zero().0 >> 1, m.one().0 >> 1);
        assert!(m.zero().is_complemented());
        assert!(!m.one().is_complemented());
    }

    #[test]
    fn var_nodes_are_canonical() {
        let mut m = BddManager::with_vars(3);
        let v1 = m.var_id(1);
        let a = m.var(v1);
        let b = m.var(v1);
        assert_eq!(a, b);
        assert_eq!(m.root_var(a), Some(v1));
        assert_eq!(m.low(a), m.zero());
        assert_eq!(m.high(a), m.one());
    }

    #[test]
    fn literals_share_one_node() {
        let mut m = BddManager::with_vars(1);
        let v = m.var_id(0);
        let before = m.live_node_count();
        let pos = m.var(v);
        let neg = m.nvar(v);
        // Positive and negative literals differ only in the complement bit.
        assert_eq!(pos.0 ^ 1, neg.0);
        assert_eq!(m.live_node_count(), before + 1);
        assert_eq!(m.low(neg), m.one());
        assert_eq!(m.high(neg), m.zero());
    }

    #[test]
    fn mk_applies_reduction_rule() {
        let mut m = BddManager::with_vars(1);
        let e = m.mk(0, ONE, ONE);
        assert_eq!(e, ONE);
    }

    #[test]
    fn mk_keeps_then_edges_regular() {
        let mut m = BddManager::with_vars(2);
        // Ask for a node whose then-edge is complemented: mk must flip both
        // children and hand back a complemented edge to a canonical node.
        let e = m.mk(0, ONE, ZERO);
        assert_eq!(e & 1, 1, "edge must carry the complement attribute");
        let n = m.node(e);
        assert_eq!(n.high & 1, 0, "stored then-edge must be regular");
        assert!(m.check_canonical().is_ok());
    }

    #[test]
    fn gc_reclaims_unprotected_nodes() {
        let mut m = BddManager::with_vars(4);
        let vars: Vec<_> = m.variables();
        let mut f = m.one();
        for &v in &vars {
            let lit = m.var(v);
            f = m.and(f, lit);
        }
        let before = m.live_node_count();
        assert!(before > 1);
        m.protect(f);
        m.collect_garbage();
        assert!(m.live_node_count() <= before);
        // f still evaluates correctly after GC.
        assert!(m.eval(f, |_| true));
        assert!(!m.eval(f, |v| v.0 != 0));
        m.unprotect(f);
        m.collect_garbage();
        // Only the terminal remains.
        assert_eq!(m.live_node_count(), 1);
        assert!(m.check_canonical().is_ok());
    }

    #[test]
    fn protecting_a_complemented_edge_protects_the_node() {
        let mut m = BddManager::with_vars(2);
        let a = m.var(m.var_id(0));
        let b = m.var(m.var_id(1));
        let f = m.and(a, b);
        let nf = m.not(f);
        m.protect(nf);
        m.collect_garbage();
        // The shared subgraph survived: both polarities still evaluate.
        assert!(m.eval(f, |_| true));
        assert!(!m.eval(nf, |_| true));
        m.unprotect(f); // node-keyed: unprotecting via the other polarity works
        m.collect_garbage();
        assert_eq!(m.live_node_count(), 1);
    }

    #[test]
    fn stats_reports_progress() {
        let mut m = BddManager::with_vars(2);
        let x = m.var_id(0);
        let y = m.var_id(1);
        let a = m.var(x);
        let b = m.var(y);
        let f = m.or(a, b);
        m.protect(f);
        m.collect_garbage();
        let s = m.stats();
        assert_eq!(s.num_vars, 2);
        assert!(s.live_nodes >= 3);
        assert_eq!(s.gc_runs, 1);
        // Negation and disjunction report no cache traffic of their own.
        assert_eq!(s.op_not.lookups(), 0);
        assert_eq!(s.op_or.lookups(), 0);
    }

    #[test]
    fn protection_is_counted() {
        let mut m = BddManager::with_vars(2);
        let x = m.var_id(0);
        let f = m.var(x);
        m.protect(f);
        m.protect(f);
        m.unprotect(f);
        m.collect_garbage();
        assert_eq!(m.root_var(f), Some(x));
        m.unprotect(f);
        m.collect_garbage();
        assert_eq!(m.live_node_count(), 1);
    }
}
