//! Subgraph transfer between managers: a compact, manager-independent
//! serialization of a set of BDD roots, used by the parallel traversal to
//! ship source sets and partial images between the owning manager and its
//! worker-thread replicas.
//!
//! A [`SerializedBdd`] is a bottom-up node-arena slice: children always
//! precede parents, references are packed *edges* over slice-local serial
//! numbers — `edge = serial << 1 | complement`, with serial `0` reserved
//! for the terminal — so the complement attribute survives the round-trip
//! on roots and internal edges alike, and the two constant edges (`TRUE` =
//! `0`, `FALSE` = `1`) are identical in every manager. The variable order
//! of the source manager is recorded so the importer can verify both
//! managers agree on it. Import rebuilds the nodes through the ordinary
//! reduction rules, so an imported root is canonical in the destination
//! manager (regular then-edges included) and shares structure with
//! everything already there.

use crate::manager::{BddManager, Node, Ref, VarId, TERMINAL};
use std::collections::HashMap;

/// A manager-independent serialization of one or more BDD roots.
///
/// Produced by [`BddManager::export_subgraph`] and consumed by
/// [`BddManager::import_subgraph`]. The encoding is a bottom-up slice of
/// `(level, low, high)` triples whose references are packed edges
/// `serial << 1 | complement`: serial `0` is the terminal node (so edge
/// `0` is `TRUE` and edge `1` is `FALSE`) and serial `i + 1` is the `i`-th
/// triple of the slice. Then-edges are regular in the slice exactly as in
/// the arena. The type is `Send + Sync`, so serialized sets can cross
/// thread boundaries (e.g. via `Arc`) without touching either manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializedBdd {
    /// The source manager's variable order, top level first
    /// (`order[level] = variable id`).
    order: Vec<u32>,
    /// The nodes as `(level, low, high)` with packed-edge children,
    /// children before parents.
    nodes: Vec<(u32, u32, u32)>,
    /// The exported roots as packed edges, in the order given to
    /// `export_subgraph`.
    roots: Vec<u32>,
}

impl SerializedBdd {
    /// Number of variables of the source manager.
    pub fn num_vars(&self) -> usize {
        self.order.len()
    }

    /// The source manager's variable order, top level first.
    pub fn order(&self) -> Vec<VarId> {
        self.order.iter().map(|&v| VarId(v)).collect()
    }

    /// Number of serialized internal nodes (the terminal excluded).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of serialized roots.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }
}

/// Maps a serialized edge to a destination-manager edge, re-applying the
/// serialized complement bit on top of the (always regular) local entry.
#[inline]
fn resolve(e: u32, local: &[u32]) -> u32 {
    let serial = e >> 1;
    if serial == 0 {
        e // constant edges are manager-independent
    } else {
        local[(serial - 1) as usize] ^ (e & 1)
    }
}

impl BddManager {
    /// Serializes the subgraphs rooted at `roots` into a compact,
    /// manager-independent [`SerializedBdd`].
    ///
    /// Shared structure is serialized once: a node reachable from several
    /// roots appears a single time in the slice — and since `f` and `¬f`
    /// are one subgraph under complement edges, exporting both costs one
    /// copy plus a root edge each.
    pub fn export_subgraph(&self, roots: &[Ref]) -> SerializedBdd {
        // `map`: arena node index -> slice serial (1-based; 0 = terminal).
        let mut map: HashMap<u32, u32> = HashMap::new();
        let mut nodes: Vec<(u32, u32, u32)> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        let ser_edge = |e: u32, map: &HashMap<u32, u32>| -> u32 {
            if e >> 1 == TERMINAL {
                e
            } else {
                (map[&(e >> 1)] << 1) | (e & 1)
            }
        };
        for &root in roots {
            let root_idx = root.0 >> 1;
            if root_idx == TERMINAL || map.contains_key(&root_idx) {
                continue;
            }
            stack.push(root_idx);
            // Iterative postorder: a node is emitted only once both
            // children are, so the slice is bottom-up by construction.
            while let Some(&top) = stack.last() {
                if map.contains_key(&top) {
                    stack.pop();
                    continue;
                }
                let n: Node = self.nodes[top as usize];
                debug_assert!(!n.free, "exporting a freed node");
                let low_ready = n.low >> 1 == TERMINAL || map.contains_key(&(n.low >> 1));
                let high_ready = n.high >> 1 == TERMINAL || map.contains_key(&(n.high >> 1));
                if low_ready && high_ready {
                    stack.pop();
                    let low = ser_edge(n.low, &map);
                    let high = ser_edge(n.high, &map);
                    let serial = nodes.len() as u32 + 1;
                    nodes.push((n.level, low, high));
                    map.insert(top, serial);
                } else {
                    if !low_ready {
                        stack.push(n.low >> 1);
                    }
                    if !high_ready {
                        stack.push(n.high >> 1);
                    }
                }
            }
        }
        let roots = roots.iter().map(|&r| ser_edge(r.0, &map)).collect();
        SerializedBdd {
            order: self.var_at_level.clone(),
            nodes,
            roots,
        }
    }

    /// Rebuilds a serialized subgraph in this manager and returns the
    /// imported roots, in the order they were exported.
    ///
    /// The imported nodes go through the ordinary reduction rules — which
    /// re-establish the regular-then-edge canonical form — so the returned
    /// roots are canonical here and share structure with the manager's
    /// existing nodes. The imported roots are **not** protected; protect
    /// them before the next garbage collection if they must survive.
    ///
    /// # Panics
    ///
    /// Panics if this manager's variable order differs from the order the
    /// subgraph was exported under (serialization records *levels*, which
    /// are only meaningful under the same order).
    pub fn import_subgraph(&mut self, serialized: &SerializedBdd) -> Vec<Ref> {
        assert_eq!(
            self.var_at_level, serialized.order,
            "import requires the exporting manager's variable order"
        );
        let mut local: Vec<u32> = Vec::with_capacity(serialized.nodes.len());
        for &(level, low, high) in &serialized.nodes {
            let low = resolve(low, &local);
            let high = resolve(high, &local);
            // Serialized then-edges are regular and `local` entries are
            // regular by induction, so `mk` hands back a regular edge here.
            let e = self.mk(level, low, high);
            debug_assert_eq!(e & 1, 0, "import of a canonical slice stays regular");
            local.push(e);
        }
        serialized
            .roots
            .iter()
            .map(|&r| Ref(resolve(r, &local)))
            .collect()
    }
}

/// Builds an empty replica manager matching the serialized variable order,
/// ready to [`import_subgraph`](BddManager::import_subgraph) from the same
/// source. Used to set up the per-thread shard managers of the parallel
/// traversal.
pub fn replica_manager(serialized: &SerializedBdd) -> BddManager {
    let mut m = BddManager::with_vars(serialized.num_vars());
    m.reorder_to(&serialized.order());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(m: &mut BddManager) -> Ref {
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[2]);
        let c = m.nvar(v[4]);
        let ab = m.and(a, b);
        m.or(ab, c)
    }

    #[test]
    fn round_trip_preserves_the_function() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let ser = src.export_subgraph(&[f]);
        assert!(ser.num_nodes() > 0);
        let mut dst = replica_manager(&ser);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots.len(), 1);
        for bits in 0u32..64 {
            let assign = |v: VarId| bits & (1 << v.index()) != 0;
            assert_eq!(src.eval(f, assign), dst.eval(roots[0], assign));
        }
        assert!(dst.check_invariants().is_ok());
    }

    #[test]
    fn complemented_roots_round_trip() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let nf = src.not(f);
        // Export both polarities: one subgraph, two root edges.
        let ser = src.export_subgraph(&[nf, f]);
        let mut dst = replica_manager(&ser);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots[0], dst.not(roots[1]));
        for bits in 0u32..64 {
            let assign = |v: VarId| bits & (1 << v.index()) != 0;
            assert_eq!(src.eval(nf, assign), dst.eval(roots[0], assign));
        }
        assert!(dst.check_canonical().is_ok());
    }

    #[test]
    fn shared_structure_is_serialized_once() {
        let mut src = BddManager::with_vars(4);
        let f = sample_pair(&mut src);
        let together = src.export_subgraph(&[f.0, f.1]);
        let alone: usize = [f.0, f.1]
            .iter()
            .map(|&r| src.export_subgraph(&[r]).num_nodes())
            .sum();
        assert!(together.num_nodes() <= alone);
        // And the combined size equals the true shared node count
        // (one extra for the terminal the slice leaves implicit).
        assert_eq!(
            together.num_nodes() + 1,
            src.shared_node_count(&[f.0, f.1]),
            "export must deduplicate shared subgraphs"
        );
    }

    fn sample_pair(m: &mut BddManager) -> (Ref, Ref) {
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let shared = m.and(b, c);
        let f = m.or(a, shared);
        let g = m.and(a, shared);
        (f, g)
    }

    #[test]
    fn constants_round_trip_without_nodes() {
        let src = BddManager::with_vars(3);
        let ser = src.export_subgraph(&[src.zero(), src.one()]);
        assert_eq!(ser.num_nodes(), 0);
        let mut dst = replica_manager(&ser);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots, vec![dst.zero(), dst.one()]);
    }

    #[test]
    fn import_into_populated_manager_shares_structure() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let ser = src.export_subgraph(&[f]);
        // The destination already holds the same function: import must
        // yield the *same* canonical handle, not a copy.
        let mut dst = replica_manager(&ser);
        let existing = sample(&mut dst);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots[0], existing);
    }

    #[test]
    fn import_survives_export_after_reordering() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        src.protect(f);
        let v = src.variables();
        src.reorder_to(&[v[5], v[3], v[1], v[0], v[2], v[4]]);
        let ser = src.export_subgraph(&[f]);
        let mut dst = replica_manager(&ser);
        assert_eq!(dst.current_order(), src.current_order());
        let roots = dst.import_subgraph(&ser);
        for bits in 0u32..64 {
            let assign = |v: VarId| bits & (1 << v.index()) != 0;
            assert_eq!(src.eval(f, assign), dst.eval(roots[0], assign));
        }
    }

    #[test]
    #[should_panic(expected = "variable order")]
    fn import_rejects_mismatched_orders() {
        let mut src = BddManager::with_vars(4);
        let f = sample4(&mut src);
        let ser = src.export_subgraph(&[f]);
        let mut dst = BddManager::with_vars(4);
        let v = dst.variables();
        dst.reorder_to(&[v[3], v[2], v[1], v[0]]);
        let _ = dst.import_subgraph(&ser);
    }

    fn sample4(m: &mut BddManager) -> Ref {
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[3]);
        m.and(a, b)
    }
}
