//! Subgraph transfer between managers: a compact, manager-independent
//! serialization of a set of BDD roots, used by the parallel traversal to
//! ship source sets and partial images between the owning manager and its
//! worker-thread replicas.
//!
//! A [`SerializedBdd`] is a bottom-up node-arena slice: children always
//! precede parents, references are packed *edges* over slice-local serial
//! numbers — `edge = serial << 1 | complement`, with serial `0` reserved
//! for the terminal — so the complement attribute survives the round-trip
//! on roots and internal edges alike, and the two constant edges (`TRUE` =
//! `0`, `FALSE` = `1`) are identical in every manager. The variable order
//! of the source manager is recorded so the importer can verify both
//! managers agree on it. Import rebuilds the nodes through the ordinary
//! reduction rules, so an imported root is canonical in the destination
//! manager (regular then-edges included) and shares structure with
//! everything already there.

use crate::manager::{BddManager, Node, Ref, VarId, TERMINAL};
use std::collections::HashMap;
use std::fmt;

/// Why a snapshot byte stream was rejected by
/// [`SerializedBdd::from_bytes`]. Every hostile input maps to one of these
/// variants — decoding never panics and never allocates proportionally to
/// unvalidated length fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The stream ended before the announced content.
    Truncated,
    /// The leading magic bytes are not a pnsym BDD snapshot.
    BadMagic,
    /// The format version is newer (or older) than this build understands.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the stream contents.
    ChecksumMismatch,
    /// The stream decodes structurally but violates an invariant of the
    /// postorder slice (bad level, forward edge reference, complemented
    /// then-edge, duplicate order entry).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a pnsym BDD snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Leading magic of the byte encoding ([`SerializedBdd::to_bytes`]).
const SNAPSHOT_MAGIC: &[u8; 8] = b"PNSYBDD\0";
/// Current format version written by [`SerializedBdd::to_bytes`].
const SNAPSHOT_VERSION: u32 = 1;

/// The splitmix64 finaliser, chained over the stream's 8-byte words to
/// form the trailing checksum.
fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(value);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Checksum of a byte stream: the splitmix64 finaliser chained over the
/// length and every (zero-padded) 8-byte word. This is the integrity
/// check of the [`SerializedBdd`] byte format, exposed so higher layers
/// (e.g. a daemon's snapshot store) can frame their envelopes with the
/// same primitive.
pub fn snapshot_checksum(bytes: &[u8]) -> u64 {
    checksum(bytes)
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut state = mix(0x736e_6170, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= (b as u64) << (8 * i);
        }
        state = mix(state, word);
    }
    state
}

/// A bounds-checked little-endian reader over a snapshot byte stream.
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

/// A manager-independent serialization of one or more BDD roots.
///
/// Produced by [`BddManager::export_subgraph`] and consumed by
/// [`BddManager::import_subgraph`]. The encoding is a bottom-up slice of
/// `(level, low, high)` triples whose references are packed edges
/// `serial << 1 | complement`: serial `0` is the terminal node (so edge
/// `0` is `TRUE` and edge `1` is `FALSE`) and serial `i + 1` is the `i`-th
/// triple of the slice. Then-edges are regular in the slice exactly as in
/// the arena. The type is `Send + Sync`, so serialized sets can cross
/// thread boundaries (e.g. via `Arc`) without touching either manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializedBdd {
    /// The source manager's variable order, top level first
    /// (`order[level] = variable id`).
    order: Vec<u32>,
    /// The nodes as `(level, low, high)` with packed-edge children,
    /// children before parents.
    nodes: Vec<(u32, u32, u32)>,
    /// The exported roots as packed edges, in the order given to
    /// `export_subgraph`.
    roots: Vec<u32>,
}

impl SerializedBdd {
    /// Number of variables of the source manager.
    pub fn num_vars(&self) -> usize {
        self.order.len()
    }

    /// The source manager's variable order, top level first.
    pub fn order(&self) -> Vec<VarId> {
        self.order.iter().map(|&v| VarId(v)).collect()
    }

    /// Number of serialized internal nodes (the terminal excluded).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of serialized roots.
    pub fn num_roots(&self) -> usize {
        self.roots.len()
    }

    /// Encodes the serialized set as a versioned, checksummed byte stream
    /// suitable for durable storage: magic, format version, the caller's
    /// `tag` (typically a canonical net hash the restorer verifies), the
    /// variable order, the complement-edge-aware postorder node slice, the
    /// roots, and a trailing splitmix64 checksum over everything before it.
    /// All integers are little-endian.
    pub fn to_bytes(&self, tag: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            SNAPSHOT_MAGIC.len()
                + 24
                + 4 * self.order.len()
                + 12 * self.nodes.len()
                + 4 * self.roots.len()
                + 8,
        );
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        for &v in &self.order {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for &(level, low, high) in &self.nodes {
            out.extend_from_slice(&level.to_le_bytes());
            out.extend_from_slice(&low.to_le_bytes());
            out.extend_from_slice(&high.to_le_bytes());
        }
        out.extend_from_slice(&(self.roots.len() as u32).to_le_bytes());
        for &r in &self.roots {
            out.extend_from_slice(&r.to_le_bytes());
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a byte stream written by [`SerializedBdd::to_bytes`],
    /// returning the caller's tag and the serialized set.
    ///
    /// The trailing checksum is verified *first*, so a torn, truncated or
    /// bit-flipped stream is rejected before any length field is trusted;
    /// the postorder invariants (levels strictly increase towards the
    /// leaves, edges only reference earlier serials, then-edges regular)
    /// are re-validated afterwards, so a decoded value is always safe to
    /// hand to [`BddManager::import_subgraph`]. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<(u64, SerializedBdd), SnapshotError> {
        // Checksum before anything else: every length field below is
        // trusted only once the stream proves internally consistent.
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
            return Err(SnapshotError::Truncated);
        }
        if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(sum_bytes.try_into().expect("split of 8"));
        if checksum(body) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut r = ByteReader {
            bytes: body,
            pos: SNAPSHOT_MAGIC.len(),
        };
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let tag = r.u64()?;

        let num_vars = r.u32()? as usize;
        if num_vars > r.remaining() / 4 {
            return Err(SnapshotError::Truncated);
        }
        let mut order = Vec::with_capacity(num_vars);
        let mut seen = vec![false; num_vars];
        for _ in 0..num_vars {
            let v = r.u32()?;
            match seen.get_mut(v as usize) {
                Some(slot) if !*slot => *slot = true,
                Some(_) => return Err(SnapshotError::Malformed("duplicate variable in order")),
                None => return Err(SnapshotError::Malformed("variable id out of range")),
            }
            order.push(v);
        }

        let num_nodes = r.u32()? as usize;
        if num_nodes > r.remaining() / 12 {
            return Err(SnapshotError::Truncated);
        }
        let mut nodes = Vec::with_capacity(num_nodes);
        for i in 0..num_nodes {
            let level = r.u32()?;
            let low = r.u32()?;
            let high = r.u32()?;
            if level as usize >= num_vars {
                return Err(SnapshotError::Malformed("node level out of range"));
            }
            if high & 1 != 0 {
                return Err(SnapshotError::Malformed("complemented then-edge"));
            }
            // An edge may reference the terminal (serial 0) or any earlier
            // node of the slice — children strictly precede parents, and
            // sit strictly deeper in the order.
            for e in [low, high] {
                let serial = (e >> 1) as usize;
                if serial > i {
                    return Err(SnapshotError::Malformed("edge references a later node"));
                }
                if serial != 0 {
                    let (child_level, _, _): (u32, u32, u32) = nodes[serial - 1];
                    if child_level <= level {
                        return Err(SnapshotError::Malformed("child level not below parent"));
                    }
                }
            }
            nodes.push((level, low, high));
        }

        let num_roots = r.u32()? as usize;
        if num_roots > r.remaining() / 4 {
            return Err(SnapshotError::Truncated);
        }
        let mut roots = Vec::with_capacity(num_roots);
        for _ in 0..num_roots {
            let e = r.u32()?;
            if ((e >> 1) as usize) > num_nodes {
                return Err(SnapshotError::Malformed("root references a missing node"));
            }
            roots.push(e);
        }
        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes after the roots"));
        }

        Ok((
            tag,
            SerializedBdd {
                order,
                nodes,
                roots,
            },
        ))
    }
}

/// Maps a serialized edge to a destination-manager edge, re-applying the
/// serialized complement bit on top of the (always regular) local entry.
#[inline]
fn resolve(e: u32, local: &[u32]) -> u32 {
    let serial = e >> 1;
    if serial == 0 {
        e // constant edges are manager-independent
    } else {
        local[(serial - 1) as usize] ^ (e & 1)
    }
}

impl BddManager {
    /// Serializes the subgraphs rooted at `roots` into a compact,
    /// manager-independent [`SerializedBdd`].
    ///
    /// Shared structure is serialized once: a node reachable from several
    /// roots appears a single time in the slice — and since `f` and `¬f`
    /// are one subgraph under complement edges, exporting both costs one
    /// copy plus a root edge each.
    pub fn export_subgraph(&self, roots: &[Ref]) -> SerializedBdd {
        // `map`: arena node index -> slice serial (1-based; 0 = terminal).
        let mut map: HashMap<u32, u32> = HashMap::new();
        let mut nodes: Vec<(u32, u32, u32)> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        let ser_edge = |e: u32, map: &HashMap<u32, u32>| -> u32 {
            if e >> 1 == TERMINAL {
                e
            } else {
                (map[&(e >> 1)] << 1) | (e & 1)
            }
        };
        for &root in roots {
            let root_idx = root.0 >> 1;
            if root_idx == TERMINAL || map.contains_key(&root_idx) {
                continue;
            }
            stack.push(root_idx);
            // Iterative postorder: a node is emitted only once both
            // children are, so the slice is bottom-up by construction.
            while let Some(&top) = stack.last() {
                if map.contains_key(&top) {
                    stack.pop();
                    continue;
                }
                let n: Node = self.nodes[top as usize];
                debug_assert!(!n.free, "exporting a freed node");
                let low_ready = n.low >> 1 == TERMINAL || map.contains_key(&(n.low >> 1));
                let high_ready = n.high >> 1 == TERMINAL || map.contains_key(&(n.high >> 1));
                if low_ready && high_ready {
                    stack.pop();
                    let low = ser_edge(n.low, &map);
                    let high = ser_edge(n.high, &map);
                    let serial = nodes.len() as u32 + 1;
                    nodes.push((n.level, low, high));
                    map.insert(top, serial);
                } else {
                    if !low_ready {
                        stack.push(n.low >> 1);
                    }
                    if !high_ready {
                        stack.push(n.high >> 1);
                    }
                }
            }
        }
        let roots = roots.iter().map(|&r| ser_edge(r.0, &map)).collect();
        SerializedBdd {
            order: self.var_at_level.clone(),
            nodes,
            roots,
        }
    }

    /// Rebuilds a serialized subgraph in this manager and returns the
    /// imported roots, in the order they were exported.
    ///
    /// The imported nodes go through the ordinary reduction rules — which
    /// re-establish the regular-then-edge canonical form — so the returned
    /// roots are canonical here and share structure with the manager's
    /// existing nodes. The imported roots are **not** protected; protect
    /// them before the next garbage collection if they must survive.
    ///
    /// # Panics
    ///
    /// Panics if this manager's variable order differs from the order the
    /// subgraph was exported under (serialization records *levels*, which
    /// are only meaningful under the same order).
    pub fn import_subgraph(&mut self, serialized: &SerializedBdd) -> Vec<Ref> {
        assert_eq!(
            self.var_at_level, serialized.order,
            "import requires the exporting manager's variable order"
        );
        let mut local: Vec<u32> = Vec::with_capacity(serialized.nodes.len());
        for &(level, low, high) in &serialized.nodes {
            let low = resolve(low, &local);
            let high = resolve(high, &local);
            // Serialized then-edges are regular and `local` entries are
            // regular by induction, so `mk` hands back a regular edge here.
            let e = self.mk(level, low, high);
            debug_assert_eq!(e & 1, 0, "import of a canonical slice stays regular");
            local.push(e);
        }
        serialized
            .roots
            .iter()
            .map(|&r| Ref(resolve(r, &local)))
            .collect()
    }
}

/// Builds an empty replica manager matching the serialized variable order,
/// ready to [`import_subgraph`](BddManager::import_subgraph) from the same
/// source. Used to set up the per-thread shard managers of the parallel
/// traversal.
pub fn replica_manager(serialized: &SerializedBdd) -> BddManager {
    let mut m = BddManager::with_vars(serialized.num_vars());
    m.reorder_to(&serialized.order());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(m: &mut BddManager) -> Ref {
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[2]);
        let c = m.nvar(v[4]);
        let ab = m.and(a, b);
        m.or(ab, c)
    }

    #[test]
    fn round_trip_preserves_the_function() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let ser = src.export_subgraph(&[f]);
        assert!(ser.num_nodes() > 0);
        let mut dst = replica_manager(&ser);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots.len(), 1);
        for bits in 0u32..64 {
            let assign = |v: VarId| bits & (1 << v.index()) != 0;
            assert_eq!(src.eval(f, assign), dst.eval(roots[0], assign));
        }
        assert!(dst.check_invariants().is_ok());
    }

    #[test]
    fn complemented_roots_round_trip() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let nf = src.not(f);
        // Export both polarities: one subgraph, two root edges.
        let ser = src.export_subgraph(&[nf, f]);
        let mut dst = replica_manager(&ser);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots[0], dst.not(roots[1]));
        for bits in 0u32..64 {
            let assign = |v: VarId| bits & (1 << v.index()) != 0;
            assert_eq!(src.eval(nf, assign), dst.eval(roots[0], assign));
        }
        assert!(dst.check_canonical().is_ok());
    }

    #[test]
    fn shared_structure_is_serialized_once() {
        let mut src = BddManager::with_vars(4);
        let f = sample_pair(&mut src);
        let together = src.export_subgraph(&[f.0, f.1]);
        let alone: usize = [f.0, f.1]
            .iter()
            .map(|&r| src.export_subgraph(&[r]).num_nodes())
            .sum();
        assert!(together.num_nodes() <= alone);
        // And the combined size equals the true shared node count
        // (one extra for the terminal the slice leaves implicit).
        assert_eq!(
            together.num_nodes() + 1,
            src.shared_node_count(&[f.0, f.1]),
            "export must deduplicate shared subgraphs"
        );
    }

    fn sample_pair(m: &mut BddManager) -> (Ref, Ref) {
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[1]);
        let c = m.var(v[2]);
        let shared = m.and(b, c);
        let f = m.or(a, shared);
        let g = m.and(a, shared);
        (f, g)
    }

    #[test]
    fn constants_round_trip_without_nodes() {
        let src = BddManager::with_vars(3);
        let ser = src.export_subgraph(&[src.zero(), src.one()]);
        assert_eq!(ser.num_nodes(), 0);
        let mut dst = replica_manager(&ser);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots, vec![dst.zero(), dst.one()]);
    }

    #[test]
    fn import_into_populated_manager_shares_structure() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let ser = src.export_subgraph(&[f]);
        // The destination already holds the same function: import must
        // yield the *same* canonical handle, not a copy.
        let mut dst = replica_manager(&ser);
        let existing = sample(&mut dst);
        let roots = dst.import_subgraph(&ser);
        assert_eq!(roots[0], existing);
    }

    #[test]
    fn import_survives_export_after_reordering() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        src.protect(f);
        let v = src.variables();
        src.reorder_to(&[v[5], v[3], v[1], v[0], v[2], v[4]]);
        let ser = src.export_subgraph(&[f]);
        let mut dst = replica_manager(&ser);
        assert_eq!(dst.current_order(), src.current_order());
        let roots = dst.import_subgraph(&ser);
        for bits in 0u32..64 {
            let assign = |v: VarId| bits & (1 << v.index()) != 0;
            assert_eq!(src.eval(f, assign), dst.eval(roots[0], assign));
        }
    }

    #[test]
    #[should_panic(expected = "variable order")]
    fn import_rejects_mismatched_orders() {
        let mut src = BddManager::with_vars(4);
        let f = sample4(&mut src);
        let ser = src.export_subgraph(&[f]);
        let mut dst = BddManager::with_vars(4);
        let v = dst.variables();
        dst.reorder_to(&[v[3], v[2], v[1], v[0]]);
        let _ = dst.import_subgraph(&ser);
    }

    fn sample4(m: &mut BddManager) -> Ref {
        let v = m.variables();
        let a = m.var(v[0]);
        let b = m.var(v[3]);
        m.and(a, b)
    }

    #[test]
    fn byte_encoding_round_trips_bit_identically() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let nf = src.not(f);
        let ser = src.export_subgraph(&[f, nf]);
        let bytes = ser.to_bytes(0xfeed_beef_cafe_f00d);
        let (tag, back) = SerializedBdd::from_bytes(&bytes).expect("clean decode");
        assert_eq!(tag, 0xfeed_beef_cafe_f00d);
        assert_eq!(back, ser, "decode restores the exact serialized value");
        // Re-encoding the decoded value reproduces the bytes exactly.
        assert_eq!(back.to_bytes(tag), bytes);
        // And the decoded value imports like the original.
        let mut dst = replica_manager(&back);
        let roots = dst.import_subgraph(&back);
        assert_eq!(roots[1], dst.not(roots[0]));
    }

    #[test]
    fn empty_and_constant_snapshots_round_trip() {
        let src = BddManager::with_vars(3);
        let ser = src.export_subgraph(&[src.one(), src.zero()]);
        let bytes = ser.to_bytes(7);
        let (tag, back) = SerializedBdd::from_bytes(&bytes).expect("decode");
        assert_eq!(tag, 7);
        assert_eq!(back, ser);
    }

    #[test]
    fn truncated_streams_are_rejected_at_every_length() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let bytes = src.export_subgraph(&[f]).to_bytes(1);
        for len in 0..bytes.len() {
            let err = SerializedBdd::from_bytes(&bytes[..len])
                .expect_err("every proper prefix must be rejected");
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated | SnapshotError::ChecksumMismatch
                ),
                "prefix of {len}: {err}"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected_never_panic() {
        let mut src = BddManager::with_vars(6);
        let f = sample(&mut src);
        let bytes = src.export_subgraph(&[f]).to_bytes(99);
        for i in 0..bytes.len() {
            for bit in [0u8, 3, 7] {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    SerializedBdd::from_bytes(&corrupt).is_err(),
                    "flipping byte {i} bit {bit} must be detected"
                );
            }
        }
    }

    #[test]
    fn version_and_magic_are_enforced() {
        let src = BddManager::with_vars(2);
        let ser = src.export_subgraph(&[src.one()]);
        let good = ser.to_bytes(0);

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            SerializedBdd::from_bytes(&wrong_magic),
            Err(SnapshotError::BadMagic)
        );

        // A future version with a correctly recomputed checksum is still
        // refused as unsupported, not misparsed.
        let mut future = good.clone();
        future[8..12].copy_from_slice(&2u32.to_le_bytes());
        let body_len = future.len() - 8;
        let sum = super::checksum(&future[..body_len]);
        future[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            SerializedBdd::from_bytes(&future),
            Err(SnapshotError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn structural_invariants_are_revalidated_after_the_checksum() {
        // Hand-build a stream whose checksum is valid but whose node slice
        // references a later node: decode must reject it as malformed.
        let bogus = SerializedBdd {
            order: vec![0, 1],
            nodes: vec![(0, 4, 2)], // low edge -> serial 2: nonexistent
            roots: vec![2],
        };
        let bytes = bogus.to_bytes(0);
        assert!(matches!(
            SerializedBdd::from_bytes(&bytes),
            Err(SnapshotError::Malformed(_))
        ));
    }
}
