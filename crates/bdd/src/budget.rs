//! Cooperative resource governance for the decision-diagram kernels.
//!
//! A [`Budget`] bundles the limits one query is allowed to consume — a
//! wall-clock deadline, a live-node ceiling, a step (governed recursion)
//! ceiling and, under the `fault-inject` feature, a deterministic schedule
//! of injected failures. The budget is installed on a manager
//! ([`BddManager::install_budget`](crate::BddManager::install_budget)) and
//! checked *cooperatively*: the hot `apply`/`and_exists`/ZDD recursions call
//! the manager's checkpoint once per cache miss, which ticks a counter and
//! only performs the real (clock-reading, node-counting) check every
//! [`Budget::CHECK_INTERVAL`] ticks, so the fast path stays free. Traversal
//! drivers force a full check at every cluster/pass boundary, which makes
//! tiny-deadline runs truncate deterministically even on nets too small for
//! the amortized in-recursion check to fire.
//!
//! On breach the kernel unwinds with a typed [`Interrupt`] carrying a
//! [`TruncationReason`]. The breach is *sticky*: once a budget has tripped,
//! every subsequent check fails with the same reason until the budget is
//! removed ([`BddManager::take_budget`](crate::BddManager::take_budget)),
//! so a partially unwound caller cannot accidentally resume half-done work
//! under an exhausted budget. Interrupted operations leave the manager
//! fully consistent — every node interned on the way down is canonical and
//! every completed cache entry is valid — so after removing the budget the
//! same manager can re-run the query to completion.

use std::fmt;
use std::time::{Duration, Instant};

/// Why a traversal, fixpoint or kernel operation stopped early.
///
/// Replaces the lossy `truncated: bool` that could only mean "the
/// iteration cap fired": results now report *which* limit was hit, so
/// callers can distinguish a deliberate cap from resource exhaustion or an
/// injected fault and choose the right degradation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// The traversal's `max_iterations` cap was reached (checked between
    /// passes, as before).
    Iterations,
    /// The budget's wall-clock deadline passed.
    Deadline,
    /// The live-node ceiling was exceeded.
    NodeBudget,
    /// The governed-step (cache-miss recursion) ceiling was exceeded.
    StepBudget,
    /// A deterministic fault from the `fault-inject` schedule fired.
    InjectedFault,
    /// A parallel worker died (panic or injected spawn/import failure) and
    /// the pass was abandoned; the owner's manager remains usable for a
    /// sequential retry.
    WorkerLoss,
}

impl fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TruncationReason::Iterations => "Iterations",
            TruncationReason::Deadline => "Deadline",
            TruncationReason::NodeBudget => "NodeBudget",
            TruncationReason::StepBudget => "StepBudget",
            TruncationReason::InjectedFault => "InjectedFault",
            TruncationReason::WorkerLoss => "WorkerLoss",
        };
        f.write_str(s)
    }
}

/// The typed error every governed layer unwinds with on a budget breach.
///
/// Carries the [`TruncationReason`]; layers propagate it with `?` up to the
/// fixpoint driver, which converts it into a partial result instead of an
/// error (the partial reached set is still a sound under-approximation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interrupt {
    /// Which limit tripped.
    pub reason: TruncationReason,
}

impl Interrupt {
    /// An interrupt with the given reason.
    pub fn new(reason: TruncationReason) -> Self {
        Interrupt { reason }
    }
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interrupted: {} budget breached", self.reason)
    }
}

impl std::error::Error for Interrupt {}

/// Deterministic failure points exercised by the `fault-inject` feature.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A unique-table level grew its slot array.
    TableGrowth,
    /// The computed cache grew its entry array.
    CacheGrowth,
    /// A worker replica imported the shared artefacts or a frontier.
    ReplicaImport,
    /// The owner spawned a parallel worker.
    WorkerSpawn,
}

#[cfg(feature = "fault-inject")]
impl FaultSite {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            FaultSite::TableGrowth => 0,
            FaultSite::CacheGrowth => 1,
            FaultSite::ReplicaImport => 2,
            FaultSite::WorkerSpawn => 3,
        }
    }

    fn from_index(i: usize) -> Self {
        match i {
            0 => FaultSite::TableGrowth,
            1 => FaultSite::CacheGrowth,
            2 => FaultSite::ReplicaImport,
            _ => FaultSite::WorkerSpawn,
        }
    }
}

/// A seeded, deterministic schedule of injected failures.
///
/// Each armed site carries a countdown: the fault fires on the `n`-th event
/// observed at that site (table/cache growths are observed at the next
/// checkpoint after the growth, replica imports and worker spawns at the
/// call site). Because the kernel's event sequence is deterministic for a
/// given query, the same schedule trips at the same point on every run.
/// The optional `worker_panic` entry makes one parallel worker panic at a
/// given pass, exercising the pool's panic-capture path.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSchedule {
    countdown: [Option<u32>; FaultSite::COUNT],
    /// Make worker `worker_panic.0` panic at (0-based) parallel pass
    /// `worker_panic.1`.
    pub worker_panic: Option<(usize, u32)>,
}

#[cfg(feature = "fault-inject")]
impl FaultSchedule {
    /// An empty schedule (no faults armed).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Arms `site` to fail on its `nth` (0-based) observed event.
    pub fn trip(mut self, site: FaultSite, nth: u32) -> Self {
        self.countdown[site.index()] = Some(nth);
        self
    }

    /// Derives a schedule from a seed: one site armed at a small event
    /// index, chosen by a splitmix64 draw so proptest cases cover every
    /// site and early/late trip points.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let site = FaultSite::from_index((x as usize) % FaultSite::COUNT);
        let nth = ((x >> 8) % 4) as u32;
        FaultSchedule::default().trip(site, nth)
    }

    /// Whether any site (or the worker panic) is armed.
    pub fn is_armed(&self) -> bool {
        self.worker_panic.is_some() || self.countdown.iter().any(|c| c.is_some())
    }

    /// Records `count` events at `site`; returns `true` when the armed
    /// countdown is consumed and the fault must fire.
    fn observe(&mut self, site: FaultSite, count: u64) -> bool {
        match &mut self.countdown[site.index()] {
            Some(left) if (*left as u64) < count => {
                self.countdown[site.index()] = None;
                true
            }
            Some(left) => {
                *left -= count as u32;
                false
            }
            None => false,
        }
    }
}

/// Deterministic *disk* failure points exercised by the `fault-inject`
/// feature: the snapshot layer consults a [`DiskFaultSchedule`] at each of
/// these sites, so torn writes, lost renames and bit-rot on read are all
/// reproducible in tests. Kept separate from [`FaultSite`] so arming a
/// disk schedule never perturbs the seeded kernel-fault mapping that
/// existing tests pin.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultSite {
    /// A snapshot write persists only a prefix of its bytes (a torn write
    /// that still gets renamed into place — the checksum must catch it).
    ShortWrite,
    /// The atomic rename publishing a finished temp file fails; the
    /// snapshot is lost but nothing torn becomes visible.
    FailedRename,
    /// A snapshot read returns bytes with one bit flipped (media rot).
    CorruptRead,
}

#[cfg(feature = "fault-inject")]
impl DiskFaultSite {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            DiskFaultSite::ShortWrite => 0,
            DiskFaultSite::FailedRename => 1,
            DiskFaultSite::CorruptRead => 2,
        }
    }

    fn from_index(i: usize) -> Self {
        match i {
            0 => DiskFaultSite::ShortWrite,
            1 => DiskFaultSite::FailedRename,
            _ => DiskFaultSite::CorruptRead,
        }
    }
}

/// A seeded, deterministic schedule of injected disk failures, consumed by
/// the snapshot store. Each armed site fires on its `n`-th observed event
/// and then disarms, mirroring [`FaultSchedule`]'s countdown discipline.
#[cfg(feature = "fault-inject")]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskFaultSchedule {
    countdown: [Option<u32>; DiskFaultSite::COUNT],
}

#[cfg(feature = "fault-inject")]
impl DiskFaultSchedule {
    /// An empty schedule (no faults armed).
    pub fn none() -> Self {
        DiskFaultSchedule::default()
    }

    /// Arms `site` to fail on its `nth` (0-based) observed event.
    pub fn trip(mut self, site: DiskFaultSite, nth: u32) -> Self {
        self.countdown[site.index()] = Some(nth);
        self
    }

    /// Derives a schedule from a seed: one site armed at a small event
    /// index via a splitmix64 draw, so a seed sweep covers every site.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let site = DiskFaultSite::from_index((x as usize) % DiskFaultSite::COUNT);
        let nth = ((x >> 8) % 3) as u32;
        DiskFaultSchedule::default().trip(site, nth)
    }

    /// Whether any site is armed.
    pub fn is_armed(&self) -> bool {
        self.countdown.iter().any(|c| c.is_some())
    }

    /// Records one event at `site`; returns `true` when the armed
    /// countdown is consumed and the fault must fire (the site disarms).
    pub fn observe(&mut self, site: DiskFaultSite) -> bool {
        match &mut self.countdown[site.index()] {
            Some(0) => {
                self.countdown[site.index()] = None;
                true
            }
            Some(left) => {
                *left -= 1;
                false
            }
            None => false,
        }
    }
}

/// The resource envelope of one governed query.
///
/// Cheap to copy: parallel workers receive a copy sharing the same absolute
/// deadline, so all replicas of a query expire together.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    deadline: Option<Instant>,
    node_ceiling: Option<usize>,
    step_ceiling: Option<u64>,
    steps: u64,
    since_check: u32,
    breached: Option<TruncationReason>,
    #[cfg(feature = "fault-inject")]
    faults: FaultSchedule,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::new()
    }
}

impl Budget {
    /// How many governed steps (cache-miss recursions) pass between real
    /// checks of the clock and the node count.
    pub const CHECK_INTERVAL: u32 = 1024;

    /// An unlimited budget (useful as a carrier for a fault schedule).
    pub fn new() -> Self {
        Budget {
            deadline: None,
            node_ceiling: None,
            step_ceiling: None,
            steps: 0,
            since_check: 0,
            breached: None,
            #[cfg(feature = "fault-inject")]
            faults: FaultSchedule::default(),
        }
    }

    /// Sets a wall-clock deadline `d` from now.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(Instant::now() + d);
        self
    }

    /// Sets a ceiling on live BDD/ZDD nodes of the governed manager.
    pub fn with_node_ceiling(mut self, nodes: usize) -> Self {
        self.node_ceiling = Some(nodes);
        self
    }

    /// Sets a ceiling on governed steps (one step ≈ one cache-miss
    /// recursion in the kernel).
    pub fn with_step_ceiling(mut self, steps: u64) -> Self {
        self.step_ceiling = Some(steps);
        self
    }

    /// Arms the deterministic fault schedule.
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// The armed fault schedule.
    #[cfg(feature = "fault-inject")]
    pub fn faults(&self) -> &FaultSchedule {
        &self.faults
    }

    /// Governed steps consumed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The sticky breach, if the budget has tripped.
    pub fn breached(&self) -> Option<TruncationReason> {
        self.breached
    }

    /// Records a breach observed outside the budget's own checks (e.g. a
    /// worker loss). The first recorded reason wins and stays sticky.
    pub fn note_breach(&mut self, reason: TruncationReason) {
        if self.breached.is_none() {
            self.breached = Some(reason);
        }
    }

    /// Counts one governed step. Returns `true` when a real check
    /// ([`Budget::check`]) is due — every [`Budget::CHECK_INTERVAL`] steps,
    /// immediately once breached, or as soon as the step ceiling is
    /// exceeded (an exact integer compare, so tiny step budgets fire
    /// promptly).
    #[inline]
    pub fn tick(&mut self) -> bool {
        self.steps += 1;
        self.since_check += 1;
        if self.breached.is_some() || self.since_check >= Self::CHECK_INTERVAL {
            return true;
        }
        matches!(self.step_ceiling, Some(cap) if self.steps > cap)
    }

    /// The real check: sticky breach, deadline, node ceiling and step
    /// ceiling, in that order. `live_nodes` is the governed manager's
    /// current live-node count.
    pub fn check(&mut self, live_nodes: usize) -> Result<(), Interrupt> {
        self.since_check = 0;
        if let Some(reason) = self.breached {
            return Err(Interrupt::new(reason));
        }
        if matches!(self.deadline, Some(d) if Instant::now() >= d) {
            return self.trip(TruncationReason::Deadline);
        }
        if matches!(self.node_ceiling, Some(cap) if live_nodes > cap) {
            return self.trip(TruncationReason::NodeBudget);
        }
        if matches!(self.step_ceiling, Some(cap) if self.steps > cap) {
            return self.trip(TruncationReason::StepBudget);
        }
        Ok(())
    }

    /// Records `count` fresh events at `site`; fails with
    /// [`TruncationReason::InjectedFault`] when the schedule trips.
    #[cfg(feature = "fault-inject")]
    pub fn observe_fault_events(&mut self, site: FaultSite, count: u64) -> Result<(), Interrupt> {
        if count > 0 && self.faults.observe(site, count) {
            return self.trip(TruncationReason::InjectedFault);
        }
        Ok(())
    }

    fn trip(&mut self, reason: TruncationReason) -> Result<(), Interrupt> {
        self.breached = Some(reason);
        Err(Interrupt::new(reason))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let mut b = Budget::new();
        for _ in 0..10_000 {
            if b.tick() {
                b.check(1_000_000).unwrap();
            }
        }
        assert_eq!(b.breached(), None);
        assert_eq!(b.steps(), 10_000);
    }

    #[test]
    fn step_ceiling_trips_promptly_and_stays_sticky() {
        let mut b = Budget::new().with_step_ceiling(5);
        let mut tripped = None;
        for _ in 0..100 {
            if b.tick() {
                if let Err(e) = b.check(0) {
                    tripped = Some((e.reason, b.steps()));
                    break;
                }
            }
        }
        let (reason, at) = tripped.expect("step ceiling must trip");
        assert_eq!(reason, TruncationReason::StepBudget);
        assert_eq!(at, 6, "exact inline compare fires on the first excess step");
        // Sticky: every later check fails with the same reason.
        assert_eq!(b.check(0).unwrap_err().reason, TruncationReason::StepBudget);
        assert!(b.tick(), "a breached budget demands an immediate check");
    }

    #[test]
    fn node_ceiling_and_deadline_trip() {
        let mut b = Budget::new().with_node_ceiling(10);
        assert!(b.check(10).is_ok());
        assert_eq!(
            b.check(11).unwrap_err().reason,
            TruncationReason::NodeBudget
        );

        let mut b = Budget::new().with_deadline(Duration::ZERO);
        assert_eq!(b.check(0).unwrap_err().reason, TruncationReason::Deadline);
    }

    #[test]
    fn noted_breach_wins_and_is_first_reason() {
        let mut b = Budget::new().with_step_ceiling(0);
        b.note_breach(TruncationReason::WorkerLoss);
        b.note_breach(TruncationReason::Deadline);
        assert_eq!(b.breached(), Some(TruncationReason::WorkerLoss));
        assert_eq!(b.check(0).unwrap_err().reason, TruncationReason::WorkerLoss);
    }

    #[test]
    fn reasons_display_their_names() {
        assert_eq!(TruncationReason::Deadline.to_string(), "Deadline");
        assert_eq!(
            Interrupt::new(TruncationReason::NodeBudget).to_string(),
            "interrupted: NodeBudget budget breached"
        );
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn fault_schedule_counts_events_and_trips_once() {
        let mut b =
            Budget::new().with_faults(FaultSchedule::none().trip(FaultSite::CacheGrowth, 2));
        // Other sites are inert.
        b.observe_fault_events(FaultSite::TableGrowth, 100).unwrap();
        // Two events consume the countdown without tripping (fires on the
        // 0-based 2nd event, i.e. the third).
        b.observe_fault_events(FaultSite::CacheGrowth, 2).unwrap();
        assert_eq!(
            b.observe_fault_events(FaultSite::CacheGrowth, 1)
                .unwrap_err()
                .reason,
            TruncationReason::InjectedFault
        );
        assert_eq!(b.breached(), Some(TruncationReason::InjectedFault));
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn seeded_schedules_are_deterministic_and_cover_sites() {
        assert_eq!(FaultSchedule::from_seed(7), FaultSchedule::from_seed(7));
        let mut sites = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let s = FaultSchedule::from_seed(seed);
            assert!(s.is_armed());
            sites.insert(s.countdown.iter().position(|c| c.is_some()).unwrap());
        }
        assert_eq!(sites.len(), FaultSite::COUNT, "seeds reach every site");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn disk_fault_schedule_counts_events_and_disarms() {
        let mut s = DiskFaultSchedule::none().trip(DiskFaultSite::ShortWrite, 2);
        assert!(s.is_armed());
        // Other sites stay inert.
        assert!(!s.observe(DiskFaultSite::FailedRename));
        assert!(!s.observe(DiskFaultSite::ShortWrite));
        assert!(!s.observe(DiskFaultSite::ShortWrite));
        assert!(s.observe(DiskFaultSite::ShortWrite), "fires on the third");
        assert!(!s.observe(DiskFaultSite::ShortWrite), "then disarms");
        assert!(!s.is_armed());
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn seeded_disk_schedules_are_deterministic_and_cover_sites() {
        assert_eq!(
            DiskFaultSchedule::from_seed(3),
            DiskFaultSchedule::from_seed(3)
        );
        let mut sites = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let s = DiskFaultSchedule::from_seed(seed);
            assert!(s.is_armed());
            sites.insert(s.countdown.iter().position(|c| c.is_some()).unwrap());
        }
        assert_eq!(sites.len(), DiskFaultSite::COUNT, "seeds reach every site");
    }
}
