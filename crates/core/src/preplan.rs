//! Precomputed pre-image plans: the per-transition BDD artefacts of the
//! backward image computation, built **once** per context — the backward
//! mirror of [`crate::plan::ImagePlan`].
//!
//! Under every encoding of this crate a transition drives the variables it
//! writes to constants (eq. 6), so its *pre-image* is
//! `E_t ∧ (∃W_t. S ∧ T_t)` where `E_t` is the enabling function, `W_t` the
//! written-variable set and `T_t` the cube of target constants — the same
//! three artefacts the forward image uses, composed in the opposite order
//! (constrain by the target cube, quantify the written variables, then
//! conjoin the enabling function). The naive checker rebuilt `W_t` and
//! `T_t` on every call of every CTL fixpoint iteration; the
//! [`PreImagePlan`] precomputes them per transition, protects them across
//! garbage collection, and groups transitions whose written sets coincide
//! into [`PreImageCluster`]s so the shared quantification cube is built
//! (and walked) once per cluster.
//!
//! The plan also carries a *backward* static order: clusters sorted by
//! **descending** structural rank, so a backward chaining pass pulls
//! target sets against the net's flow, mirroring how the forward chained
//! strategy pushes tokens along it.

use crate::context::SymbolicContext;
use crate::plan::structural_transition_ranks;
use pnsym_bdd::{Ref, VarId};
use pnsym_net::TransitionId;
use std::collections::HashMap;

/// One transition's precomputed backward artefacts inside a cluster.
#[derive(Debug, Clone, Copy)]
pub struct PrePlannedTransition {
    /// The transition.
    pub transition: TransitionId,
    /// Its enabling function `E_t` (eq. 5), over the current variables.
    pub enabling: Ref,
    /// The cube of target constants `T_t` (eq. 6) the transition drives its
    /// written variables to; the pre-image constrains the target set by it
    /// before quantification.
    pub target: Ref,
}

/// A group of transitions writing exactly the same set of state variables,
/// sharing one quantification cube for the backward relational product.
#[derive(Debug, Clone)]
pub struct PreImageCluster {
    /// The written state-variable indices, sorted ascending.
    pub var_indices: Vec<usize>,
    /// Positive cube over the written *current* BDD variables, quantified
    /// out of `S ∧ T_t` by a single cube walk per member.
    pub quant_cube: Ref,
    /// The member transitions, in ascending transition order.
    pub members: Vec<PrePlannedTransition>,
    /// Structural rank of the cluster: the minimum breadth-first distance
    /// of any member's pre-set from the initially marked places. Backward
    /// passes visit clusters in **descending** rank.
    pub rank: usize,
}

/// The per-context pre-image plan: clusters of precomputed backward
/// transition artefacts plus the static backward order.
///
/// Built once by [`SymbolicContext::pre_image_plan`]; every [`Ref`] it
/// holds is protected in the context's manager, so the plan survives
/// garbage collection and dynamic reordering for the lifetime of the
/// context.
#[derive(Debug, Clone)]
pub struct PreImagePlan {
    clusters: Vec<PreImageCluster>,
    /// Cluster indices sorted by descending structural rank (the backward
    /// chaining order).
    backward_order: Vec<usize>,
    /// `location_of[t] = (cluster, member)` for every transition `t`.
    location_of: Vec<(usize, usize)>,
}

impl PreImagePlan {
    /// Builds the plan for `ctx`: one cluster per distinct written-variable
    /// set, with enabling functions, quantification cubes and target cubes
    /// precomputed and protected in the context's manager.
    pub(crate) fn build(ctx: &mut SymbolicContext) -> PreImagePlan {
        let num_transitions = ctx.net().num_transitions();
        let ranks = structural_transition_ranks(ctx.net());

        // Group transitions by their written-variable set.
        let mut groups: HashMap<Vec<usize>, Vec<TransitionId>> = HashMap::new();
        for ti in 0..num_transitions {
            let t = TransitionId(ti as u32);
            let written: Vec<usize> = ctx
                .transition_effect(t)
                .assignments
                .iter()
                .map(|&(i, _)| i)
                .collect();
            groups.entry(written).or_default().push(t);
        }
        let mut keyed: Vec<(Vec<usize>, Vec<TransitionId>)> = groups.into_iter().collect();
        // Deterministic cluster order: by first member transition.
        keyed.sort_by_key(|(_, ts)| ts.iter().map(|t| t.index()).min());

        let mut clusters = Vec::with_capacity(keyed.len());
        let mut location_of = vec![(0usize, 0usize); num_transitions];
        for (var_indices, transitions) in keyed {
            let quant_vars: Vec<VarId> =
                var_indices.iter().map(|&i| ctx.current_vars()[i]).collect();
            let quant_cube = {
                let m = ctx.manager_mut();
                let cube = m.var_cube(&quant_vars);
                m.protect(cube);
                cube
            };
            let mut members = Vec::with_capacity(transitions.len());
            let mut rank = usize::MAX;
            for t in transitions {
                let enabling = ctx.enabling_fn(t);
                let lits: Vec<(VarId, bool)> = ctx
                    .transition_effect(t)
                    .assignments
                    .iter()
                    .map(|&(i, value)| (ctx.current_vars()[i], value))
                    .collect();
                let target = {
                    let m = ctx.manager_mut();
                    let cube = m.cube(&lits);
                    m.protect(cube);
                    cube
                };
                rank = rank.min(ranks[t.index()]);
                location_of[t.index()] = (clusters.len(), members.len());
                members.push(PrePlannedTransition {
                    transition: t,
                    enabling,
                    target,
                });
            }
            clusters.push(PreImageCluster {
                var_indices,
                quant_cube,
                members,
                rank,
            });
        }

        let mut backward_order: Vec<usize> = (0..clusters.len()).collect();
        backward_order.sort_by_key(|&c| (usize::MAX - clusters[c].rank, c));
        PreImagePlan {
            clusters,
            backward_order,
            location_of,
        }
    }

    /// The clusters, in ascending first-member transition order.
    pub fn clusters(&self) -> &[PreImageCluster] {
        &self.clusters
    }

    /// Number of clusters (distinct written-variable sets).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster indices in the static backward order (descending structural
    /// rank; see [`PreImageCluster::rank`]).
    pub fn backward_order(&self) -> &[usize] {
        &self.backward_order
    }

    /// The `(cluster, member)` location of transition `t` in the plan.
    pub fn location_of(&self, t: TransitionId) -> (usize, usize) {
        self.location_of[t.index()]
    }

    /// The planned backward artefacts of transition `t`.
    pub fn planned(&self, t: TransitionId) -> (&PreImageCluster, &PrePlannedTransition) {
        let (c, m) = self.location_of(t);
        (&self.clusters[c], &self.clusters[c].members[m])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use pnsym_net::nets::{figure1, philosophers};
    use pnsym_structural::find_smcs;

    #[test]
    fn every_transition_is_planned_exactly_once() {
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        for enc in [
            Encoding::sparse(&net),
            Encoding::improved(&net, &smcs, AssignmentStrategy::Gray),
        ] {
            let mut ctx = SymbolicContext::new(&net, enc);
            let plan = ctx.pre_image_plan();
            let total: usize = plan.clusters().iter().map(|c| c.members.len()).sum();
            assert_eq!(total, net.num_transitions());
            for t in net.transitions() {
                let (_, planned) = plan.planned(t);
                assert_eq!(planned.transition, t);
                assert_eq!(planned.enabling, ctx.enabling_fn(t));
            }
            assert_eq!(plan.backward_order().len(), plan.num_clusters());
        }
    }

    #[test]
    fn backward_plan_mirrors_the_forward_plan() {
        // The backward artefacts of every transition coincide with the
        // forward ones (both plans precompute E_t, T_t and the written-set
        // cube); what differs is the composition order at use sites and the
        // static cluster order, which is reversed by rank.
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let mut ctx = SymbolicContext::new(
            &net,
            Encoding::improved(&net, &smcs, AssignmentStrategy::Gray),
        );
        let forward = ctx.image_plan();
        let backward = ctx.pre_image_plan();
        assert_eq!(forward.num_clusters(), backward.num_clusters());
        for t in net.transitions() {
            let (fc, fp) = forward.planned(t);
            let (bc, bp) = backward.planned(t);
            assert_eq!(fp.enabling, bp.enabling);
            assert_eq!(fp.target, bp.target);
            assert_eq!(fc.quant_cube, bc.quant_cube);
            assert_eq!(fc.var_indices, bc.var_indices);
        }
        // The backward order visits ranks in non-increasing order.
        let ranks: Vec<usize> = backward
            .backward_order()
            .iter()
            .map(|&c| backward.clusters()[c].rank)
            .collect();
        assert!(ranks.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn plan_survives_garbage_collection() {
        let net = philosophers(2);
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let plan = ctx.pre_image_plan();
        ctx.manager_mut().collect_garbage();
        // Every planned artefact must still be a live node after a GC with
        // no other roots.
        for cluster in plan.clusters() {
            assert!(ctx.manager().node_count(cluster.quant_cube) > 0);
            for member in &cluster.members {
                assert!(ctx.manager().node_count(member.target) > 0);
            }
        }
    }
}
