//! High-level analysis API: build an encoding, run the symbolic traversal
//! and collect the statistics reported in the paper's tables.

use crate::context::SymbolicContext;
use crate::encoding::{AssignmentStrategy, Encoding, SchemeKind};
use crate::traverse::{FixpointStrategy, TraversalOptions};
use crate::zdd_reach::ZddContext;
use pnsym_bdd::TruncationReason;
use pnsym_net::PetriNet;
use pnsym_structural::{find_smcs_with, CoverStrategy, InvariantError, InvariantOptions};
use std::fmt;
use std::time::{Duration, Instant};

/// How the static variable order of the state variables is chosen before
/// the traversal starts (dynamic reordering, if any, then refines it — see
/// [`SiftPolicy`](crate::SiftPolicy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariableOrder {
    /// The encoding's structural layout (the default): components in
    /// breadth-first distance order from the initially marked places, as
    /// laid out by the encoding construction.
    #[default]
    Structural,
    /// Order chosen by the toggling metric of Section 5.2
    /// ([`toggling_variable_order`](crate::toggling::toggling_variable_order)):
    /// state variables sorted by descending toggle count over the explicit
    /// reachability graph. Requires an explicit exploration of the net; if
    /// that fails (the net is too large), the structural order is kept.
    Toggling,
}

impl fmt::Display for VariableOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariableOrder::Structural => write!(f, "bfs"),
            VariableOrder::Toggling => write!(f, "toggling"),
        }
    }
}

/// Options for a full symbolic analysis of one net under one scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalysisOptions {
    /// The encoding scheme to use.
    pub scheme: SchemeKind,
    /// Code-assignment strategy within SMC blocks.
    pub assignment: AssignmentStrategy,
    /// Covering solver used by the basic dense scheme.
    pub cover_strategy: CoverStrategy,
    /// Limits for the P-invariant computation.
    pub invariants: InvariantOptions,
    /// Static variable order applied before the traversal.
    pub order: VariableOrder,
    /// Traversal options.
    pub traversal: TraversalOptions,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            scheme: SchemeKind::ImprovedDense,
            assignment: AssignmentStrategy::Gray,
            cover_strategy: CoverStrategy::Greedy,
            invariants: InvariantOptions::default(),
            order: VariableOrder::Structural,
            traversal: TraversalOptions::default(),
        }
    }
}

impl AnalysisOptions {
    /// Options for the conventional sparse encoding.
    pub fn sparse() -> Self {
        AnalysisOptions {
            scheme: SchemeKind::Sparse,
            ..AnalysisOptions::default()
        }
    }

    /// Options for the paper's dense (improved SMC-based) encoding.
    pub fn dense() -> Self {
        AnalysisOptions::default()
    }

    /// The same options with the given traversal strategy.
    pub fn with_strategy(mut self, strategy: FixpointStrategy) -> Self {
        self.traversal.strategy = strategy;
        self
    }

    /// The same options with the given static variable order.
    pub fn with_order(mut self, order: VariableOrder) -> Self {
        self.order = order;
        self
    }
}

/// The statistics of one analysis run — one row of the paper's tables.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The analysed net's name.
    pub net_name: String,
    /// The encoding scheme used.
    pub scheme: SchemeKind,
    /// Number of places of the net.
    pub num_places: usize,
    /// Number of transitions of the net.
    pub num_transitions: usize,
    /// Number of boolean state variables (column `V`).
    pub num_variables: usize,
    /// Number of reachable markings.
    pub num_markings: f64,
    /// BDD node count of the reached set (column `BDD`).
    pub bdd_nodes: usize,
    /// Peak live BDD nodes during the traversal.
    pub peak_live_nodes: usize,
    /// Fixpoint iterations (BFS steps or chaining passes) to convergence.
    pub iterations: usize,
    /// The traversal strategy used.
    pub strategy: FixpointStrategy,
    /// Number of reachable deadlocked markings.
    pub num_deadlocks: f64,
    /// Time spent computing invariants, SMCs and the encoding.
    pub encoding_time: Duration,
    /// Time spent in the symbolic traversal.
    pub traversal_time: Duration,
    /// The traversal's critical path (see
    /// [`ReachabilityResult::critical_path`](crate::ReachabilityResult::critical_path)):
    /// equals [`AnalysisReport::traversal_time`] for sequential strategies;
    /// for [`FixpointStrategy::Parallel`] it is the owner's serial work
    /// plus the slowest worker's busy time per pass — the modeled traversal
    /// wall time with one free core per worker, which thread-scaling
    /// comparisons should read on oversubscribed hosts.
    pub traversal_critical_path: Duration,
    /// Total wall-clock time (column `CPU`).
    pub total_time: Duration,
    /// Kernel statistics of the BDD manager at the end of the analysis
    /// (unique-table load, computed-cache hit rate, GC activity).
    pub manager_stats: pnsym_bdd::ManagerStats,
    /// Why the traversal stopped early, or `None` for a complete fixpoint.
    /// When set, [`AnalysisReport::num_markings`] and
    /// [`AnalysisReport::num_deadlocks`] describe a (sound)
    /// under-approximation of the reachable state space, not the fixpoint.
    pub truncated: Option<TruncationReason>,
    /// The degradation step taken after a recoverable breach (see
    /// [`DegradationStep`]), or `None` when the first attempt stood. When
    /// set, every traversal-related field of the report describes the
    /// *retry*, and [`AnalysisReport::truncated`] tells whether the retry
    /// itself completed.
    pub degraded: Option<DegradationStep>,
}

/// The one-shot degradation ladder of [`analyze`]: a recoverable breach is
/// retried once under a cheaper profile before the truncated result is
/// accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationStep {
    /// The live-node ceiling breached: the partial result was released, a
    /// garbage collection and a sifting pass shrank the working set, and
    /// the traversal was retried once under
    /// [`FixpointStrategy::Saturation`] (the lowest-peak-pressure
    /// strategy), same budget.
    NodeBudgetRetry,
    /// A parallel worker died: the traversal was retried once under the
    /// default sequential strategy on the same (still consistent) manager.
    SequentialRetry,
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:<14} markings={:<12e} V={:<4} BDD={:<8} CPU={:.3}s",
            self.net_name,
            self.scheme.to_string(),
            self.num_markings,
            self.num_variables,
            self.bdd_nodes,
            self.total_time.as_secs_f64()
        )
    }
}

/// Errors reported by [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The structural phase (P-invariants) exceeded its limits.
    Structural(InvariantError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Structural(e) => write!(f, "structural analysis failed: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<InvariantError> for AnalysisError {
    fn from(e: InvariantError) -> Self {
        AnalysisError::Structural(e)
    }
}

/// Builds the requested encoding for `net`.
///
/// # Errors
///
/// Returns [`AnalysisError::Structural`] if the P-invariant computation
/// exceeds its row limit (only possible for the dense schemes).
pub fn build_encoding(
    net: &PetriNet,
    options: &AnalysisOptions,
) -> Result<Encoding, AnalysisError> {
    Ok(match options.scheme {
        SchemeKind::Sparse => Encoding::sparse(net),
        SchemeKind::Dense => {
            let smcs = find_smcs_with(net, options.invariants)?;
            Encoding::dense(net, &smcs, options.cover_strategy, options.assignment)
        }
        SchemeKind::ImprovedDense => {
            let smcs = find_smcs_with(net, options.invariants)?;
            Encoding::improved(net, &smcs, options.assignment)
        }
    })
}

/// Runs a full analysis of `net`: encoding construction, symbolic
/// reachability and deadlock detection.
///
/// # Errors
///
/// Returns [`AnalysisError::Structural`] if the structural phase fails.
///
/// # Examples
///
/// ```
/// use pnsym_core::{analyze, AnalysisOptions};
/// use pnsym_net::nets::philosophers;
///
/// # fn main() -> Result<(), pnsym_core::AnalysisError> {
/// let net = philosophers(2);
/// let report = analyze(&net, &AnalysisOptions::dense())?;
/// assert_eq!(report.num_markings, 22.0);
/// assert_eq!(report.num_variables, 8);
/// # Ok(())
/// # }
/// ```
pub fn analyze(net: &PetriNet, options: &AnalysisOptions) -> Result<AnalysisReport, AnalysisError> {
    let start = Instant::now();
    let encoding = build_encoding(net, options)?;
    let num_variables = encoding.num_vars();
    let encoding_time = start.elapsed();

    let mut ctx = SymbolicContext::new(net, encoding);
    if options.order == VariableOrder::Toggling {
        // Choosing the order needs the explicit reachability graph; a net
        // too large to explore keeps the structural default.
        if let Ok(rg) = net.explore() {
            let order = crate::toggling::toggling_variable_order(net, ctx.encoding(), &rg);
            // Map the state-variable permutation onto the manager's
            // interleaved current/next layout.
            let interleaved: Vec<_> = order
                .iter()
                .flat_map(|&i| [ctx.current_vars()[i], ctx.next_vars()[i]])
                .collect();
            ctx.manager_mut().reorder_to(&interleaved);
        }
    }
    let mut result = ctx.reachable_markings_with(options.traversal);
    let mut degraded = None;
    match result.truncated {
        Some(TruncationReason::NodeBudget) => {
            // Degrade once: release the partial result, reclaim and compact
            // the working set, and retry under the strategy with the lowest
            // peak node pressure. The same budget applies to the retry; if
            // the slimmer profile still breaches, the second truncated
            // result stands.
            ctx.manager_mut().unprotect(result.reached);
            ctx.manager_mut().collect_garbage();
            ctx.manager_mut().sift();
            let retry = TraversalOptions {
                strategy: FixpointStrategy::Saturation,
                ..options.traversal
            };
            result = ctx.reachable_markings_with(retry);
            degraded = Some(DegradationStep::NodeBudgetRetry);
        }
        Some(TruncationReason::WorkerLoss) => {
            // The owner's manager survives a worker loss fully consistent;
            // retry once without the pool.
            ctx.manager_mut().unprotect(result.reached);
            let retry = TraversalOptions {
                strategy: FixpointStrategy::default(),
                ..options.traversal
            };
            result = ctx.reachable_markings_with(retry);
            degraded = Some(DegradationStep::SequentialRetry);
        }
        _ => {}
    }
    let dead = ctx.deadlocks_in(result.reached);
    let num_deadlocks = ctx.count_markings(dead);
    let manager_stats = ctx.stats();

    Ok(AnalysisReport {
        net_name: net.name().to_string(),
        scheme: options.scheme,
        num_places: net.num_places(),
        num_transitions: net.num_transitions(),
        num_variables,
        num_markings: result.num_markings,
        bdd_nodes: result.bdd_nodes,
        peak_live_nodes: result.peak_live_nodes,
        iterations: result.iterations,
        strategy: result.strategy,
        num_deadlocks,
        encoding_time,
        traversal_time: result.duration,
        traversal_critical_path: result.critical_path,
        total_time: start.elapsed(),
        manager_stats,
        truncated: result.truncated,
        degraded,
    })
}

/// The statistics of one ZDD-based (sparse) analysis run — the left-hand
/// side of Table 4.
#[derive(Debug, Clone)]
pub struct ZddAnalysisReport {
    /// The analysed net's name.
    pub net_name: String,
    /// Number of ZDD elements (= places) used to represent markings.
    pub num_variables: usize,
    /// Number of reachable markings.
    pub num_markings: f64,
    /// ZDD node count of the reached family.
    pub zdd_nodes: usize,
    /// Fixpoint iterations (BFS steps or chaining passes) to convergence.
    pub iterations: usize,
    /// The traversal strategy used.
    pub strategy: FixpointStrategy,
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Why the traversal stopped early, or `None` for a complete fixpoint.
    pub truncated: Option<TruncationReason>,
}

/// Runs the ZDD-based sparse analysis of `net` (Yoneda et al.'s
/// representation) with the default breadth-first strategy.
pub fn analyze_zdd(net: &PetriNet) -> ZddAnalysisReport {
    analyze_zdd_with(net, FixpointStrategy::default())
}

/// Runs the ZDD-based sparse analysis of `net` under the given traversal
/// strategy (the ZDD engine shares the fixpoint driver of the BDD engine).
pub fn analyze_zdd_with(net: &PetriNet, strategy: FixpointStrategy) -> ZddAnalysisReport {
    analyze_zdd_run(net, strategy, None)
}

/// [`analyze_zdd_with`] under a resource [`Budget`](pnsym_bdd::Budget): on
/// a breach the report carries the partial (under-approximated) family and
/// the typed [`TruncationReason`].
pub fn analyze_zdd_governed(
    net: &PetriNet,
    strategy: FixpointStrategy,
    budget: pnsym_bdd::Budget,
) -> ZddAnalysisReport {
    analyze_zdd_run(net, strategy, Some(budget))
}

fn analyze_zdd_run(
    net: &PetriNet,
    strategy: FixpointStrategy,
    budget: Option<pnsym_bdd::Budget>,
) -> ZddAnalysisReport {
    let start = Instant::now();
    let mut ctx = ZddContext::new(net);
    let result = match budget {
        Some(budget) => ctx.reachable_markings_governed(strategy, budget),
        None => ctx.reachable_markings_with(strategy),
    };
    ZddAnalysisReport {
        net_name: net.name().to_string(),
        num_variables: net.num_places(),
        num_markings: result.num_markings,
        zdd_nodes: result.zdd_nodes,
        iterations: result.iterations,
        strategy,
        total_time: start.elapsed(),
        truncated: result.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets::{figure1, muller, philosophers};

    #[test]
    fn sparse_and_dense_reports_agree_on_markings() {
        let net = muller(4);
        let sparse = analyze(&net, &AnalysisOptions::sparse()).unwrap();
        let dense = analyze(&net, &AnalysisOptions::dense()).unwrap();
        assert_eq!(sparse.num_markings, dense.num_markings);
        assert!(dense.num_variables < sparse.num_variables);
        assert!(dense.num_variables * 2 == sparse.num_variables);
    }

    #[test]
    fn report_fields_are_populated() {
        let net = figure1();
        let report = analyze(&net, &AnalysisOptions::dense()).unwrap();
        assert_eq!(report.net_name, "figure1");
        assert_eq!(report.num_places, 7);
        assert_eq!(report.num_transitions, 7);
        assert_eq!(report.num_markings, 8.0);
        assert_eq!(report.num_variables, 4);
        assert_eq!(report.num_deadlocks, 0.0);
        assert!(report.bdd_nodes > 0);
        assert!(report.total_time >= report.traversal_time);
        assert!(report.to_string().contains("figure1"));
    }

    #[test]
    fn zdd_report_matches_bdd_marking_count() {
        let net = philosophers(2);
        let zdd = analyze_zdd(&net);
        let bdd = analyze(&net, &AnalysisOptions::sparse()).unwrap();
        assert_eq!(zdd.num_markings, bdd.num_markings);
        assert_eq!(zdd.num_variables, 14);
    }

    #[test]
    fn toggling_order_agrees_with_the_structural_default() {
        let net = muller(6);
        let bfs = analyze(&net, &AnalysisOptions::dense()).unwrap();
        let tog = analyze(
            &net,
            &AnalysisOptions::dense().with_order(VariableOrder::Toggling),
        )
        .unwrap();
        assert_eq!(bfs.num_markings, tog.num_markings);
        assert_eq!(bfs.num_variables, tog.num_variables);
        assert_eq!(tog.truncated, None);
    }

    #[test]
    fn an_untruncated_analysis_reports_no_degradation() {
        let net = figure1();
        let report = analyze(&net, &AnalysisOptions::dense()).unwrap();
        assert_eq!(report.truncated, None);
        assert_eq!(report.degraded, None);
    }

    #[test]
    fn a_node_budget_breach_degrades_to_saturation_once() {
        // A one-node ceiling cannot be met by any profile, so both the
        // first attempt and the degraded retry truncate — but the ladder
        // must have run exactly once, the report must say so, and the
        // partial result must stay a sound under-approximation.
        let net = philosophers(3);
        let expected = net.explore().unwrap().num_markings() as f64;
        let mut options = AnalysisOptions::dense();
        options.traversal.node_budget = Some(1);
        let report = analyze(&net, &options).unwrap();
        assert_eq!(report.degraded, Some(DegradationStep::NodeBudgetRetry));
        assert_eq!(report.truncated, Some(TruncationReason::NodeBudget));
        assert_eq!(report.strategy, FixpointStrategy::Saturation);
        assert!(report.num_markings <= expected);
    }

    #[test]
    fn a_generous_node_budget_completes_without_degrading() {
        let net = philosophers(3);
        let expected = net.explore().unwrap().num_markings() as f64;
        let mut options = AnalysisOptions::dense();
        options.traversal.node_budget = Some(usize::MAX);
        let report = analyze(&net, &options).unwrap();
        assert_eq!(report.truncated, None);
        assert_eq!(report.degraded, None);
        assert_eq!(report.num_markings, expected);
    }

    #[test]
    fn a_tiny_deadline_truncates_with_a_typed_reason() {
        use std::time::Duration;
        let net = muller(6);
        let mut options = AnalysisOptions::dense();
        options.traversal.time_budget = Some(Duration::ZERO);
        let report = analyze(&net, &options).unwrap();
        assert_eq!(report.truncated, Some(TruncationReason::Deadline));
        assert_eq!(report.degraded, None, "deadlines are not retried");
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn a_worker_loss_degrades_to_a_sequential_retry() {
        let net = philosophers(3);
        let expected = net.explore().unwrap().num_markings() as f64;
        let mut options =
            AnalysisOptions::dense().with_strategy(FixpointStrategy::Parallel { threads: 2 });
        let mut faults = pnsym_bdd::FaultSchedule::none();
        faults.worker_panic = Some((0, 0));
        options.traversal.faults = Some(faults);
        let report = analyze(&net, &options).unwrap();
        assert_eq!(report.degraded, Some(DegradationStep::SequentialRetry));
        assert_eq!(report.truncated, None, "the sequential retry completes");
        assert_eq!(report.num_markings, expected);
    }

    #[test]
    fn structural_failure_is_reported() {
        let net = philosophers(3);
        let mut options = AnalysisOptions::dense();
        options.invariants = InvariantOptions { max_rows: 1 };
        assert!(matches!(
            analyze(&net, &options),
            Err(AnalysisError::Structural(_))
        ));
    }
}
