//! Image computation and transition relations (Sections 5.2–5.3).
//!
//! Under every encoding of this crate, firing a transition `t` drives each
//! affected variable to a *constant*: a place variable becomes 1 or 0, and
//! the variables of an SMC covering `t` take the code of `t`'s output place
//! inside the component (eq. 6). The efficient image computation therefore
//! quantifies the changed variables out of `S ∧ E_t` and conjoins the target
//! constants — the symbolic counterpart of the "toggle" updates the paper
//! describes. The per-transition artefacts (enabling function,
//! quantification cube, target cube) are precomputed once per context by
//! the [`ImagePlan`](crate::plan::ImagePlan) and reused by every call. The
//! explicit two-vocabulary transition relations `R_t(P, Q)` (eq. 3) are
//! also provided, mainly for cross-validation.

use crate::context::SymbolicContext;
use crate::encoding::{Block, Encoding};
use pnsym_bdd::{Interrupt, Ref, VarId};
use pnsym_net::{PetriNet, TransitionId};

/// The effect of one transition on the state variables: which variables
/// change and the constant values they take.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionEffect {
    /// The transition this effect describes.
    pub transition: TransitionId,
    /// `(state variable index, new value)` for every variable `t` may change.
    pub assignments: Vec<(usize, bool)>,
}

impl TransitionEffect {
    /// Number of state variables the transition writes.
    pub fn num_written(&self) -> usize {
        self.assignments.len()
    }
}

/// Computes the constant effect of `t` on the state variables of
/// `encoding`. Pure combinational data; memoized per context by
/// [`SymbolicContext::new`].
///
/// # Panics
///
/// Panics if the encoding's block index is inconsistent (a covered SMC
/// without an output place for `t`), which would indicate a bug in the
/// SMC extraction.
pub(crate) fn compute_transition_effect(
    net: &PetriNet,
    encoding: &Encoding,
    t: TransitionId,
) -> TransitionEffect {
    let mut assignments = Vec::new();
    for &bi in encoding.blocks_of_transition(t) {
        match &encoding.blocks()[bi] {
            Block::Place { place, var } => {
                let produces = net.post_set(t).contains(place);
                let consumes = net.pre_set(t).contains(place);
                if produces {
                    assignments.push((*var, true));
                } else if consumes {
                    assignments.push((*var, false));
                }
            }
            Block::Smc {
                places,
                codes,
                vars,
                ..
            } => {
                let out = net
                    .post_set(t)
                    .iter()
                    .copied()
                    .find(|p| places.contains(p))
                    .expect("a covered SMC always has an output place for the transition");
                let j = places
                    .iter()
                    .position(|&p| p == out)
                    .expect("out in places");
                let code = codes[j];
                for (b, &v) in vars.iter().enumerate() {
                    assignments.push((v, code & (1 << b) != 0));
                }
            }
        }
    }
    assignments.sort_unstable();
    assignments.dedup();
    TransitionEffect {
        transition: t,
        assignments,
    }
}

impl SymbolicContext {
    /// The set of markings reached by firing `t` once from some marking in
    /// `from` (the image of `from` under `t`), over the current variables.
    ///
    /// Uses the precomputed [`ImagePlan`](crate::plan::ImagePlan): the
    /// enabling function, quantification cube and target cube of `t` are
    /// built once per context, not per call.
    pub fn image(&mut self, from: Ref, t: TransitionId) -> Ref {
        let plan = self.image_plan();
        let (cluster, planned) = plan.planned(t);
        let m = self.manager_mut();
        let quantified = m.and_exists_cube(from, planned.enabling, cluster.quant_cube);
        if quantified == m.zero() {
            return quantified;
        }
        m.and(quantified, planned.target)
    }

    /// The image of `from` under every transition of one plan cluster: the
    /// shared quantification cube is walked once per member, and the
    /// members' partial images are OR-folded.
    pub fn cluster_image(&mut self, cluster: usize, from: Ref) -> Ref {
        self.try_cluster_image(cluster, from)
            .expect("budget breached inside an infallible image computation; governed callers must use try_cluster_image")
    }

    /// Fallible [`SymbolicContext::cluster_image`]: unwinds with a typed
    /// [`Interrupt`] when the manager's installed budget breaches inside
    /// one of the member firings, leaving no partial protections behind.
    pub fn try_cluster_image(&mut self, cluster: usize, from: Ref) -> Result<Ref, Interrupt> {
        let plan = self.image_plan();
        let c = &plan.clusters()[cluster];
        let mut acc = self.manager().zero();
        for member in &c.members {
            let m = self.manager_mut();
            let quantified = m.try_and_exists_cube(from, member.enabling, c.quant_cube)?;
            if quantified == m.zero() {
                continue;
            }
            let img = m.try_and(quantified, member.target)?;
            acc = m.try_or(acc, img)?;
        }
        Ok(acc)
    }

    /// The image of `from` under *all* transitions: one symbolic step of the
    /// breadth-first traversal.
    pub fn image_all(&mut self, from: Ref) -> Ref {
        let plan = self.image_plan();
        let mut acc = self.manager().zero();
        for cluster in 0..plan.num_clusters() {
            let img = self.cluster_image(cluster, from);
            acc = self.manager_mut().or(acc, img);
        }
        acc
    }

    /// The partial transition relation `R_t(P, Q)` of eq. (3): the enabling
    /// condition over current variables conjoined with `q_i ≡ δ_i` for every
    /// variable the transition writes. Variables not written are not
    /// constrained (they are handled as "unchanged" by
    /// [`SymbolicContext::image_via_relation`]).
    pub fn transition_relation(&mut self, t: TransitionId) -> Ref {
        let enabled = self.enabling_fn(t);
        let lits: Vec<(VarId, bool)> = self
            .transition_effect(t)
            .assignments
            .iter()
            .map(|&(i, value)| (self.next_vars()[i], value))
            .collect();
        let m = self.manager_mut();
        let target = m.cube(&lits);
        m.and(enabled, target)
    }

    /// The *monolithic* transition relation of `t`, which also asserts
    /// `q_i ≡ p_i` for every unchanged variable. Exponentially more
    /// expensive than the partial relation; intended for validation on small
    /// nets.
    pub fn monolithic_transition_relation(&mut self, t: TransitionId) -> Ref {
        let mut rel = self.transition_relation(t);
        let written: Vec<usize> = self
            .transition_effect(t)
            .assignments
            .iter()
            .map(|&(i, _)| i)
            .collect();
        for i in 0..self.encoding().num_vars() {
            if written.contains(&i) {
                continue;
            }
            let p = self.current_vars()[i];
            let q = self.next_vars()[i];
            let m = self.manager_mut();
            let pv = m.var(p);
            let qv = m.var(q);
            let eq = m.iff(pv, qv);
            rel = m.and(rel, eq);
        }
        rel
    }

    /// The disjunction of the monolithic relations of every transition: the
    /// full `R(P, Q)` of eq. (3). Only suitable for small nets.
    pub fn monolithic_relation(&mut self) -> Ref {
        let mut acc = self.manager().zero();
        for ti in 0..self.net().num_transitions() {
            let r = self.monolithic_transition_relation(TransitionId(ti as u32));
            acc = self.manager_mut().or(acc, r);
        }
        acc
    }

    /// Image computation through an explicit relation over `(P, Q)`:
    /// `∃P (from ∧ rel)` renamed back to the current variables. Used to
    /// cross-validate [`SymbolicContext::image`].
    pub fn image_via_relation(&mut self, from: Ref, rel: Ref) -> Ref {
        let current = self.current_vars().to_vec();
        let next = self.next_vars().to_vec();
        let m = self.manager_mut();
        let product = m.and_exists(from, rel, &current);
        let map: Vec<(VarId, VarId)> = next.iter().zip(&current).map(|(&q, &p)| (q, p)).collect();
        m.rename(product, &map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use pnsym_net::nets::{figure1, philosophers};
    use pnsym_net::PetriNet;
    use pnsym_structural::{find_smcs, CoverStrategy};

    fn contexts(net: &PetriNet) -> Vec<SymbolicContext> {
        let smcs = find_smcs(net).unwrap();
        vec![
            SymbolicContext::new(net, Encoding::sparse(net)),
            SymbolicContext::new(
                net,
                Encoding::dense(net, &smcs, CoverStrategy::Exact, AssignmentStrategy::Gray),
            ),
            SymbolicContext::new(
                net,
                Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
            ),
        ]
    }

    #[test]
    fn single_step_images_match_explicit_firing() {
        for net in [figure1(), philosophers(2)] {
            let rg = net.explore().unwrap();
            for mut ctx in contexts(&net) {
                for m in rg.markings().iter().take(8) {
                    let from = ctx.marking_to_bdd(m);
                    for t in net.transitions() {
                        let img = ctx.image(from, t);
                        if net.is_enabled(m, t) {
                            let next = net.fire(m, t).unwrap();
                            assert_eq!(ctx.count_markings(img), 1.0);
                            assert!(ctx.set_contains(img, &next));
                        } else {
                            assert_eq!(img, ctx.manager().zero());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn image_all_matches_explicit_successors() {
        let net = figure1();
        let rg = net.explore().unwrap();
        for mut ctx in contexts(&net) {
            let m = rg.marking(0).clone();
            let from = ctx.marking_to_bdd(&m);
            let img = ctx.image_all(from);
            let successors: Vec<_> = net
                .enabled_transitions(&m)
                .into_iter()
                .map(|t| net.fire(&m, t).unwrap())
                .collect();
            assert_eq!(ctx.count_markings(img), successors.len() as f64);
            for s in &successors {
                assert!(ctx.set_contains(img, s));
            }
        }
    }

    #[test]
    fn cluster_images_union_to_image_all() {
        let net = philosophers(2);
        for mut ctx in contexts(&net) {
            let init = ctx.initial_set();
            let full = ctx.image_all(init);
            let plan = ctx.image_plan();
            let mut acc = ctx.manager().zero();
            for cluster in 0..plan.num_clusters() {
                let img = ctx.cluster_image(cluster, init);
                acc = ctx.manager_mut().or(acc, img);
            }
            assert_eq!(acc, full, "scheme {:?}", ctx.encoding().scheme());
        }
    }

    #[test]
    fn relation_based_image_equals_direct_image() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            let init = ctx.initial_set();
            let direct = ctx.image_all(init);
            let rel = ctx.monolithic_relation();
            let via_rel = ctx.image_via_relation(init, rel);
            assert_eq!(direct, via_rel, "scheme {:?}", ctx.encoding().scheme());
        }
    }

    #[test]
    fn effects_write_fewer_variables_under_gray_codes() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let ctx = SymbolicContext::new(&net, enc);
        for t in net.transitions() {
            let effect = ctx.transition_effect(t);
            assert!(effect.num_written() >= 1);
            assert!(effect.num_written() <= ctx.encoding().num_vars());
        }
    }

    #[test]
    fn disabled_transition_has_empty_image_from_reachable_set() {
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let mut ctx = SymbolicContext::new(&net, enc);
        // From the initial marking, "eat" transitions are disabled.
        let init = ctx.initial_set();
        let eat0 = net.transition_by_name("eat.0").unwrap();
        assert_eq!(ctx.image(init, eat0), ctx.manager().zero());
    }
}
