//! Symbolic breadth-first reachability traversal.

use crate::context::SymbolicContext;
use pnsym_bdd::{Ref, SiftConfig};
use std::time::{Duration, Instant};

/// When to run dynamic variable reordering during traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiftPolicy {
    /// Never reorder (the default: the structural variable order is already
    /// good for the generated benchmark families).
    #[default]
    Never,
    /// Sift after every `n`-th traversal iteration.
    EveryIterations(usize),
}

/// Options controlling the symbolic traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalOptions {
    /// Compute images from the newly discovered frontier only (true) or from
    /// the whole reached set (false).
    pub use_frontier: bool,
    /// Initial live-node threshold above which garbage collection runs
    /// between iterations. The threshold adapts upwards: when a collection
    /// leaves more than half the threshold live (the working set genuinely
    /// needs the space), it doubles, so a traversal whose reached set keeps
    /// growing does not pay a useless collection every iteration.
    pub gc_threshold: usize,
    /// Dynamic reordering policy.
    pub sift: SiftPolicy,
    /// Abort after this many iterations (safety valve for experiments).
    pub max_iterations: Option<usize>,
}

impl Default for TraversalOptions {
    fn default() -> Self {
        TraversalOptions {
            use_frontier: true,
            gc_threshold: 500_000,
            sift: SiftPolicy::Never,
            max_iterations: None,
        }
    }
}

/// The outcome of a symbolic reachability traversal.
#[derive(Debug, Clone, Copy)]
pub struct ReachabilityResult {
    /// The reached set (over the current state variables).
    pub reached: Ref,
    /// Number of reachable markings (exact below 2^53).
    pub num_markings: f64,
    /// Number of breadth-first iterations until the fixpoint.
    pub iterations: usize,
    /// BDD node count of the final reached set.
    pub bdd_nodes: usize,
    /// Peak live-node count of the manager observed during the traversal.
    pub peak_live_nodes: usize,
    /// Wall-clock time of the traversal.
    pub duration: Duration,
    /// Whether the traversal stopped early because of
    /// [`TraversalOptions::max_iterations`].
    pub truncated: bool,
}

impl SymbolicContext {
    /// Computes the set of reachable markings by breadth-first symbolic
    /// traversal with default [`TraversalOptions`].
    pub fn reachable_markings(&mut self) -> ReachabilityResult {
        self.reachable_markings_with(TraversalOptions::default())
    }

    /// Computes the set of reachable markings by breadth-first symbolic
    /// traversal.
    ///
    /// The returned [`ReachabilityResult::reached`] BDD is protected in the
    /// context's manager and remains valid until the context is dropped.
    pub fn reachable_markings_with(&mut self, options: TraversalOptions) -> ReachabilityResult {
        let start = Instant::now();
        // The manager's advisory threshold is the single source of truth for
        // the adaptive GC policy below.
        self.manager_mut().set_gc_threshold(options.gc_threshold);
        let mut peak = self.manager().live_node_count();
        let mut reached = self.initial_set();
        let mut frontier = reached;
        self.manager_mut().protect(reached);
        self.manager_mut().protect(frontier);

        let mut iterations = 0usize;
        let mut truncated = false;
        loop {
            if let Some(limit) = options.max_iterations {
                if iterations >= limit {
                    truncated = true;
                    break;
                }
            }
            let source = if options.use_frontier {
                frontier
            } else {
                reached
            };
            let image = self.image_all(source);
            let new = self.manager_mut().diff(image, reached);
            if new == self.manager().zero() {
                break;
            }
            let next_reached = self.manager_mut().or(reached, new);

            // Re-protect the updated sets and release the previous ones.
            self.manager_mut().protect(next_reached);
            self.manager_mut().protect(new);
            self.manager_mut().unprotect(reached);
            self.manager_mut().unprotect(frontier);
            reached = next_reached;
            frontier = new;
            iterations += 1;

            peak = peak.max(self.manager().live_node_count());
            if self.manager().should_collect() {
                self.manager_mut().collect_garbage();
                // Collections rebuild the tables in place, so running one is
                // cheap — but a collection that reclaims almost nothing means
                // the working set has outgrown the threshold; double it.
                let threshold = self.manager().gc_threshold();
                if self.manager().live_node_count() * 2 > threshold {
                    self.manager_mut().set_gc_threshold(threshold * 2);
                }
            }
            if let SiftPolicy::EveryIterations(n) = options.sift {
                if n > 0 && iterations.is_multiple_of(n) {
                    self.manager_mut().sift_with(SiftConfig::default());
                }
            }
        }

        self.manager_mut().unprotect(frontier);
        peak = peak.max(self.manager().live_node_count());
        let num_markings = self.count_markings(reached);
        let bdd_nodes = self.bdd_size(reached);
        ReachabilityResult {
            reached,
            num_markings,
            iterations,
            bdd_nodes,
            peak_live_nodes: peak,
            duration: start.elapsed(),
            truncated,
        }
    }

    /// Convenience: reachability plus symbolic deadlock detection.
    /// Returns the traversal result and the number of reachable deadlocked
    /// markings.
    pub fn analyze_deadlocks(&mut self, options: TraversalOptions) -> (ReachabilityResult, f64) {
        let result = self.reachable_markings_with(options);
        let dead = self.deadlocks_in(result.reached);
        let count = self.count_markings(dead);
        (result, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use pnsym_net::nets::{dme, figure1, muller, philosophers, slotted_ring, DmeStyle};
    use pnsym_net::PetriNet;
    use pnsym_structural::{find_smcs, CoverStrategy};

    fn schemes(net: &PetriNet) -> Vec<Encoding> {
        let smcs = find_smcs(net).unwrap();
        vec![
            Encoding::sparse(net),
            Encoding::dense(net, &smcs, CoverStrategy::Greedy, AssignmentStrategy::Gray),
            Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
        ]
    }

    #[test]
    fn symbolic_counts_match_explicit_counts() {
        let nets = vec![
            figure1(),
            philosophers(2),
            philosophers(3),
            muller(4),
            slotted_ring(3),
            dme(3, DmeStyle::Spec),
        ];
        for net in nets {
            let expected = net.explore().unwrap().num_markings() as f64;
            for enc in schemes(&net) {
                let scheme = enc.scheme();
                let mut ctx = SymbolicContext::new(&net, enc);
                let result = ctx.reachable_markings();
                assert_eq!(
                    result.num_markings,
                    expected,
                    "{} under {:?}",
                    net.name(),
                    scheme
                );
                assert!(!result.truncated);
                assert!(result.iterations > 0);
            }
        }
    }

    #[test]
    fn every_explicit_marking_is_in_the_symbolic_set() {
        let net = philosophers(2);
        let rg = net.explore().unwrap();
        for enc in schemes(&net) {
            let mut ctx = SymbolicContext::new(&net, enc);
            let result = ctx.reachable_markings();
            for m in rg.markings() {
                assert!(ctx.set_contains(result.reached, m));
            }
        }
    }

    #[test]
    fn frontier_and_full_breadth_first_agree() {
        let net = muller(3);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let mut a = SymbolicContext::new(&net, enc.clone());
        let mut b = SymbolicContext::new(&net, enc);
        let ra = a.reachable_markings_with(TraversalOptions {
            use_frontier: true,
            ..TraversalOptions::default()
        });
        let rb = b.reachable_markings_with(TraversalOptions {
            use_frontier: false,
            ..TraversalOptions::default()
        });
        assert_eq!(ra.num_markings, rb.num_markings);
    }

    #[test]
    fn deadlock_detection_matches_explicit() {
        let net = philosophers(3);
        let explicit = net.explore().unwrap().deadlocks(&net).len() as f64;
        for enc in schemes(&net) {
            let mut ctx = SymbolicContext::new(&net, enc);
            let (_, dead) = ctx.analyze_deadlocks(TraversalOptions::default());
            assert_eq!(dead, explicit);
        }
    }

    #[test]
    fn max_iterations_truncates() {
        let net = muller(4);
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let result = ctx.reachable_markings_with(TraversalOptions {
            max_iterations: Some(1),
            ..TraversalOptions::default()
        });
        assert!(result.truncated);
        let full = SymbolicContext::new(&net, Encoding::sparse(&net))
            .reachable_markings()
            .num_markings;
        assert!(result.num_markings < full);
    }

    #[test]
    fn sifting_during_traversal_preserves_the_answer() {
        let net = slotted_ring(3);
        let expected = net.explore().unwrap().num_markings() as f64;
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let result = ctx.reachable_markings_with(TraversalOptions {
            sift: SiftPolicy::EveryIterations(2),
            ..TraversalOptions::default()
        });
        assert_eq!(result.num_markings, expected);
    }

    #[test]
    fn dense_reached_set_is_smaller_on_muller() {
        let net = muller(6);
        let smcs = find_smcs(&net).unwrap();
        let mut sparse = SymbolicContext::new(&net, Encoding::sparse(&net));
        let mut dense = SymbolicContext::new(
            &net,
            Encoding::improved(&net, &smcs, AssignmentStrategy::Gray),
        );
        let rs = sparse.reachable_markings();
        let rd = dense.reachable_markings();
        assert_eq!(rs.num_markings, rd.num_markings);
        assert!(
            rd.bdd_nodes < rs.bdd_nodes,
            "dense ({}) should beat sparse ({})",
            rd.bdd_nodes,
            rs.bdd_nodes
        );
    }
}
