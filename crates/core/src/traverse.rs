//! The pluggable symbolic fixpoint engine.
//!
//! One generic driver ([`run_fixpoint`]) computes the reachable-marking
//! fixpoint for *any* backend implementing the small [`FixpointKernel`]
//! trait — the BDD engine of [`SymbolicContext`] and the ZDD engine of
//! [`ZddContext`](crate::ZddContext) both run on it, so garbage-collection
//! adaptation, peak tracking, iteration accounting and truncation live in
//! exactly one place.
//!
//! Three exploration strategies are provided ([`FixpointStrategy`]):
//!
//! * **Breadth-first** — the classic loop: one full image of the frontier
//!   (or of the whole reached set) per iteration.
//! * **Chaining** — transitions are fired one cluster at a time and each
//!   partial image is folded into the reached set *within* a pass, so a
//!   token can travel many steps per pass. With the static structural
//!   order of the [`ImagePlan`](crate::plan::ImagePlan) this reaches the
//!   fixpoint in far fewer passes than BFS needs iterations on pipelined
//!   nets, the behaviour mature Petri-net model checkers exploit.
//! * **Saturation** — clusters are bucketed by the topmost decision-diagram
//!   level they write and saturated level by level, bottom-up (deepest
//!   levels first): each level's clusters are fired to a local fixpoint
//!   before the next level up fires at all, and firing is *event-local* —
//!   a productive firing re-dirties exactly the clusters its post-set can
//!   newly enable, and only dirty clusters ever re-fire, so higher
//!   clusters re-fire only when something below them actually changed.
//!   Firing a cluster whose written variables sit deep in the order only
//!   ever rewrites the bottom of the reached-set diagram, so the
//!   intermediate results stay small and heavily cached — the
//!   flat-relation adaptation of Ciardo et al.'s saturation discipline
//!   (see PAPERS.md).

use crate::context::SymbolicContext;
use crate::plan::ImagePlan;
use pnsym_bdd::{Budget, Interrupt, Ref, SiftConfig, TruncationReason};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Unwraps a governed kernel call inside a fixpoint driver: on an
/// [`Interrupt`] the macro records the typed truncation reason and breaks
/// out of the labelled traversal loop, so the driver's epilogue releases
/// the intermediate protections and returns the partial result.
macro_rules! governed {
    ($truncated:ident, $label:lifetime, $e:expr) => {
        match $e {
            Ok(value) => value,
            Err(interrupt) => {
                $truncated = Some(interrupt.reason);
                break $label;
            }
        }
    };
}
pub(crate) use governed;

/// When to run dynamic variable reordering during traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiftPolicy {
    /// Never reorder (the default: the structural variable order is already
    /// good for the generated benchmark families).
    #[default]
    Never,
    /// Sift after every `n`-th traversal iteration.
    EveryIterations(usize),
    /// Growth-ratio heuristic: sift when the live node count between
    /// passes exceeds `percent`% of the baseline recorded at the previous
    /// sift (or at the first pass). A floor of
    /// [`ADAPTIVE_SIFT_FLOOR`] live nodes keeps tiny diagrams — where a
    /// reordering pass costs more than it can ever save — from triggering.
    /// `AdaptiveGrowth { percent: 200 }` sifts whenever the working set
    /// has doubled since the order was last tuned.
    AdaptiveGrowth {
        /// Trigger ratio in percent; values below 100 are treated as 100
        /// (a ratio under 1.0 would sift on every pass).
        percent: u32,
    },
}

impl SiftPolicy {
    /// The adaptive policy used by the benchmark harness: sift when the
    /// working set doubles between passes.
    pub fn adaptive() -> Self {
        SiftPolicy::AdaptiveGrowth { percent: 200 }
    }
}

/// Live-node floor below which [`SiftPolicy::AdaptiveGrowth`] never
/// triggers: reordering a diagram this small costs more than the best
/// possible order saves.
pub const ADAPTIVE_SIFT_FLOOR: usize = 2048;

/// Between-pass maintenance shared by the sequential kernel and the
/// parallel owner: adaptive garbage collection (with the doubling
/// threshold) followed by the sifting policy. `baseline` is the adaptive
/// trigger's state — the live node count when the order was last tuned
/// (`0` = not yet observed). Returns whether the variable order changed,
/// so the parallel owner knows to resync its worker replicas.
pub(crate) fn maintain_between_passes(
    ctx: &mut SymbolicContext,
    sift: SiftPolicy,
    iteration: usize,
    baseline: &mut usize,
) -> bool {
    if ctx.manager().should_collect() {
        ctx.manager_mut().collect_garbage();
        // Collections rebuild the tables in place, so running one is
        // cheap — but a collection that reclaims almost nothing means
        // the working set has outgrown the threshold; double it.
        let threshold = ctx.manager().gc_threshold();
        if ctx.manager().live_node_count() * 2 > threshold {
            ctx.manager_mut().set_gc_threshold(threshold * 2);
        }
    }
    let before = ctx.manager().order_generation();
    match sift {
        SiftPolicy::Never => {}
        SiftPolicy::EveryIterations(n) => {
            if n > 0 && iteration.is_multiple_of(n) {
                ctx.manager_mut().sift_with(SiftConfig::default());
            }
        }
        SiftPolicy::AdaptiveGrowth { percent } => {
            let live = ctx.manager().live_node_count();
            if *baseline == 0 {
                *baseline = live.max(1);
            }
            if live > ADAPTIVE_SIFT_FLOOR && live * 100 > *baseline * percent.max(100) as usize {
                ctx.manager_mut().sift_with(SiftConfig::default());
                // The post-sift size is the new baseline: the next trigger
                // fires only once the working set outgrows the tuned order
                // by the same ratio again.
                *baseline = ctx.manager().live_node_count().max(1);
            }
        }
    }
    ctx.manager().order_generation() != before
}

/// The static transition order used by the chained strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainingOrder {
    /// Clusters sorted by structural rank: breadth-first distance of each
    /// transition's pre-set from the initially marked places (see
    /// [`structural_transition_ranks`](crate::plan::structural_transition_ranks)).
    /// Approximates the firing order, so a pass propagates tokens along the
    /// net's flow.
    #[default]
    Structural,
    /// Clusters in ascending first-member transition index order.
    Index,
}

/// How the fixpoint driver explores the state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixpointStrategy {
    /// Breadth-first: one full image per iteration.
    Bfs {
        /// Compute images from the newly discovered frontier only (true)
        /// or from the whole reached set (false).
        use_frontier: bool,
    },
    /// Chained firing: clusters are fired in a static order and each
    /// partial image is folded into the reached set within the pass.
    /// Reaches the same fixpoint as BFS (images of reachable markings are
    /// reachable, and every enabled firing is eventually applied), usually
    /// in far fewer passes.
    Chaining {
        /// The static cluster order of a pass.
        order: ChainingOrder,
    },
    /// Level saturation: clusters are bucketed by the topmost diagram
    /// level they write (`FixpointKernel::cluster_top_level`) and
    /// saturated bottom-up — each level runs a nested inner fixpoint
    /// before anything above it fires, and a cluster re-fires only when a
    /// productive firing structurally feeds it
    /// (`FixpointKernel::cluster_feeds`), so stable regions of the net
    /// are never re-imaged. Computes the same fixpoint as BFS and
    /// chaining. `iterations` counts productive saturation sweeps.
    Saturation,
    /// Parallel cluster-image traversal over a pool of sharded BDD worker
    /// threads (see the `parallel` module): each worker owns a replica
    /// manager with the plan's image artefacts mirrored in; per pass the
    /// owner deals the clusters onto the workers — rebalanced by each
    /// cluster's latest cost, measured as a deterministic computed-cache
    /// lookup count — every worker fires its share locally on a serialized
    /// copy of the source set, and the partial images are merge-unioned
    /// back in the owning manager in worker-id order. Nets whose clusters
    /// split into disjoint-support components instead saturate the
    /// independent subspaces concurrently. Computes the same fixpoint as
    /// the sequential strategies, and the result is bit-identical for
    /// every thread count.
    Parallel {
        /// Number of worker threads (values below 1 are clamped to 1).
        threads: usize,
    },
}

impl Default for FixpointStrategy {
    fn default() -> Self {
        FixpointStrategy::Bfs { use_frontier: true }
    }
}

impl std::fmt::Display for FixpointStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FixpointStrategy::Bfs { use_frontier: true } => write!(f, "bfs"),
            FixpointStrategy::Bfs {
                use_frontier: false,
            } => write!(f, "bfs-full"),
            FixpointStrategy::Chaining {
                order: ChainingOrder::Structural,
            } => write!(f, "chaining"),
            FixpointStrategy::Chaining {
                order: ChainingOrder::Index,
            } => write!(f, "chaining-index"),
            FixpointStrategy::Saturation => write!(f, "saturation"),
            FixpointStrategy::Parallel { threads } => write!(f, "parallel-{threads}"),
        }
    }
}

/// Options controlling the symbolic traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalOptions {
    /// The exploration strategy of the fixpoint driver.
    pub strategy: FixpointStrategy,
    /// Initial live-node threshold above which garbage collection runs
    /// between iterations. The threshold adapts upwards: when a collection
    /// leaves more than half the threshold live (the working set genuinely
    /// needs the space), it doubles, so a traversal whose reached set keeps
    /// growing does not pay a useless collection every iteration.
    pub gc_threshold: usize,
    /// Dynamic reordering policy.
    pub sift: SiftPolicy,
    /// Abort after this many iterations (safety valve for experiments).
    pub max_iterations: Option<usize>,
    /// Wall-clock budget: the traversal unwinds with
    /// [`TruncationReason::Deadline`] once this much time has elapsed,
    /// checked cooperatively inside the kernel recursions (amortized over
    /// cache misses) and at every pass boundary.
    pub time_budget: Option<Duration>,
    /// Live-node ceiling of the backing manager: breaching it unwinds the
    /// traversal with [`TruncationReason::NodeBudget`].
    pub node_budget: Option<usize>,
    /// Kernel-step ceiling (one step per governed cache miss): breaching
    /// it unwinds the traversal with [`TruncationReason::StepBudget`].
    pub step_budget: Option<u64>,
    /// Deterministic fault-injection schedule driven through the budget's
    /// checkpoints (see [`pnsym_bdd::FaultSchedule`]).
    #[cfg(feature = "fault-inject")]
    pub faults: Option<pnsym_bdd::FaultSchedule>,
}

impl Default for TraversalOptions {
    fn default() -> Self {
        TraversalOptions {
            strategy: FixpointStrategy::default(),
            gc_threshold: 500_000,
            sift: SiftPolicy::Never,
            max_iterations: None,
            time_budget: None,
            node_budget: None,
            step_budget: None,
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }
}

impl TraversalOptions {
    /// Default options with the given strategy.
    pub fn with_strategy(strategy: FixpointStrategy) -> Self {
        TraversalOptions {
            strategy,
            ..TraversalOptions::default()
        }
    }

    /// The [`Budget`] these options describe, or `None` when the traversal
    /// is entirely unconstrained (the kernel hot paths then pay nothing).
    pub(crate) fn budget(&self) -> Option<Budget> {
        let mut budget = Budget::new();
        let mut governed = false;
        if let Some(window) = self.time_budget {
            budget = budget.with_deadline(window);
            governed = true;
        }
        if let Some(ceiling) = self.node_budget {
            budget = budget.with_node_ceiling(ceiling);
            governed = true;
        }
        if let Some(ceiling) = self.step_budget {
            budget = budget.with_step_ceiling(ceiling);
            governed = true;
        }
        #[cfg(feature = "fault-inject")]
        if let Some(faults) = self.faults {
            budget = budget.with_faults(faults);
            governed = true;
        }
        governed.then_some(budget)
    }
}

/// The outcome of a symbolic reachability traversal.
#[derive(Debug, Clone, Copy)]
pub struct ReachabilityResult {
    /// The reached set (over the current state variables).
    pub reached: Ref,
    /// Number of reachable markings (exact below 2^53).
    pub num_markings: f64,
    /// Number of fixpoint iterations: breadth-first steps under
    /// [`FixpointStrategy::Bfs`], productive passes under
    /// [`FixpointStrategy::Chaining`], productive level sweeps under
    /// [`FixpointStrategy::Saturation`].
    pub iterations: usize,
    /// BDD node count of the final reached set.
    pub bdd_nodes: usize,
    /// Exact peak live-node count of the manager up to the end of the
    /// traversal (high-water mark maintained on every allocation, so peaks
    /// *inside* an image computation are captured).
    pub peak_live_nodes: usize,
    /// Wall-clock time of the traversal.
    pub duration: Duration,
    /// The traversal's *critical path*: for
    /// [`FixpointStrategy::Parallel`] the owner's serial work plus the
    /// slowest worker's busy time of every pass — the modeled wall time on
    /// a host with one free core per worker. Wall clocks on an
    /// oversubscribed host (fewer free cores than workers) measure
    /// time-slicing, not the algorithm, so thread-scaling comparisons
    /// should read this field; for sequential strategies it equals
    /// [`ReachabilityResult::duration`].
    pub critical_path: Duration,
    /// Why the traversal stopped early, if it did:
    /// [`TruncationReason::Iterations`] for the
    /// [`TraversalOptions::max_iterations`] safety valve, the budget
    /// reasons for a governed run, `None` for a completed fixpoint. A
    /// truncated `reached` set is a valid *under*-approximation of the
    /// reachable markings, protected in the manager like a complete one.
    pub truncated: Option<TruncationReason>,
    /// The strategy that produced this result.
    pub strategy: FixpointStrategy,
}

/// The raw outcome of the generic driver, before backend-specific
/// statistics are attached.
pub(crate) struct FixpointRun<S> {
    /// The reached set (protected in the backend's manager where
    /// applicable).
    pub reached: S,
    /// Iterations (BFS steps or productive chaining passes).
    pub iterations: usize,
    /// Why the run stopped early (iteration limit or budget breach), or
    /// `None` for a completed fixpoint.
    pub truncated: Option<TruncationReason>,
    /// Modeled wall time on a host with one free core per worker: the
    /// owner's serial work plus the slowest worker's busy time of every
    /// pass. `None` for sequential runs, where it coincides with the
    /// measured duration.
    pub critical_path: Option<Duration>,
}

/// The minimal backend surface the generic fixpoint driver needs: set
/// algebra, per-cluster images, and optional protection/maintenance hooks.
///
/// Implemented by the BDD engine (over [`SymbolicContext`] and its
/// [`ImagePlan`]) and the ZDD engine.
pub(crate) trait FixpointKernel {
    /// A handle to a set of markings in the backend's manager.
    type Set: Copy + PartialEq;

    /// The empty set.
    fn empty(&self) -> Self::Set;
    /// The traversal's start set: the singleton initial marking, or the
    /// union of it with a resumed checkpoint seed.
    fn initial(&mut self) -> Self::Set;
    /// Called at every productive pass boundary — with the (protected)
    /// partial reached set and the pass count, just before
    /// [`FixpointKernel::maintain`] — so long fixpoints can be
    /// checkpointed at the same sites the budget already forces a check
    /// at. No-op by default.
    fn observe_pass(&mut self, _reached: Self::Set, _iteration: usize) {}
    /// Number of transition clusters.
    fn num_clusters(&self) -> usize;
    /// The cluster visit sequence of one chaining pass.
    fn cluster_sequence(&self, order: ChainingOrder) -> Vec<usize>;
    /// The topmost (smallest) decision-diagram level among the variables
    /// the cluster writes; clusters touching nothing report `u32::MAX`.
    /// Drives the level bucketing of [`FixpointStrategy::Saturation`].
    fn cluster_top_level(&self, cluster: usize) -> u32;
    /// Whether firing `from` can newly enable a transition of `to`
    /// (structurally: some member of `from` produces into the pre-set of a
    /// member of `to`). [`FixpointStrategy::Saturation`] terminates as
    /// soon as no cluster is dirty, with no confirming image pass, so this
    /// relation is **load-bearing for soundness**: it must include every
    /// pair where a firing of `from` can mark a pre-place of `to` (an
    /// over-approximation is fine and only costs redundant sweeps; a
    /// missed pair silently truncates the fixpoint).
    fn cluster_feeds(&self, from: usize, to: usize) -> bool;
    /// The image of `from` under every transition of `cluster`, or a typed
    /// [`Interrupt`] when the backend's budget breached mid-computation.
    /// On `Err` the backend must be left consistent: every completed node
    /// and cache entry valid, no protection acquired for the partial work.
    fn cluster_image(&mut self, cluster: usize, from: Self::Set) -> Result<Self::Set, Interrupt>;
    /// Set union (fallible like [`FixpointKernel::cluster_image`]).
    fn union(&mut self, a: Self::Set, b: Self::Set) -> Result<Self::Set, Interrupt>;
    /// Set difference `a \ b` (fallible like
    /// [`FixpointKernel::cluster_image`]).
    fn diff(&mut self, a: Self::Set, b: Self::Set) -> Result<Self::Set, Interrupt>;
    /// Forced budget check at a pass boundary. Unlike the amortized checks
    /// inside the kernel recursions this fires every time it is called, so
    /// even a traversal whose passes are too cheap to reach the amortized
    /// check interval honours its deadline between passes. The default is
    /// a no-op for ungoverned backends.
    fn checkpoint(&mut self) -> Result<(), Interrupt> {
        Ok(())
    }
    /// Protects `s` from backend garbage collection (no-op by default).
    fn protect(&mut self, _s: Self::Set) {}
    /// Releases one protection of `s` (no-op by default).
    fn unprotect(&mut self, _s: Self::Set) {}
    /// Between-iteration maintenance: garbage collection, reordering.
    /// Called only when every live root is protected.
    fn maintain(&mut self, _iteration: usize) {}
    /// Generation counter of the backend's variable order, bumped by every
    /// reordering. [`FixpointStrategy::Saturation`] compares generations
    /// around [`FixpointKernel::maintain`] and rebuilds its level buckets
    /// when the order changed under it — the per-cluster
    /// [`FixpointKernel::cluster_top_level`] answers are only meaningful
    /// for the order they were read under. Backends that never reorder
    /// keep the default constant.
    fn order_generation(&self) -> u64 {
        0
    }
    /// Runs [`FixpointStrategy::Parallel`]. The default falls back to the
    /// sequential frontier-BFS fixpoint, so backends without a threaded
    /// kernel (the ZDD engine) stay correct — and trivially deterministic —
    /// under the parallel strategy; the BDD kernel overrides this with the
    /// sharded worker pool of the `parallel` module.
    fn run_parallel(
        &mut self,
        _threads: usize,
        max_iterations: Option<usize>,
    ) -> FixpointRun<Self::Set>
    where
        Self: Sized,
    {
        bfs(self, true, max_iterations)
    }
}

/// Runs the fixpoint under the given strategy. On return — *including* a
/// truncated return after a budget breach — the reached set carries one
/// protection in the backend (for backends with GC); every intermediate
/// protection has been released.
pub(crate) fn run_fixpoint<K: FixpointKernel>(
    kernel: &mut K,
    strategy: FixpointStrategy,
    max_iterations: Option<usize>,
) -> FixpointRun<K::Set> {
    match strategy {
        FixpointStrategy::Bfs { use_frontier } => bfs(kernel, use_frontier, max_iterations),
        FixpointStrategy::Chaining { order } => chaining(kernel, order, max_iterations),
        FixpointStrategy::Saturation => saturation(kernel, max_iterations),
        FixpointStrategy::Parallel { threads } => kernel.run_parallel(threads, max_iterations),
    }
}

fn bfs<K: FixpointKernel>(
    kernel: &mut K,
    use_frontier: bool,
    max_iterations: Option<usize>,
) -> FixpointRun<K::Set> {
    let empty = kernel.empty();
    let mut reached = kernel.initial();
    let mut frontier = reached;
    kernel.protect(reached);
    kernel.protect(frontier);

    let mut iterations = 0usize;
    let mut truncated = None;
    'run: loop {
        if let Some(limit) = max_iterations {
            if iterations >= limit {
                truncated = Some(TruncationReason::Iterations);
                break;
            }
        }
        governed!(truncated, 'run, kernel.checkpoint());
        let source = if use_frontier { frontier } else { reached };
        let mut image = empty;
        for cluster in 0..kernel.num_clusters() {
            let img = governed!(truncated, 'run, kernel.cluster_image(cluster, source));
            image = governed!(truncated, 'run, kernel.union(image, img));
        }
        let new = governed!(truncated, 'run, kernel.diff(image, reached));
        if new == empty {
            break;
        }
        let next_reached = governed!(truncated, 'run, kernel.union(reached, new));

        // Re-protect the updated sets and release the previous ones.
        kernel.protect(next_reached);
        kernel.protect(new);
        kernel.unprotect(reached);
        kernel.unprotect(frontier);
        reached = next_reached;
        frontier = new;
        iterations += 1;
        kernel.observe_pass(reached, iterations);
        kernel.maintain(iterations);
    }

    kernel.unprotect(frontier);
    FixpointRun {
        reached,
        iterations,
        truncated,
        critical_path: None,
    }
}

fn chaining<K: FixpointKernel>(
    kernel: &mut K,
    order: ChainingOrder,
    max_iterations: Option<usize>,
) -> FixpointRun<K::Set> {
    let sequence = kernel.cluster_sequence(order);
    let mut reached = kernel.initial();
    kernel.protect(reached);

    let mut iterations = 0usize;
    let mut truncated = None;
    'run: loop {
        if let Some(limit) = max_iterations {
            if iterations >= limit {
                truncated = Some(TruncationReason::Iterations);
                break;
            }
        }
        governed!(truncated, 'run, kernel.checkpoint());
        let mut changed = false;
        for &cluster in &sequence {
            let img = governed!(truncated, 'run, kernel.cluster_image(cluster, reached));
            // `union != reached` detects productivity directly; computing
            // the difference first would walk the same diagrams twice.
            let next_reached = governed!(truncated, 'run, kernel.union(reached, img));
            if next_reached == reached {
                continue;
            }
            kernel.protect(next_reached);
            kernel.unprotect(reached);
            reached = next_reached;
            changed = true;
        }
        if !changed {
            break;
        }
        iterations += 1;
        kernel.observe_pass(reached, iterations);
        kernel.maintain(iterations);
    }

    FixpointRun {
        reached,
        iterations,
        truncated,
        critical_path: None,
    }
}

/// Buckets the clusters by their topmost written level, deepest level
/// first, keeping the structural chaining order within each bucket so a
/// level's inner fixpoint still fires along the net's flow. Returns the
/// buckets and the inverse map `level_of[cluster] = bucket index`.
///
/// The bucketing is only valid for the variable order it was computed
/// under: [`saturation`] rebuilds it whenever
/// [`FixpointKernel::order_generation`] reports a mid-fixpoint reordering.
fn saturation_buckets<K: FixpointKernel>(kernel: &K) -> (Vec<Vec<usize>>, Vec<usize>) {
    let mut buckets: std::collections::BTreeMap<std::cmp::Reverse<u32>, Vec<usize>> =
        std::collections::BTreeMap::new();
    for cluster in kernel.cluster_sequence(ChainingOrder::Structural) {
        buckets
            .entry(std::cmp::Reverse(kernel.cluster_top_level(cluster)))
            .or_default()
            .push(cluster);
    }
    let levels: Vec<Vec<usize>> = buckets.into_values().collect();
    let mut level_of = vec![0usize; kernel.num_clusters()];
    for (li, level) in levels.iter().enumerate() {
        for &c in level {
            level_of[c] = li;
        }
    }
    (levels, level_of)
}

fn saturation<K: FixpointKernel>(
    kernel: &mut K,
    max_iterations: Option<usize>,
) -> FixpointRun<K::Set> {
    let (mut levels, mut level_of) = saturation_buckets(kernel);
    let mut generation = kernel.order_generation();
    let num_clusters = kernel.num_clusters();
    // `feeds[c]` = the clusters whose pre-set intersects the post-set of
    // cluster `c`: the only clusters a productive firing of `c` can newly
    // enable. A transition becomes enabled exactly when a place of its
    // pre-set gets marked, so firing `c` dirties precisely these clusters
    // — the event-locality invariant saturation exploits.
    let feeds: Vec<Vec<usize>> = (0..num_clusters)
        .map(|c| {
            (0..num_clusters)
                .filter(|&b| kernel.cluster_feeds(c, b))
                .collect()
        })
        .collect();

    let mut reached = kernel.initial();
    kernel.protect(reached);

    let mut iterations = 0usize;
    let mut truncated = None;
    // Bottom-up passes over the level buckets, firing only *dirty*
    // clusters: every cluster starts dirty, firing cleans it, and a
    // productive firing re-dirties exactly the clusters it feeds. A dirty
    // level runs a nested inner fixpoint — it is re-swept until its own
    // firings stop feeding it — before any higher level fires, so the
    // deep tail of the diagram is saturated while it is still small, and
    // higher clusters only re-fire when a lower level changed under them.
    // The fixpoint is reached when nothing is dirty; clean clusters are
    // provably saturated (a transition newly enabled by a later firing
    // has a feeding ancestor that re-dirtied it), so no confirming image
    // pass is needed at all.
    let mut dirty = vec![true; num_clusters];
    let mut dirty_level = vec![true; levels.len()];
    'outer: while dirty_level.iter().any(|&d| d) {
        for li in 0..levels.len() {
            if !dirty_level[li] {
                continue;
            }
            loop {
                if let Some(limit) = max_iterations {
                    if iterations >= limit {
                        truncated = Some(TruncationReason::Iterations);
                        break 'outer;
                    }
                }
                governed!(truncated, 'outer, kernel.checkpoint());
                dirty_level[li] = false;
                let mut changed = false;
                for &cluster in &levels[li] {
                    if !dirty[cluster] {
                        continue;
                    }
                    dirty[cluster] = false;
                    let img = governed!(truncated, 'outer, kernel.cluster_image(cluster, reached));
                    // `union != reached` detects productivity directly;
                    // computing the difference first would walk the same
                    // diagrams twice.
                    let next_reached = governed!(truncated, 'outer, kernel.union(reached, img));
                    if next_reached == reached {
                        continue;
                    }
                    kernel.protect(next_reached);
                    kernel.unprotect(reached);
                    reached = next_reached;
                    changed = true;
                    for &fed in &feeds[cluster] {
                        dirty[fed] = true;
                        dirty_level[level_of[fed]] = true;
                    }
                }
                if !changed {
                    break;
                }
                iterations += 1;
                kernel.observe_pass(reached, iterations);
                kernel.maintain(iterations);
                if kernel.order_generation() != generation {
                    // Maintenance reordered the variables, so the level
                    // bucketing (keyed on cluster_top_level under the *old*
                    // order) is stale: what used to be the deepest bucket
                    // may now sit at the top. Rebuild the buckets for the
                    // new order — the per-cluster dirty flags carry over
                    // unchanged, only their level grouping moves — and
                    // restart the bottom-up scan.
                    generation = kernel.order_generation();
                    (levels, level_of) = saturation_buckets(kernel);
                    dirty_level = levels
                        .iter()
                        .map(|level| level.iter().any(|&c| dirty[c]))
                        .collect();
                    continue 'outer;
                }
                if !dirty_level[li] {
                    // The level's own firings fed nothing back into it:
                    // locally saturated without a confirm sweep.
                    break;
                }
            }
        }
    }

    FixpointRun {
        reached,
        iterations,
        truncated,
        critical_path: None,
    }
}

/// A pass-boundary observer for
/// [`SymbolicContext::reachable_markings_observed`]: receives the context,
/// the (protected) partial reached set and the 1-based pass count at every
/// productive pass boundary of the fixpoint.
pub type PassObserver<'h> = dyn FnMut(&SymbolicContext, Ref, usize) + 'h;

/// The BDD backend of the generic driver: cluster images through the
/// context's [`ImagePlan`], manager protection, adaptive GC and sifting.
struct BddFixpointKernel<'a, 'h> {
    ctx: &'a mut SymbolicContext,
    plan: Rc<ImagePlan>,
    sift: SiftPolicy,
    /// State of [`SiftPolicy::AdaptiveGrowth`]: the live node count when
    /// the order was last tuned (`0` = not yet observed).
    sift_baseline: usize,
    /// The traversal's start set: the initial marking, or its union with a
    /// resumed checkpoint seed. Computed (and protected) by the caller
    /// before the budget is installed.
    start: Ref,
    /// Optional pass-boundary callback (checkpointing rides here).
    observer: Option<&'a mut PassObserver<'h>>,
}

impl FixpointKernel for BddFixpointKernel<'_, '_> {
    type Set = Ref;

    fn empty(&self) -> Ref {
        self.ctx.manager().zero()
    }

    fn initial(&mut self) -> Ref {
        self.start
    }

    fn observe_pass(&mut self, reached: Ref, iteration: usize) {
        if let Some(observer) = self.observer.as_mut() {
            observer(&*self.ctx, reached, iteration);
        }
    }

    fn num_clusters(&self) -> usize {
        self.plan.num_clusters()
    }

    fn cluster_sequence(&self, order: ChainingOrder) -> Vec<usize> {
        match order {
            ChainingOrder::Structural => self.plan.structural_order().to_vec(),
            ChainingOrder::Index => (0..self.plan.num_clusters()).collect(),
        }
    }

    fn cluster_top_level(&self, cluster: usize) -> u32 {
        // The topmost *current* variable the cluster writes, at its level
        // in the present order (the saturation driver re-reads the levels
        // whenever order_generation reports a reordering).
        let manager = self.ctx.manager();
        self.plan.clusters()[cluster]
            .var_indices
            .iter()
            .map(|&i| manager.level_of(self.ctx.current_vars()[i]))
            .min()
            .unwrap_or(u32::MAX)
    }

    fn cluster_feeds(&self, from: usize, to: usize) -> bool {
        self.plan.cluster_feeds(from, to)
    }

    fn cluster_image(&mut self, cluster: usize, from: Ref) -> Result<Ref, Interrupt> {
        self.ctx.try_cluster_image(cluster, from)
    }

    fn union(&mut self, a: Ref, b: Ref) -> Result<Ref, Interrupt> {
        self.ctx.manager_mut().try_or(a, b)
    }

    fn diff(&mut self, a: Ref, b: Ref) -> Result<Ref, Interrupt> {
        self.ctx.manager_mut().try_diff(a, b)
    }

    fn checkpoint(&mut self) -> Result<(), Interrupt> {
        self.ctx.manager_mut().force_checkpoint()
    }

    fn protect(&mut self, s: Ref) {
        self.ctx.manager_mut().protect(s);
    }

    fn unprotect(&mut self, s: Ref) {
        self.ctx.manager_mut().unprotect(s);
    }

    fn maintain(&mut self, iteration: usize) {
        maintain_between_passes(self.ctx, self.sift, iteration, &mut self.sift_baseline);
    }

    fn order_generation(&self) -> u64 {
        self.ctx.manager().order_generation()
    }

    fn run_parallel(&mut self, threads: usize, max_iterations: Option<usize>) -> FixpointRun<Ref> {
        crate::parallel::parallel_fixpoint(
            self.ctx,
            Rc::clone(&self.plan),
            threads,
            max_iterations,
            self.sift,
        )
    }
}

impl SymbolicContext {
    /// Computes the set of reachable markings with default
    /// [`TraversalOptions`] (breadth-first from the frontier).
    pub fn reachable_markings(&mut self) -> ReachabilityResult {
        self.reachable_markings_with(TraversalOptions::default())
    }

    /// Computes the set of reachable markings under the strategy and
    /// policies of `options`, through the shared fixpoint driver.
    ///
    /// The returned [`ReachabilityResult::reached`] BDD is protected in the
    /// context's manager and remains valid until the context is dropped.
    pub fn reachable_markings_with(&mut self, options: TraversalOptions) -> ReachabilityResult {
        self.reachable_markings_observed(options, None, None)
    }

    /// [`reachable_markings_with`](Self::reachable_markings_with), resumable
    /// and observable: `seed` (a previously checkpointed partial reached
    /// set, valid in this manager) is folded into the start set, and
    /// `observer` fires at every productive pass boundary with the current
    /// (protected) reached set — the hook long-running fixpoints are
    /// checkpointed through.
    ///
    /// Resuming is always sound: the seed is a subset of the fixpoint, so
    /// the reached set converges to the same BDD as a cold run (only the
    /// pass count differs). Under [`FixpointStrategy::Parallel`] the seed
    /// and observer are ignored — the sharded driver restarts from the
    /// initial marking, which yields the same fixpoint.
    pub fn reachable_markings_observed(
        &mut self,
        options: TraversalOptions,
        seed: Option<Ref>,
        observer: Option<&mut PassObserver<'_>>,
    ) -> ReachabilityResult {
        let start = Instant::now();
        // Fold the resumed seed into the start set *before* the budget is
        // installed, so the union is never charged to — or interrupted
        // mid-operation by — the governed run itself.
        let start_set = match seed {
            Some(seed) => {
                let initial = self.initial_set();
                self.manager_mut().or(initial, seed)
            }
            None => self.initial_set(),
        };
        self.manager_mut().protect(start_set);
        // The manager's advisory threshold is the single source of truth for
        // the adaptive GC policy in the kernel's maintenance hook.
        self.manager_mut().set_gc_threshold(options.gc_threshold);
        if let Some(budget) = options.budget() {
            self.manager_mut().install_budget(budget);
        }
        let plan = self.image_plan();
        let mut kernel = BddFixpointKernel {
            ctx: self,
            plan,
            sift: options.sift,
            sift_baseline: 0,
            start: start_set,
            observer,
        };
        let run = run_fixpoint(&mut kernel, options.strategy, options.max_iterations);
        // The driver protects its own reached set; release the start set's
        // separate protection now that the run is over.
        self.manager_mut().unprotect(start_set);
        // Remove the (possibly breached) budget before computing the result
        // statistics: the manager is back to ungoverned operation and an
        // uninterrupted re-run on the same context completes normally.
        self.manager_mut().take_budget();

        let num_markings = self.count_markings(run.reached);
        let bdd_nodes = self.bdd_size(run.reached);
        let duration = start.elapsed();
        ReachabilityResult {
            reached: run.reached,
            num_markings,
            iterations: run.iterations,
            bdd_nodes,
            peak_live_nodes: self.manager().peak_live_nodes(),
            duration,
            critical_path: run.critical_path.unwrap_or(duration),
            truncated: run.truncated,
            strategy: options.strategy,
        }
    }

    /// Convenience: reachability plus symbolic deadlock detection.
    /// Returns the traversal result and the number of reachable deadlocked
    /// markings.
    pub fn analyze_deadlocks(&mut self, options: TraversalOptions) -> (ReachabilityResult, f64) {
        let result = self.reachable_markings_with(options);
        let dead = self.deadlocks_in(result.reached);
        let count = self.count_markings(dead);
        (result, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use pnsym_net::nets::{dme, figure1, muller, philosophers, slotted_ring, DmeStyle};
    use pnsym_net::PetriNet;
    use pnsym_structural::{find_smcs, CoverStrategy};

    fn schemes(net: &PetriNet) -> Vec<Encoding> {
        let smcs = find_smcs(net).unwrap();
        vec![
            Encoding::sparse(net),
            Encoding::dense(net, &smcs, CoverStrategy::Greedy, AssignmentStrategy::Gray),
            Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
        ]
    }

    fn all_strategies() -> [FixpointStrategy; 6] {
        [
            FixpointStrategy::Bfs { use_frontier: true },
            FixpointStrategy::Bfs {
                use_frontier: false,
            },
            FixpointStrategy::Chaining {
                order: ChainingOrder::Structural,
            },
            FixpointStrategy::Chaining {
                order: ChainingOrder::Index,
            },
            FixpointStrategy::Saturation,
            FixpointStrategy::Parallel { threads: 2 },
        ]
    }

    #[test]
    fn symbolic_counts_match_explicit_counts() {
        let nets = vec![
            figure1(),
            philosophers(2),
            philosophers(3),
            muller(4),
            slotted_ring(3),
            dme(3, DmeStyle::Spec),
        ];
        for net in nets {
            let expected = net.explore().unwrap().num_markings() as f64;
            for enc in schemes(&net) {
                let scheme = enc.scheme();
                let mut ctx = SymbolicContext::new(&net, enc);
                let result = ctx.reachable_markings();
                assert_eq!(
                    result.num_markings,
                    expected,
                    "{} under {:?}",
                    net.name(),
                    scheme
                );
                assert!(result.truncated.is_none());
                assert!(result.iterations > 0);
            }
        }
    }

    #[test]
    fn every_strategy_reaches_the_same_fixpoint() {
        for net in [figure1(), philosophers(3), muller(4), slotted_ring(3)] {
            let expected = net.explore().unwrap().num_markings() as f64;
            for enc in schemes(&net) {
                for strategy in all_strategies() {
                    let mut ctx = SymbolicContext::new(&net, enc.clone());
                    let result =
                        ctx.reachable_markings_with(TraversalOptions::with_strategy(strategy));
                    assert_eq!(
                        result.num_markings,
                        expected,
                        "{} under {:?} with {}",
                        net.name(),
                        enc.scheme(),
                        strategy
                    );
                    assert_eq!(result.strategy, strategy);
                    assert!(result.truncated.is_none());
                }
            }
        }
    }

    #[test]
    fn chaining_needs_fewer_passes_than_bfs_iterations() {
        // The acceptance pin of the chained strategy: on pipelined nets one
        // structural pass propagates a token many steps, so the pass count
        // drops strictly below the BFS iteration count.
        for net in [slotted_ring(3), dme(3, DmeStyle::Spec), muller(8)] {
            let smcs = find_smcs(&net).unwrap();
            let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
            let mut a = SymbolicContext::new(&net, enc.clone());
            let mut b = SymbolicContext::new(&net, enc);
            let bfs =
                a.reachable_markings_with(TraversalOptions::with_strategy(FixpointStrategy::Bfs {
                    use_frontier: true,
                }));
            let chained = b.reachable_markings_with(TraversalOptions::with_strategy(
                FixpointStrategy::Chaining {
                    order: ChainingOrder::Structural,
                },
            ));
            assert_eq!(bfs.num_markings, chained.num_markings, "{}", net.name());
            assert!(
                chained.iterations < bfs.iterations,
                "{}: chaining took {} passes vs {} BFS iterations",
                net.name(),
                chained.iterations,
                bfs.iterations
            );
        }
    }

    #[test]
    fn every_explicit_marking_is_in_the_symbolic_set() {
        let net = philosophers(2);
        let rg = net.explore().unwrap();
        for enc in schemes(&net) {
            let mut ctx = SymbolicContext::new(&net, enc);
            let result = ctx.reachable_markings();
            for m in rg.markings() {
                assert!(ctx.set_contains(result.reached, m));
            }
        }
    }

    #[test]
    fn frontier_and_full_breadth_first_agree() {
        let net = muller(3);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let mut a = SymbolicContext::new(&net, enc.clone());
        let mut b = SymbolicContext::new(&net, enc);
        let ra =
            a.reachable_markings_with(TraversalOptions::with_strategy(FixpointStrategy::Bfs {
                use_frontier: true,
            }));
        let rb =
            b.reachable_markings_with(TraversalOptions::with_strategy(FixpointStrategy::Bfs {
                use_frontier: false,
            }));
        assert_eq!(ra.num_markings, rb.num_markings);
    }

    #[test]
    fn deadlock_detection_matches_explicit() {
        let net = philosophers(3);
        let explicit = net.explore().unwrap().deadlocks(&net).len() as f64;
        for enc in schemes(&net) {
            for strategy in all_strategies() {
                let mut ctx = SymbolicContext::new(&net, enc.clone());
                let (_, dead) = ctx.analyze_deadlocks(TraversalOptions::with_strategy(strategy));
                assert_eq!(dead, explicit, "{strategy}");
            }
        }
    }

    #[test]
    fn max_iterations_truncates() {
        let net = muller(4);
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let result = ctx.reachable_markings_with(TraversalOptions {
            max_iterations: Some(1),
            ..TraversalOptions::default()
        });
        assert_eq!(result.truncated, Some(TruncationReason::Iterations));
        let full = SymbolicContext::new(&net, Encoding::sparse(&net))
            .reachable_markings()
            .num_markings;
        assert!(result.num_markings < full);
    }

    #[test]
    fn saturation_agrees_and_keeps_the_peak_small_on_pipelined_nets() {
        // Saturation computes the same fixpoint as BFS on every family; on
        // the deeply pipelined Muller nets its level-local firing keeps the
        // intermediate diagrams far below the BFS peak and converges in
        // fewer productive sweeps than BFS needs full-image iterations.
        for net in [slotted_ring(3), dme(3, DmeStyle::Spec), muller(8)] {
            let smcs = find_smcs(&net).unwrap();
            let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
            let mut a = SymbolicContext::new(&net, enc.clone());
            let mut b = SymbolicContext::new(&net, enc);
            let bfs =
                a.reachable_markings_with(TraversalOptions::with_strategy(FixpointStrategy::Bfs {
                    use_frontier: true,
                }));
            let sat = b.reachable_markings_with(TraversalOptions::with_strategy(
                FixpointStrategy::Saturation,
            ));
            assert_eq!(bfs.num_markings, sat.num_markings, "{}", net.name());
            assert!(sat.truncated.is_none());
            assert!(sat.iterations > 0);
            assert_eq!(sat.strategy, FixpointStrategy::Saturation);
            if net.name().starts_with("muller") {
                assert!(
                    sat.iterations < bfs.iterations,
                    "{}: saturation took {} sweeps vs {} BFS iterations",
                    net.name(),
                    sat.iterations,
                    bfs.iterations
                );
                assert!(
                    sat.peak_live_nodes < bfs.peak_live_nodes,
                    "{}: saturation peaked at {} live nodes vs {} for BFS",
                    net.name(),
                    sat.peak_live_nodes,
                    bfs.peak_live_nodes
                );
            }
        }
    }

    #[test]
    fn max_iterations_truncates_saturation_sweeps() {
        let net = muller(6);
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let result = ctx.reachable_markings_with(TraversalOptions {
            max_iterations: Some(1),
            strategy: FixpointStrategy::Saturation,
            ..TraversalOptions::default()
        });
        assert_eq!(result.truncated, Some(TruncationReason::Iterations));
        assert_eq!(result.iterations, 1);
        let full = SymbolicContext::new(&net, Encoding::sparse(&net))
            .reachable_markings()
            .num_markings;
        assert!(result.num_markings < full);
    }

    #[test]
    fn max_iterations_truncates_chaining_passes() {
        let net = muller(6);
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let result = ctx.reachable_markings_with(TraversalOptions {
            max_iterations: Some(1),
            strategy: FixpointStrategy::Chaining {
                order: ChainingOrder::Structural,
            },
            ..TraversalOptions::default()
        });
        assert_eq!(result.truncated, Some(TruncationReason::Iterations));
        assert_eq!(result.iterations, 1);
    }

    /// A three-cluster chain (`c0 → c1 → c2`) over bitmask sets whose
    /// `maintain` reorders the backend mid-run: the level assignment of the
    /// clusters inverts and `order_generation` bumps, exactly what a sift
    /// does under the BDD kernel. The fire log records the generation each
    /// image was computed under.
    struct ReorderingMockKernel {
        log: Vec<(usize, u64)>,
        generation: u64,
        reorder_at: usize,
    }

    impl FixpointKernel for ReorderingMockKernel {
        type Set = u64;

        fn empty(&self) -> u64 {
            0
        }
        fn initial(&mut self) -> u64 {
            0b1
        }
        fn num_clusters(&self) -> usize {
            3
        }
        fn cluster_sequence(&self, _order: ChainingOrder) -> Vec<usize> {
            vec![0, 1, 2]
        }
        fn cluster_top_level(&self, cluster: usize) -> u32 {
            // The mid-run reorder inverts the level assignment: cluster 0
            // starts deepest, cluster 2 ends deepest.
            if self.generation == 0 {
                [30, 20, 10][cluster]
            } else {
                [10, 20, 30][cluster]
            }
        }
        fn cluster_feeds(&self, from: usize, to: usize) -> bool {
            to == from + 1
        }
        fn cluster_image(&mut self, cluster: usize, from: u64) -> Result<u64, Interrupt> {
            self.log.push((cluster, self.generation));
            Ok(if from & (1 << cluster) != 0 {
                1 << (cluster + 1)
            } else {
                0
            })
        }
        fn union(&mut self, a: u64, b: u64) -> Result<u64, Interrupt> {
            Ok(a | b)
        }
        fn diff(&mut self, a: u64, b: u64) -> Result<u64, Interrupt> {
            Ok(a & !b)
        }
        fn maintain(&mut self, iteration: usize) {
            if iteration == self.reorder_at {
                self.generation += 1;
            }
        }
        fn order_generation(&self) -> u64 {
            self.generation
        }
    }

    #[test]
    fn saturation_rebuilds_level_buckets_after_a_mid_run_reorder() {
        let mut kernel = ReorderingMockKernel {
            log: Vec::new(),
            generation: 0,
            reorder_at: 1,
        };
        let run = run_fixpoint(&mut kernel, FixpointStrategy::Saturation, None);
        assert_eq!(run.reached, 0b1111);
        assert!(run.truncated.is_none());
        assert_eq!(kernel.generation, 1, "the mock must have reordered mid-run");
        // After the reorder, cluster 2 owns the deepest bucket, so the
        // bottom-up scan must visit it before cluster 1. With stale buckets
        // the scan instead carries on with the *old* deepest-first order and
        // fires cluster 1 next.
        let first_after_reorder = kernel
            .log
            .iter()
            .find(|&&(_, generation)| generation == 1)
            .map(|&(cluster, _)| cluster);
        assert_eq!(
            first_after_reorder,
            Some(2),
            "saturation kept firing under the stale level bucketing: {:?}",
            kernel.log
        );
    }

    #[test]
    fn sifting_during_traversal_preserves_the_answer() {
        let net = slotted_ring(3);
        let expected = net.explore().unwrap().num_markings() as f64;
        for strategy in all_strategies() {
            let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
            let result = ctx.reachable_markings_with(TraversalOptions {
                sift: SiftPolicy::EveryIterations(2),
                strategy,
                ..TraversalOptions::default()
            });
            assert_eq!(result.num_markings, expected, "{strategy}");
        }
    }

    #[test]
    fn adaptive_sifting_during_traversal_preserves_the_answer() {
        let net = slotted_ring(3);
        let expected = net.explore().unwrap().num_markings() as f64;
        for strategy in all_strategies() {
            let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
            let result = ctx.reachable_markings_with(TraversalOptions {
                sift: SiftPolicy::adaptive(),
                strategy,
                ..TraversalOptions::default()
            });
            assert_eq!(result.num_markings, expected, "{strategy}");
        }
    }

    #[test]
    fn adaptive_sift_trigger_fires_and_resets_its_baseline() {
        let net = philosophers(2);
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        // Populate the manager past the adaptive floor: all 2^12 minterms
        // over the first 12 variables, protected so maintenance keeps them
        // (the minterm chains share suffixes, totalling ~2^13 nodes).
        let vars = ctx.manager().variables()[..12].to_vec();
        for bits in 0u32..(1 << 12) {
            let m = ctx.manager_mut();
            let mut minterm = m.one();
            for (j, &v) in vars.iter().enumerate() {
                let lit = if bits & (1 << j) != 0 {
                    m.var(v)
                } else {
                    m.nvar(v)
                };
                minterm = m.and(minterm, lit);
            }
            m.protect(minterm);
        }
        assert!(ctx.manager().live_node_count() > ADAPTIVE_SIFT_FLOOR);
        // A baseline of 1 says the order was last tuned when the diagram
        // was tiny: the working set has grown far beyond 200% of it.
        let mut baseline = 1usize;
        maintain_between_passes(
            &mut ctx,
            SiftPolicy::AdaptiveGrowth { percent: 200 },
            1,
            &mut baseline,
        );
        assert!(baseline > 1, "the adaptive trigger must have sifted");
        assert_eq!(
            baseline,
            ctx.manager().live_node_count().max(1),
            "a fired trigger records the post-sift size as the new baseline"
        );
        // Without further growth the next pass must not sift again.
        let tuned = baseline;
        maintain_between_passes(
            &mut ctx,
            SiftPolicy::AdaptiveGrowth { percent: 200 },
            2,
            &mut baseline,
        );
        assert_eq!(baseline, tuned, "no re-sift without growth");
        assert!(ctx.manager().check_invariants().is_ok());
    }

    #[test]
    fn gc_during_traversal_preserves_the_answer() {
        // A tiny threshold forces collections after nearly every iteration,
        // exercising protection of the plan's cubes under both strategies.
        let net = slotted_ring(3);
        let expected = net.explore().unwrap().num_markings() as f64;
        for strategy in all_strategies() {
            let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
            let result = ctx.reachable_markings_with(TraversalOptions {
                gc_threshold: 64,
                strategy,
                ..TraversalOptions::default()
            });
            assert_eq!(result.num_markings, expected, "{strategy}");
            assert!(ctx.manager().stats().gc_runs > 0);
        }
    }

    #[test]
    fn peak_live_nodes_is_a_true_high_water_mark() {
        let net = muller(6);
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let before = ctx.manager().live_node_count();
        let result = ctx.reachable_markings();
        assert!(result.peak_live_nodes >= before);
        assert!(result.peak_live_nodes >= result.bdd_nodes);
        // The exact counter can only grow and never under-reports the
        // currently live set.
        assert!(result.peak_live_nodes >= ctx.manager().live_node_count());
        assert_eq!(result.peak_live_nodes, ctx.manager().peak_live_nodes());
    }

    #[test]
    fn dense_reached_set_is_smaller_on_muller() {
        let net = muller(6);
        let smcs = find_smcs(&net).unwrap();
        let mut sparse = SymbolicContext::new(&net, Encoding::sparse(&net));
        let mut dense = SymbolicContext::new(
            &net,
            Encoding::improved(&net, &smcs, AssignmentStrategy::Gray),
        );
        let rs = sparse.reachable_markings();
        let rd = dense.reachable_markings();
        assert_eq!(rs.num_markings, rd.num_markings);
        assert!(
            rd.bdd_nodes < rs.bdd_nodes,
            "dense ({}) should beat sparse ({})",
            rd.bdd_nodes,
            rs.bdd_nodes
        );
    }
}
