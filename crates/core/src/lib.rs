//! # pnsym-core — dense SMC-based encodings for symbolic Petri-net analysis
//!
//! This crate implements the contribution of Pastor & Cortadella,
//! *Efficient Encoding Schemes for Symbolic Analysis of Petri Nets*
//! (DATE 1998): symbolic (BDD-based) reachability analysis of safe Petri
//! nets under **dense state encodings** derived from the net's State Machine
//! Components, alongside the conventional sparse encoding and a ZDD-based
//! sparse engine used as baselines.
//!
//! ## Layers
//!
//! * [`Encoding`] — the three encoding schemes (sparse, dense, improved
//!   dense) as pure combinational data: variable blocks, place codes,
//!   Gray-code assignment ([`AssignmentStrategy`]).
//! * [`SymbolicContext`] — an encoding wired to a BDD manager:
//!   characteristic functions of places (eq. 4), enabling functions
//!   (eq. 5), per-transition constant effects (eq. 6), image computation and
//!   explicit transition relations.
//! * [`ImagePlan`] — the per-context precomputed image artefacts (enabling
//!   functions, quantification and target cubes), clustered by written
//!   variable set and protected across garbage collection.
//! * The pluggable fixpoint engine ([`FixpointStrategy`],
//!   [`TraversalOptions`], [`ReachabilityResult`]): one generic driver
//!   shared by the BDD and ZDD backends, with breadth-first, chained and
//!   level-saturating exploration, and the high-level [`analyze`] /
//!   [`analyze_zdd`] entry points producing the rows of the paper's
//!   tables.
//! * The CTL model checker: the [`Property`] language (combinators and a
//!   textual syntax via [`Property::parse`]), the full operator set
//!   (`EX EF EG AX AF AG EU AU`) as backward fixpoints over a precomputed
//!   [`PreImagePlan`], witness/counterexample extraction
//!   ([`SymbolicContext::check_property`], [`WitnessTrace`]) and the
//!   explicit-state oracle ([`ExplicitChecker`]).
//! * [`toggling`] — toggling-activity metrics (Figure 2, Section 5.2).
//!
//! ## Quick start
//!
//! ```
//! use pnsym_core::{analyze, AnalysisOptions};
//! use pnsym_net::nets::muller;
//!
//! # fn main() -> Result<(), pnsym_core::AnalysisError> {
//! let net = muller(6);
//! let sparse = analyze(&net, &AnalysisOptions::sparse())?;
//! let dense = analyze(&net, &AnalysisOptions::dense())?;
//! assert_eq!(sparse.num_markings, dense.num_markings);
//! assert!(dense.num_variables < sparse.num_variables);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod context;
pub mod encoding;
mod explicit;
mod image;
mod mc;
mod parallel;
pub mod plan;
pub mod preplan;
mod property;
pub mod server;
pub mod toggling;
mod trace;
mod traverse;
mod zdd_reach;

pub use analysis::{
    analyze, analyze_zdd, analyze_zdd_governed, analyze_zdd_with, build_encoding, AnalysisError,
    AnalysisOptions, AnalysisReport, DegradationStep, VariableOrder, ZddAnalysisReport,
};
pub use context::SymbolicContext;
pub use encoding::{AssignmentStrategy, Block, Encoding, SchemeKind};
pub use explicit::ExplicitChecker;
pub use image::TransitionEffect;
pub use mc::{CheckReport, PortfolioReport, TraceKind};
pub use plan::{ImageCluster, ImagePlan, PlannedTransition};
pub use preplan::{PreImageCluster, PreImagePlan, PrePlannedTransition};
pub use property::{Property, PropertyParseError};
pub use toggling::{
    per_variable_toggling, toggling_activity, toggling_of_state_codes, toggling_variable_order,
    TogglingReport,
};
pub use trace::WitnessTrace;
pub use traverse::{
    ChainingOrder, FixpointStrategy, PassObserver, ReachabilityResult, SiftPolicy,
    TraversalOptions, ADAPTIVE_SIFT_FLOOR,
};
pub use zdd_reach::{ZddContext, ZddReachabilityResult};

// Re-export the kernel's resource-governance vocabulary so downstream
// crates can configure budgets and match truncation reasons without
// depending on `pnsym-bdd` directly.
pub use pnsym_bdd::{Budget, Interrupt, TruncationReason};
#[cfg(feature = "fault-inject")]
pub use pnsym_bdd::{DiskFaultSchedule, DiskFaultSite, FaultSchedule, FaultSite};
