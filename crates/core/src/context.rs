//! The [`SymbolicContext`]: a Petri net, an [`Encoding`] and a BDD manager
//! wired together — characteristic functions of places (Section 5.1),
//! enabling functions (Section 5.3) and the encoded initial marking.

use crate::encoding::{Block, Encoding};
use crate::image::TransitionEffect;
use crate::plan::ImagePlan;
use crate::preplan::PreImagePlan;
use pnsym_bdd::{BddManager, ManagerStats, Ref, VarId};
use pnsym_net::{Marking, PetriNet, PlaceId, TransitionId};
use std::rc::Rc;

/// A symbolic analysis context for one net and one encoding.
///
/// The context owns the [`BddManager`]; every BDD it hands out lives in that
/// manager. The characteristic functions, enabling functions and the initial
/// set are protected from garbage collection for the lifetime of the
/// context.
///
/// # Examples
///
/// ```
/// use pnsym_core::{Encoding, SymbolicContext};
/// use pnsym_net::nets::figure1;
///
/// let net = figure1();
/// let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
/// let init = ctx.initial_set();
/// assert_eq!(ctx.count_markings(init), 1.0);
/// ```
pub struct SymbolicContext {
    net: PetriNet,
    encoding: Encoding,
    manager: BddManager,
    current_vars: Vec<VarId>,
    next_vars: Vec<VarId>,
    chi: Vec<Ref>,
    enabling: Vec<Ref>,
    initial: Ref,
    /// Memoized constant effects (eq. 6), one per transition.
    effects: Vec<TransitionEffect>,
    /// The precomputed image plan, built lazily on first image computation.
    plan: Option<Rc<ImagePlan>>,
    /// The precomputed pre-image plan, built lazily on first backward step.
    pre_plan: Option<Rc<PreImagePlan>>,
}

impl std::fmt::Debug for SymbolicContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicContext")
            .field("net", &self.net.name())
            .field("scheme", &self.encoding.scheme())
            .field("state_vars", &self.encoding.num_vars())
            .finish()
    }
}

impl SymbolicContext {
    /// Builds the context: allocates interleaved current/next BDD variables,
    /// the characteristic function of every place, the enabling function of
    /// every transition, and the encoded initial marking.
    ///
    /// # Panics
    ///
    /// Panics if `encoding` was built for a different net (mismatched place
    /// or transition counts).
    pub fn new(net: &PetriNet, encoding: Encoding) -> Self {
        let n = encoding.num_vars();
        let mut manager = BddManager::new();
        // Interleave current (even levels) and next (odd levels) variables.
        let mut current_vars = Vec::with_capacity(n);
        let mut next_vars = Vec::with_capacity(n);
        for _ in 0..n {
            current_vars.push(manager.add_var());
            next_vars.push(manager.add_var());
        }

        // Characteristic functions, built owner-first so that the recursive
        // exclusions of eq. (4) only reference already-built functions.
        let mut chi: Vec<Option<Ref>> = vec![None; net.num_places()];
        for p in net.places() {
            build_chi(&mut manager, &encoding, &current_vars, p, &mut chi);
        }
        let chi: Vec<Ref> = chi.into_iter().map(|c| c.expect("chi built")).collect();
        for &c in &chi {
            manager.protect(c);
        }

        // Enabling functions E_t = AND of [p] over the pre-set (eq. 5).
        let mut enabling = Vec::with_capacity(net.num_transitions());
        for t in net.transitions() {
            let lits: Vec<Ref> = net.pre_set(t).iter().map(|&p| chi[p.index()]).collect();
            let e = manager.and_many(&lits);
            manager.protect(e);
            enabling.push(e);
        }

        // Encoded initial marking.
        let bits = encoding.encode_marking(net.initial_marking());
        let lits: Vec<(VarId, bool)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (current_vars[i], b))
            .collect();
        let initial = manager.cube(&lits);
        manager.protect(initial);

        // Memoize the constant effect of every transition (eq. 6): it is
        // pure combinational data, and the image machinery consults it on
        // every firing of every iteration.
        let effects = net
            .transitions()
            .map(|t| crate::image::compute_transition_effect(net, &encoding, t))
            .collect();

        SymbolicContext {
            net: net.clone(),
            encoding,
            manager,
            current_vars,
            next_vars,
            chi,
            enabling,
            initial,
            effects,
            plan: None,
            pre_plan: None,
        }
    }

    /// The memoized constant effect of `t` on the state variables (eq. 6).
    pub fn transition_effect(&self, t: TransitionId) -> &TransitionEffect {
        &self.effects[t.index()]
    }

    /// The precomputed [`ImagePlan`] of this context, built on first use.
    ///
    /// The plan's BDDs (enabling functions, quantification cubes, target
    /// cubes) are protected in the manager, so the plan stays valid across
    /// garbage collection and reordering for the context's lifetime. The
    /// returned handle is cheap to clone and does not borrow the context.
    pub fn image_plan(&mut self) -> Rc<ImagePlan> {
        if self.plan.is_none() {
            let plan = ImagePlan::build(self);
            self.plan = Some(Rc::new(plan));
        }
        Rc::clone(self.plan.as_ref().expect("plan just built"))
    }

    /// The precomputed [`PreImagePlan`] of this context, built on first use
    /// (typically by a CTL fixpoint or a witness reconstruction).
    ///
    /// Like the forward [`ImagePlan`], the plan's BDDs are protected in the
    /// manager, so the plan stays valid across garbage collection and
    /// reordering for the context's lifetime. The returned handle is cheap
    /// to clone and does not borrow the context.
    pub fn pre_image_plan(&mut self) -> Rc<PreImagePlan> {
        if self.pre_plan.is_none() {
            let plan = PreImagePlan::build(self);
            self.pre_plan = Some(Rc::new(plan));
        }
        Rc::clone(self.pre_plan.as_ref().expect("pre-plan just built"))
    }

    /// The analysed net.
    pub fn net(&self) -> &PetriNet {
        &self.net
    }

    /// The encoding in use.
    pub fn encoding(&self) -> &Encoding {
        &self.encoding
    }

    /// Shared access to the underlying BDD manager.
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }

    /// Mutable access to the underlying BDD manager (for counting, DOT
    /// export or custom operations on the sets produced by this context).
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.manager
    }

    /// Statistics snapshot of the underlying BDD manager (node counts,
    /// unique-table load, computed-cache hit rates, GC activity).
    pub fn stats(&self) -> ManagerStats {
        self.manager.stats()
    }

    /// The BDD variables encoding the *current* state, indexed by state
    /// variable.
    pub fn current_vars(&self) -> &[VarId] {
        &self.current_vars
    }

    /// The BDD variables encoding the *next* state (used by the explicit
    /// transition relations).
    pub fn next_vars(&self) -> &[VarId] {
        &self.next_vars
    }

    /// The characteristic function `[p]` of place `p`: the set of encoded
    /// markings in which `p` holds a token (Section 5.1, eq. 4).
    pub fn place_fn(&self, p: PlaceId) -> Ref {
        self.chi[p.index()]
    }

    /// The enabling function `E_t` of transition `t` (eq. 5).
    pub fn enabling_fn(&self, t: TransitionId) -> Ref {
        self.enabling[t.index()]
    }

    /// The encoded initial marking as a singleton set.
    pub fn initial_set(&self) -> Ref {
        self.initial
    }

    /// Encodes a single marking as a one-element set over the current
    /// variables.
    pub fn marking_to_bdd(&mut self, m: &Marking) -> Ref {
        let bits = self.encoding.encode_marking(m);
        let lits: Vec<(VarId, bool)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (self.current_vars[i], b))
            .collect();
        self.manager.cube(&lits)
    }

    /// Whether the encoded marking `m` belongs to the set `set`.
    pub fn set_contains(&self, set: Ref, m: &Marking) -> bool {
        let bits = self.encoding.encode_marking(m);
        let vars = self.current_vars.clone();
        self.manager.eval(set, |v| {
            vars.iter()
                .position(|&cv| cv == v)
                .map(|i| bits[i])
                .unwrap_or(false)
        })
    }

    /// Number of markings in a set of encoded markings (exact for counts
    /// below 2^53). Because the encoding is injective this equals the BDD
    /// satisfying-assignment count over the current state variables.
    pub fn count_markings(&self, set: Ref) -> f64 {
        self.manager.sat_count(set, self.encoding.num_vars())
    }

    /// Number of BDD nodes of `set`.
    pub fn bdd_size(&self, set: Ref) -> usize {
        self.manager.node_count(set)
    }

    /// The set of encoded markings in which at least one transition is
    /// enabled; its complement within the reached set are the deadlocks.
    pub fn any_enabled(&mut self) -> Ref {
        let enab = self.enabling.clone();
        self.manager.or_many(&enab)
    }

    /// The deadlocked markings within `set`.
    pub fn deadlocks_in(&mut self, set: Ref) -> Ref {
        let any = self.any_enabled();
        self.manager.diff(set, any)
    }
}

/// Builds `[p]` recursively, memoising into `out`.
fn build_chi(
    manager: &mut BddManager,
    encoding: &Encoding,
    current_vars: &[VarId],
    p: PlaceId,
    out: &mut Vec<Option<Ref>>,
) -> Ref {
    if let Some(r) = out[p.index()] {
        return r;
    }
    let owner = encoding.owner_of_place(p);
    let result = match &encoding.blocks()[owner] {
        Block::Place { var, .. } => manager.var(current_vars[*var]),
        Block::Smc {
            places,
            codes,
            vars,
            ..
        } => {
            let j = places.iter().position(|&q| q == p).expect("owner lists p");
            let code = codes[j];
            // First factor: the block's variables spell p's code.
            let lits: Vec<(VarId, bool)> = vars
                .iter()
                .enumerate()
                .map(|(b, &v)| (current_vars[v], code & (1 << b) != 0))
                .collect();
            let mut acc = manager.cube(&lits);
            // Second factor: no place sharing the code is marked according
            // to its own (earlier) owner block.
            let sharing: Vec<PlaceId> = places
                .iter()
                .enumerate()
                .filter(|&(k, &q)| {
                    q != p && codes[k] == code && encoding.owner_of_place(q) != owner
                })
                .map(|(_, &q)| q)
                .collect();
            for q in sharing {
                let chi_q = build_chi(manager, encoding, current_vars, q, out);
                let not_q = manager.not(chi_q);
                acc = manager.and(acc, not_q);
            }
            acc
        }
    };
    out[p.index()] = Some(result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::AssignmentStrategy;
    use pnsym_net::nets::{figure1, philosophers};
    use pnsym_structural::{find_smcs, CoverStrategy};

    fn contexts(net: &PetriNet) -> Vec<SymbolicContext> {
        let smcs = find_smcs(net).unwrap();
        vec![
            SymbolicContext::new(net, Encoding::sparse(net)),
            SymbolicContext::new(
                net,
                Encoding::dense(net, &smcs, CoverStrategy::Exact, AssignmentStrategy::Gray),
            ),
            SymbolicContext::new(
                net,
                Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
            ),
        ]
    }

    #[test]
    fn characteristic_functions_agree_with_markings() {
        for net in [figure1(), philosophers(2)] {
            let rg = net.explore().unwrap();
            for mut ctx in contexts(&net) {
                for m in rg.markings() {
                    let cube = ctx.marking_to_bdd(m);
                    for p in net.places() {
                        let chi = ctx.place_fn(p);
                        let inter = ctx.manager_mut().and(cube, chi);
                        let marked = inter != ctx.manager().zero();
                        assert_eq!(
                            marked,
                            m.is_marked(p),
                            "[{}] on {} under {:?}",
                            net.place_name(p),
                            m,
                            ctx.encoding().scheme()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn table2_characteristic_functions_shape() {
        // For the improved encoding of the 2-philosopher net, places owned
        // by overlap blocks must exclude their code-sharing partners
        // (cf. Table 2: [p3] = x5'·(x1 + x2)).
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let ctx = SymbolicContext::new(&net, enc);
        for p in net.places() {
            let chi = ctx.place_fn(p);
            let support = ctx.manager().support(chi);
            assert!(!support.is_empty(), "[{}] is constant", net.place_name(p));
        }
    }

    #[test]
    fn enabling_functions_match_explicit_enabledness() {
        let net = figure1();
        let rg = net.explore().unwrap();
        for mut ctx in contexts(&net) {
            for m in rg.markings() {
                let cube = ctx.marking_to_bdd(m);
                for t in net.transitions() {
                    let e = ctx.enabling_fn(t);
                    let inter = ctx.manager_mut().and(cube, e);
                    assert_eq!(
                        inter != ctx.manager().zero(),
                        net.is_enabled(m, t),
                        "E_{} on {}",
                        net.transition_name(t),
                        m
                    );
                }
            }
        }
    }

    #[test]
    fn initial_set_is_the_initial_marking() {
        let net = figure1();
        for ctx in contexts(&net) {
            let init = ctx.initial_set();
            assert_eq!(ctx.count_markings(init), 1.0);
            let m0 = ctx.net().initial_marking().clone();
            assert!(ctx.set_contains(init, &m0));
        }
    }

    #[test]
    fn deadlock_free_net_has_empty_deadlock_set() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            // The full potential space may contain deadlock codes, but the
            // initial marking itself always enables something here.
            let init = ctx.initial_set();
            let dead = ctx.deadlocks_in(init);
            assert_eq!(dead, ctx.manager().zero());
        }
    }

    #[test]
    fn variable_count_matches_encoding() {
        let net = philosophers(2);
        for ctx in &contexts(&net) {
            assert_eq!(ctx.current_vars().len(), ctx.encoding().num_vars());
            assert_eq!(ctx.next_vars().len(), ctx.encoding().num_vars());
            assert_eq!(
                ctx.manager().num_vars(),
                2 * ctx.encoding().num_vars(),
                "current and next variables are interleaved"
            );
        }
    }
}
