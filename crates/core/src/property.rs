//! The CTL property language: an AST of state predicates and temporal
//! operators, plus a hand-rolled parser resolving place names against a net.
//!
//! Atomic propositions are place markings ("place `p` holds a token"), so
//! typical Petri-net questions — mutual exclusion, reachability of a partial
//! marking, inevitability of progress, absence of deadlock — can be phrased
//! directly against the paper's encodings and checked by the symbolic engine
//! of [`crate::SymbolicContext`].
//!
//! # Concrete syntax
//!
//! ```text
//! formula  := or ( "->" formula )?          right-associative implication
//! or       := and ( ("|" | "||") and )*
//! and      := unary ( ("&" | "&&") unary )*
//! unary    := "!" unary
//!           | ("EX"|"EF"|"EG"|"AX"|"AF"|"AG") unary
//!           | "E" "[" formula "U" formula "]"
//!           | "A" "[" formula "U" formula "]"
//!           | "true" | "false" | "(" formula ")" | place-name
//! ```
//!
//! Place names are identifiers over `[A-Za-z0-9_.]` starting with a letter
//! or underscore (the bundled generators use names like `eating.0` or
//! `token_at.2`); the operator words `EX EF EG AX AF AG E A U true false`
//! are reserved. Implication `p -> q` is desugared to `!p | q` during
//! parsing, so the AST stays minimal.

use pnsym_net::{PetriNet, PlaceId};
use std::fmt;

/// A CTL state formula over place predicates.
///
/// Boolean combinators ([`Property::and`], [`Property::or`],
/// [`Property::not`]) build plain state predicates; the temporal
/// constructors ([`Property::ex`], [`Property::ef`], [`Property::eg`],
/// [`Property::ax`], [`Property::af`], [`Property::ag`], [`Property::eu`],
/// [`Property::au`]) quantify over the firing sequences of the net.
/// Formulas can also be parsed from text with [`Property::parse`].
///
/// # Examples
///
/// ```
/// use pnsym_core::{Encoding, Property, SymbolicContext};
/// use pnsym_net::nets::figure1;
///
/// let net = figure1();
/// let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
/// let p2 = net.place_by_name("p2").unwrap();
/// let p3 = net.place_by_name("p3").unwrap();
/// // "p2 and p3 marked together" is reachable in Figure 1 (marking M1).
/// let both = Property::place(p2).and(Property::place(p3));
/// assert!(ctx.check_reachable(&both));
/// // The same query in the textual language:
/// let parsed = Property::parse("EF (p2 & p3)", &net).unwrap();
/// assert!(ctx.check_property(&parsed).holds);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Property {
    /// The given place is marked.
    Place(PlaceId),
    /// Boolean negation.
    Not(Box<Property>),
    /// Boolean conjunction.
    And(Box<Property>, Box<Property>),
    /// Boolean disjunction.
    Or(Box<Property>, Box<Property>),
    /// The constant true predicate.
    True,
    /// The constant false predicate.
    False,
    /// CTL `EX φ`: some successor satisfies `φ`.
    Ex(Box<Property>),
    /// CTL `EF φ`: some path reaches a state satisfying `φ`.
    Ef(Box<Property>),
    /// CTL `EG φ`: some infinite path stays in `φ` forever.
    Eg(Box<Property>),
    /// CTL `AX φ`: every successor satisfies `φ` (vacuously true at
    /// deadlocked states).
    Ax(Box<Property>),
    /// CTL `AF φ`: every infinite path eventually reaches `φ`.
    Af(Box<Property>),
    /// CTL `AG φ`: every reachable state satisfies `φ`.
    Ag(Box<Property>),
    /// CTL `E[φ U ψ]`: some path satisfies `φ` until it reaches `ψ`.
    Eu(Box<Property>, Box<Property>),
    /// CTL `A[φ U ψ]`: every path satisfies `φ` until it reaches `ψ`.
    Au(Box<Property>, Box<Property>),
}

impl Property {
    /// The predicate "place `p` is marked".
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p1 = net.place_by_name("p1").unwrap();
    /// assert_eq!(Property::place(p1), Property::Place(p1));
    /// ```
    pub fn place(p: PlaceId) -> Property {
        Property::Place(p)
    }

    /// Negation of the predicate.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p = Property::place(net.place_by_name("p1").unwrap());
    /// assert_eq!(p.clone().not(), Property::parse("!p1", &net).unwrap());
    /// ```
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Property {
        Property::Not(Box::new(self))
    }

    /// Conjunction with another predicate.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// let p3 = Property::place(net.place_by_name("p3").unwrap());
    /// assert_eq!(p2.and(p3), Property::parse("p2 & p3", &net).unwrap());
    /// ```
    pub fn and(self, other: Property) -> Property {
        Property::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another predicate.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// let p3 = Property::place(net.place_by_name("p3").unwrap());
    /// assert_eq!(p2.or(p3), Property::parse("p2 | p3", &net).unwrap());
    /// ```
    pub fn or(self, other: Property) -> Property {
        Property::Or(Box::new(self), Box::new(other))
    }

    /// Implication `self -> other`, desugared to `!self | other` (the same
    /// desugaring the parser applies to `->`).
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// let p3 = Property::place(net.place_by_name("p3").unwrap());
    /// assert_eq!(p2.implies(p3), Property::parse("p2 -> p3", &net).unwrap());
    /// ```
    pub fn implies(self, other: Property) -> Property {
        self.not().or(other)
    }

    /// Conjunction of "marked" predicates over a set of places (a partial
    /// marking).
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p6 = net.place_by_name("p6").unwrap();
    /// let p7 = net.place_by_name("p7").unwrap();
    /// let both = Property::all_marked(&[p6, p7]);
    /// assert_eq!(both.display(&net), "true & p6 & p7");
    /// ```
    pub fn all_marked(places: &[PlaceId]) -> Property {
        places
            .iter()
            .fold(Property::True, |acc, &p| acc.and(Property::place(p)))
    }

    /// CTL `EX φ`: some successor satisfies `φ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// assert_eq!(Property::ex(p2), Property::parse("EX p2", &net).unwrap());
    /// ```
    pub fn ex(inner: Property) -> Property {
        Property::Ex(Box::new(inner))
    }

    /// CTL `EF φ`: some firing sequence reaches a state satisfying `φ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p6 = Property::place(net.place_by_name("p6").unwrap());
    /// assert_eq!(Property::ef(p6), Property::parse("EF p6", &net).unwrap());
    /// ```
    pub fn ef(inner: Property) -> Property {
        Property::Ef(Box::new(inner))
    }

    /// CTL `EG φ`: some infinite firing sequence stays in `φ` forever.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p1 = Property::place(net.place_by_name("p1").unwrap());
    /// assert_eq!(
    ///     Property::eg(p1.not()),
    ///     Property::parse("EG !p1", &net).unwrap()
    /// );
    /// ```
    pub fn eg(inner: Property) -> Property {
        Property::Eg(Box::new(inner))
    }

    /// CTL `AX φ`: every successor satisfies `φ`. Vacuously true at a
    /// deadlocked state (which has no successors).
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// assert_eq!(Property::ax(p2), Property::parse("AX p2", &net).unwrap());
    /// ```
    pub fn ax(inner: Property) -> Property {
        Property::Ax(Box::new(inner))
    }

    /// CTL `AF φ`: every infinite firing sequence eventually reaches `φ`
    /// (deadlocked states satisfy it vacuously; see
    /// [`SymbolicContext::af`](crate::SymbolicContext::af)).
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p6 = Property::place(net.place_by_name("p6").unwrap());
    /// assert_eq!(Property::af(p6), Property::parse("AF p6", &net).unwrap());
    /// ```
    pub fn af(inner: Property) -> Property {
        Property::Af(Box::new(inner))
    }

    /// CTL `AG φ`: every reachable state satisfies `φ` (an invariant).
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// let p4 = Property::place(net.place_by_name("p4").unwrap());
    /// assert_eq!(
    ///     Property::ag(p2.and(p4).not()),
    ///     Property::parse("AG !(p2 & p4)", &net).unwrap()
    /// );
    /// ```
    pub fn ag(inner: Property) -> Property {
        Property::Ag(Box::new(inner))
    }

    /// CTL `E[φ U ψ]`: some firing sequence satisfies `φ` at every state
    /// until it reaches a state satisfying `ψ`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// let p6 = Property::place(net.place_by_name("p6").unwrap());
    /// assert_eq!(
    ///     Property::eu(p2, p6),
    ///     Property::parse("E[p2 U p6]", &net).unwrap()
    /// );
    /// ```
    pub fn eu(hold: Property, until: Property) -> Property {
        Property::Eu(Box::new(hold), Box::new(until))
    }

    /// CTL `A[φ U ψ]`: every firing sequence satisfies `φ` at every state
    /// until it reaches a state satisfying `ψ` (deadlocked states satisfy
    /// it vacuously; see [`SymbolicContext::au`](crate::SymbolicContext::au)).
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::figure1;
    ///
    /// let net = figure1();
    /// let p2 = Property::place(net.place_by_name("p2").unwrap());
    /// let p6 = Property::place(net.place_by_name("p6").unwrap());
    /// assert_eq!(
    ///     Property::au(p2, p6),
    ///     Property::parse("A[p2 U p6]", &net).unwrap()
    /// );
    /// ```
    pub fn au(hold: Property, until: Property) -> Property {
        Property::Au(Box::new(hold), Box::new(until))
    }

    /// Whether the formula is purely boolean (no temporal operator), so it
    /// denotes a set of markings independent of the transition relation.
    pub fn is_boolean(&self) -> bool {
        match self {
            Property::Place(_) | Property::True | Property::False => true,
            Property::Not(a) => a.is_boolean(),
            Property::And(a, b) | Property::Or(a, b) => a.is_boolean() && b.is_boolean(),
            Property::Ex(_)
            | Property::Ef(_)
            | Property::Eg(_)
            | Property::Ax(_)
            | Property::Af(_)
            | Property::Ag(_)
            | Property::Eu(_, _)
            | Property::Au(_, _) => false,
        }
    }

    /// Parses a formula of the concrete syntax, resolving place names
    /// against `net`.
    ///
    /// The grammar (binding weakest to tightest):
    ///
    /// ```text
    /// formula  := or ( "->" formula )?          right-associative implication
    /// or       := and ( ("|" | "||") and )*
    /// and      := unary ( ("&" | "&&") unary )*
    /// unary    := "!" unary
    ///           | ("EX"|"EF"|"EG"|"AX"|"AF"|"AG") unary
    ///           | "E" "[" formula "U" formula "]"
    ///           | "A" "[" formula "U" formula "]"
    ///           | "true" | "false" | "(" formula ")" | place-name
    /// ```
    ///
    /// Place names are identifiers over `[A-Za-z0-9_.]` starting with a
    /// letter or underscore (the bundled generators use names like
    /// `eating.0` or `token_at.2`); the operator words
    /// `EX EF EG AX AF AG E A U true false` are reserved. Implication
    /// `p -> q` is desugared to `!p | q` during parsing.
    ///
    /// # Errors
    ///
    /// Returns a [`PropertyParseError`] with the byte offset of the problem
    /// for syntax errors and unknown place names.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::Property;
    /// use pnsym_net::nets::{dme, DmeStyle};
    ///
    /// let net = dme(3, DmeStyle::Spec);
    /// let mutex = Property::parse("AG !(critical.0 & critical.1)", &net).unwrap();
    /// assert_eq!(mutex.display(&net), "AG !(critical.0 & critical.1)");
    /// assert!(Property::parse("AG nonsuch", &net).is_err());
    /// ```
    pub fn parse(input: &str, net: &PetriNet) -> Result<Property, PropertyParseError> {
        let mut parser = Parser {
            tokens: tokenize(input)?,
            pos: 0,
            net,
            len: input.len(),
        };
        let formula = parser.formula()?;
        match parser.peek() {
            None => Ok(formula),
            Some(t) => Err(PropertyParseError {
                position: t.position,
                message: format!("unexpected `{}` after the formula", t.kind.describe()),
            }),
        }
    }

    /// Renders the formula in the concrete syntax, using the place names of
    /// `net`. The output round-trips through [`Property::parse`].
    pub fn display(&self, net: &PetriNet) -> String {
        let mut out = String::new();
        self.write(net, &mut out, 0);
        out
    }

    /// Writes `self` into `out`; `parent` is the binding strength of the
    /// enclosing operator (0 = none, 1 = or, 2 = and), used to decide
    /// parenthesisation.
    fn write(&self, net: &PetriNet, out: &mut String, parent: u8) {
        let needs_parens = |prec: u8| prec < parent;
        match self {
            Property::Place(p) => out.push_str(net.place_name(*p)),
            Property::True => out.push_str("true"),
            Property::False => out.push_str("false"),
            Property::Not(a) => {
                out.push('!');
                if matches!(
                    **a,
                    Property::And(_, _) | Property::Or(_, _) | Property::Eu(_, _)
                ) {
                    out.push('(');
                    a.write(net, out, 0);
                    out.push(')');
                } else {
                    a.write(net, out, 3);
                }
            }
            Property::And(a, b) => {
                if needs_parens(2) {
                    out.push('(');
                    a.write(net, out, 2);
                    out.push_str(" & ");
                    b.write(net, out, 3);
                    out.push(')');
                } else {
                    a.write(net, out, 2);
                    out.push_str(" & ");
                    b.write(net, out, 3);
                }
            }
            Property::Or(a, b) => {
                if needs_parens(1) {
                    out.push('(');
                    a.write(net, out, 1);
                    out.push_str(" | ");
                    b.write(net, out, 2);
                    out.push(')');
                } else {
                    a.write(net, out, 1);
                    out.push_str(" | ");
                    b.write(net, out, 2);
                }
            }
            Property::Ex(a) => Self::write_prefix("EX", a, net, out, parent),
            Property::Ef(a) => Self::write_prefix("EF", a, net, out, parent),
            Property::Eg(a) => Self::write_prefix("EG", a, net, out, parent),
            Property::Ax(a) => Self::write_prefix("AX", a, net, out, parent),
            Property::Af(a) => Self::write_prefix("AF", a, net, out, parent),
            Property::Ag(a) => Self::write_prefix("AG", a, net, out, parent),
            Property::Eu(a, b) => Self::write_until('E', a, b, net, out),
            Property::Au(a, b) => Self::write_until('A', a, b, net, out),
        }
    }

    fn write_prefix(op: &str, inner: &Property, net: &PetriNet, out: &mut String, parent: u8) {
        // A prefix operator binds like unary negation; its argument is
        // parenthesised whenever it is a binary boolean formula.
        let _ = parent;
        out.push_str(op);
        out.push(' ');
        if matches!(inner, Property::And(_, _) | Property::Or(_, _)) {
            out.push('(');
            inner.write(net, out, 0);
            out.push(')');
        } else {
            inner.write(net, out, 3);
        }
    }

    fn write_until(path: char, a: &Property, b: &Property, net: &PetriNet, out: &mut String) {
        out.push(path);
        out.push('[');
        a.write(net, out, 0);
        out.push_str(" U ");
        b.write(net, out, 0);
        out.push(']');
    }
}

/// A syntax or name-resolution error from [`Property::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for PropertyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for PropertyParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenKind {
    Ident(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Bang,
    Amp,
    Pipe,
    Arrow,
}

impl TokenKind {
    fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::LParen => "(".into(),
            TokenKind::RParen => ")".into(),
            TokenKind::LBracket => "[".into(),
            TokenKind::RBracket => "]".into(),
            TokenKind::Bang => "!".into(),
            TokenKind::Amp => "&".into(),
            TokenKind::Pipe => "|".into(),
            TokenKind::Arrow => "->".into(),
        }
    }
}

#[derive(Debug, Clone)]
struct Token {
    kind: TokenKind,
    position: usize,
}

fn tokenize(input: &str) -> Result<Vec<Token>, PropertyParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let position = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
                continue;
            }
            '(' => tokens.push(Token {
                kind: TokenKind::LParen,
                position,
            }),
            ')' => tokens.push(Token {
                kind: TokenKind::RParen,
                position,
            }),
            '[' => tokens.push(Token {
                kind: TokenKind::LBracket,
                position,
            }),
            ']' => tokens.push(Token {
                kind: TokenKind::RBracket,
                position,
            }),
            '!' => tokens.push(Token {
                kind: TokenKind::Bang,
                position,
            }),
            '&' => {
                // `&&` is accepted as an alias of `&`.
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Amp,
                    position,
                });
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    position,
                });
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    i += 1;
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        position,
                    });
                } else {
                    return Err(PropertyParseError {
                        position,
                        message: "expected `->` after `-`".into(),
                    });
                }
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    position,
                });
                continue;
            }
            _ => {
                return Err(PropertyParseError {
                    position,
                    message: format!("unexpected character `{c}`"),
                });
            }
        }
        i += 1;
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    net: &'a PetriNet,
    len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> PropertyParseError {
        PropertyParseError {
            position: self.peek().map_or(self.len, |t| t.position),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), PropertyParseError> {
        match self.peek() {
            Some(t) if t.kind == *kind => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(PropertyParseError {
                position: t.position,
                message: format!(
                    "expected `{}`, found `{}`",
                    kind.describe(),
                    t.kind.describe()
                ),
            }),
            None => Err(self.error_here(format!("expected `{}` at end of input", kind.describe()))),
        }
    }

    /// `formula := or ( "->" formula )?`, right-associative.
    fn formula(&mut self) -> Result<Property, PropertyParseError> {
        let left = self.or()?;
        if matches!(self.peek(), Some(t) if t.kind == TokenKind::Arrow) {
            self.pos += 1;
            let right = self.formula()?;
            return Ok(left.implies(right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<Property, PropertyParseError> {
        let mut acc = self.and()?;
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::Pipe) {
            self.pos += 1;
            let rhs = self.and()?;
            acc = acc.or(rhs);
        }
        Ok(acc)
    }

    fn and(&mut self) -> Result<Property, PropertyParseError> {
        let mut acc = self.unary()?;
        while matches!(self.peek(), Some(t) if t.kind == TokenKind::Amp) {
            self.pos += 1;
            let rhs = self.unary()?;
            acc = acc.and(rhs);
        }
        Ok(acc)
    }

    fn unary(&mut self) -> Result<Property, PropertyParseError> {
        let token = match self.next() {
            Some(t) => t,
            None => return Err(self.error_here("expected a formula, found end of input")),
        };
        match token.kind {
            TokenKind::Bang => Ok(self.unary()?.not()),
            TokenKind::LParen => {
                let inner = self.formula()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(word) => self.ident(word, token.position),
            other => Err(PropertyParseError {
                position: token.position,
                message: format!("expected a formula, found `{}`", other.describe()),
            }),
        }
    }

    fn ident(&mut self, word: String, position: usize) -> Result<Property, PropertyParseError> {
        match word.as_str() {
            "true" => Ok(Property::True),
            "false" => Ok(Property::False),
            "EX" => Ok(Property::ex(self.unary()?)),
            "EF" => Ok(Property::ef(self.unary()?)),
            "EG" => Ok(Property::eg(self.unary()?)),
            "AX" => Ok(Property::ax(self.unary()?)),
            "AF" => Ok(Property::af(self.unary()?)),
            "AG" => Ok(Property::ag(self.unary()?)),
            "E" | "A" => {
                self.expect(&TokenKind::LBracket)?;
                let hold = self.formula()?;
                match self.next() {
                    Some(t) if t.kind == TokenKind::Ident("U".into()) => {}
                    Some(t) => {
                        return Err(PropertyParseError {
                            position: t.position,
                            message: format!("expected `U`, found `{}`", t.kind.describe()),
                        })
                    }
                    None => return Err(self.error_here("expected `U` before end of input")),
                }
                let until = self.formula()?;
                self.expect(&TokenKind::RBracket)?;
                Ok(if word == "E" {
                    Property::eu(hold, until)
                } else {
                    Property::au(hold, until)
                })
            }
            "U" => Err(PropertyParseError {
                position,
                message: "`U` is only valid inside `E[.. U ..]` / `A[.. U ..]`".into(),
            }),
            name => match self.net.place_by_name(name) {
                Some(p) => Ok(Property::place(p)),
                None => Err(PropertyParseError {
                    position,
                    message: format!("unknown place `{name}` in net `{}`", self.net.name()),
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets::{dme, figure1, philosophers, DmeStyle};

    #[test]
    fn parser_builds_the_expected_ast() {
        let net = figure1();
        let p = |n: &str| Property::place(net.place_by_name(n).unwrap());
        assert_eq!(Property::parse("p1", &net).unwrap(), p("p1"));
        assert_eq!(Property::parse("true", &net).unwrap(), Property::True);
        assert_eq!(Property::parse("false", &net).unwrap(), Property::False);
        assert_eq!(
            Property::parse("p1 & p2 | p3", &net).unwrap(),
            p("p1").and(p("p2")).or(p("p3")),
            "& binds tighter than |"
        );
        assert_eq!(
            Property::parse("!p1 & p2", &net).unwrap(),
            p("p1").not().and(p("p2")),
            "! binds tighter than &"
        );
        assert_eq!(
            Property::parse("p1 -> p2 -> p3", &net).unwrap(),
            p("p1").implies(p("p2").implies(p("p3"))),
            "-> is right-associative"
        );
        assert_eq!(
            Property::parse("AG EF p1", &net).unwrap(),
            Property::ag(Property::ef(p("p1")))
        );
        assert_eq!(
            Property::parse("E[p2 U p6 & p7]", &net).unwrap(),
            Property::eu(p("p2"), p("p6").and(p("p7")))
        );
        assert_eq!(
            Property::parse("A[!p2 U p6]", &net).unwrap(),
            Property::au(p("p2").not(), p("p6"))
        );
        assert_eq!(
            Property::parse("p1 && p2 || p3", &net).unwrap(),
            Property::parse("p1 & p2 | p3", &net).unwrap(),
            "doubled operators are aliases"
        );
    }

    #[test]
    fn parse_errors_carry_positions() {
        let net = figure1();
        let err = Property::parse("AG nonsuch", &net).unwrap_err();
        assert_eq!(err.position, 3);
        assert!(err.message.contains("nonsuch"), "{err}");
        let err = Property::parse("p1 &", &net).unwrap_err();
        assert!(err.message.contains("end of input"), "{err}");
        let err = Property::parse("E[p1 p2]", &net).unwrap_err();
        assert!(err.message.contains("expected `U`"), "{err}");
        let err = Property::parse("(p1", &net).unwrap_err();
        assert!(err.message.contains("expected `)`"), "{err}");
        let err = Property::parse("p1 p2", &net).unwrap_err();
        assert!(err.message.contains("after the formula"), "{err}");
        let err = Property::parse("p1 @ p2", &net).unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");
        assert!(Property::parse("p1 - p2", &net).is_err());
        assert!(Property::parse("U", &net).is_err());
    }

    #[test]
    fn dotted_and_underscored_place_names_resolve() {
        let net = dme(3, DmeStyle::Spec);
        let prop = Property::parse("token_at.0 | token_held.2", &net).unwrap();
        let at0 = Property::place(net.place_by_name("token_at.0").unwrap());
        let held2 = Property::place(net.place_by_name("token_held.2").unwrap());
        assert_eq!(prop, at0.or(held2));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let net = philosophers(2);
        for text in [
            "AG !(eating.0 & eating.1)",
            "EF (hasl.0 & hasl.1)",
            "E[!eating.1 U eating.0]",
            "A[true U eating.0 | eating.1]",
            "AG (hasl.0 -> !fork.0)",
            "!(eating.0 | EG !eating.1)",
            "AX (EX true | eating.0)",
            "AG EF (idle.0 & idle.1)",
        ] {
            let parsed = Property::parse(text, &net).unwrap();
            let rendered = parsed.display(&net);
            let reparsed = Property::parse(&rendered, &net).unwrap();
            assert_eq!(parsed, reparsed, "`{text}` -> `{rendered}`");
        }
    }

    #[test]
    fn is_boolean_distinguishes_temporal_formulas() {
        let net = figure1();
        assert!(Property::parse("p1 & !p2 | true", &net)
            .unwrap()
            .is_boolean());
        assert!(!Property::parse("EF p1", &net).unwrap().is_boolean());
        assert!(!Property::parse("p1 & EX p2", &net).unwrap().is_boolean());
    }
}
