//! `pnsymd`: a long-running analysis service over the symbolic kernel.
//!
//! The daemon answers portfolio CTL queries over line-delimited JSON on
//! TCP (hand-rolled on `std::net` — the workspace stays dependency-free).
//! Three thread roles cooperate:
//!
//! * an **accept** thread turns incoming connections into reader threads;
//! * one **reader thread per connection** decodes request lines and
//!   forwards them, each with a private reply channel, to the scheduler;
//! * the single **scheduler** thread owns every [`SymbolicContext`]
//!   (contexts are deliberately not `Send`, so all evaluation funnels
//!   through here) and streams response lines back through the reply
//!   channel, which the reader thread writes to the socket.
//!
//! Warm-context reuse, portfolio subterm caching, and per-query budgets
//! live in [`pool`] and [`scheduler`]; the wire format lives in [`proto`].
//!
//! [`SymbolicContext`]: crate::SymbolicContext

pub mod pool;
pub mod proto;
pub mod scheduler;

pub use pool::{canonical_net_hash, ContextPool, PoolStats, WarmContext};
pub use proto::{
    CheckRequest, ErrorCode, Json, NamedFormula, PoolOutcome, ProtoError, Request, Response,
    Verdict,
};
pub use scheduler::{build_context, parse_strategy, NetResolver, Scheduler, ServerConfig};

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// One decoded request travelling from a connection reader thread to the
/// scheduler thread, with the channel its response stream goes back on.
struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
}

/// A running daemon: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    jobs: mpsc::Sender<Job>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    scheduler_thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (a client `shutdown` request), then
    /// joins its threads.
    pub fn wait(mut self) {
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops the daemon: unblocks the accept loop, stops the scheduler,
    /// and joins both threads. Idempotent with a client-initiated
    /// `shutdown` request.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The scheduler breaks its receive loop on a Shutdown job; the
        // reply channel is dropped unread.
        let (tx, _rx) = mpsc::channel();
        let _ = self.jobs.send(Job {
            request: Request::Shutdown { id: 0 },
            reply: tx,
        });
        // Poke the blocking accept() so the accept thread observes the
        // stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts the daemon
/// with the given scheduler configuration and net resolver. Returns once
/// the listener is accepting; queries are served until
/// [`ServerHandle::shutdown`] or a client `shutdown` request.
pub fn serve(
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    resolver: NetResolver,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();

    let scheduler_stop = Arc::clone(&stop);
    let scheduler_thread = thread::Builder::new()
        .name("pnsymd-scheduler".to_string())
        .spawn(move || {
            let mut scheduler = Scheduler::new(config, resolver);
            while let Ok(job) = jobs_rx.recv() {
                let is_shutdown = matches!(job.request, Request::Shutdown { .. });
                scheduler.handle(&job.request, &mut |resp| {
                    let _ = job.reply.send(resp);
                });
                if is_shutdown {
                    scheduler_stop.store(true, Ordering::SeqCst);
                    // Unblock accept() so the accept thread can exit.
                    let _ = TcpStream::connect(addr);
                    break;
                }
            }
        })?;

    let accept_stop = Arc::clone(&stop);
    let accept_jobs = jobs_tx.clone();
    let accept_thread = thread::Builder::new()
        .name("pnsymd-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let jobs = accept_jobs.clone();
                let _ = thread::Builder::new()
                    .name("pnsymd-conn".to_string())
                    .spawn(move || handle_connection(stream, jobs));
            }
        })?;

    Ok(ServerHandle {
        addr,
        jobs: jobs_tx,
        stop,
        accept_thread: Some(accept_thread),
        scheduler_thread: Some(scheduler_thread),
    })
}

/// Reads request lines off one connection until the peer closes it. Every
/// malformed line is answered with a terminal typed error — the connection
/// itself always survives bad input.
fn handle_connection(stream: TcpStream, jobs: mpsc::Sender<Job>) {
    // Responses are small lines written one at a time; Nagle's algorithm
    // would serialize each behind the peer's delayed ACK.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(line.trim_end()) {
            Ok(request) => request,
            Err(err) => {
                if write_line(&mut writer, &err.into_response(0).to_line()).is_err() {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = matches!(request, Request::Shutdown { .. });
        let (reply_tx, reply_rx) = mpsc::channel::<Response>();
        if jobs
            .send(Job {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            // Scheduler already stopped: answer with a terminal typed
            // error rather than dropping the connection mid-request.
            let resp = Response::Error {
                id: 0,
                code: ErrorCode::Internal,
                message: "server is shutting down".to_string(),
                terminal: true,
            };
            let _ = write_line(&mut writer, &resp.to_line());
            return;
        }
        // The scheduler drops its reply sender when the stream is
        // complete, which ends this iterator.
        for resp in reply_rx {
            if write_line(&mut writer, &resp.to_line()).is_err() {
                return;
            }
        }
        if is_shutdown {
            return;
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// A minimal blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one raw line verbatim (for protocol-robustness tests); the
    /// trailing newline is added.
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads and decodes the next response line.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse(line.trim_end())
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidData, err.to_string()))
    }

    /// Sends a request and collects its full response stream, up to and
    /// including the terminal line.
    pub fn request(&mut self, request: &Request) -> io::Result<Vec<Response>> {
        self.send_raw(&request.to_line())?;
        self.read_stream()
    }

    /// Collects one response stream (after a raw send), up to and
    /// including the terminal line.
    pub fn read_stream(&mut self) -> io::Result<Vec<Response>> {
        let mut responses = Vec::new();
        loop {
            let resp = self.read_response()?;
            let terminal = resp.is_terminal();
            responses.push(resp);
            if terminal {
                return Ok(responses);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets;

    fn boot() -> ServerHandle {
        let resolver: NetResolver = Box::new(|spec| match spec {
            "figure1" => Some(nets::figure1()),
            _ => None,
        });
        serve("127.0.0.1:0", ServerConfig::default(), resolver).expect("bind ephemeral port")
    }

    #[test]
    fn ping_stats_and_garbage_share_one_connection() {
        let handle = boot();
        let mut client = Client::connect(handle.addr()).expect("connect");

        let pong = client.request(&Request::Ping { id: 3 }).expect("ping");
        assert_eq!(pong, vec![Response::Pong { id: 3 }]);

        // Garbage must produce a typed error on the same connection...
        client.send_raw("this is not json").expect("send");
        let err = client.read_stream().expect("typed error");
        assert!(matches!(
            err[0],
            Response::Error {
                code: ErrorCode::Json,
                terminal: true,
                ..
            }
        ));

        // ...and the connection stays usable afterwards.
        let responses = client
            .request(&Request::check_text(
                4,
                "figure1",
                &[("m7", "EF (p6 & p7)")],
            ))
            .expect("check");
        assert!(matches!(&responses[0], Response::Verdict(v) if v.holds));
        assert!(matches!(&responses[1], Response::Done { .. }));

        let stats = client.request(&Request::Stats { id: 5 }).expect("stats");
        let Response::Stats {
            queries, misses, ..
        } = stats[0]
        else {
            panic!("expected stats, got {:?}", stats[0]);
        };
        assert_eq!(queries, 1);
        assert_eq!(misses, 1);
        handle.shutdown();
    }

    #[test]
    fn client_shutdown_request_stops_the_daemon() {
        let handle = boot();
        let addr = handle.addr();
        let mut client = Client::connect(addr).expect("connect");
        let bye = client
            .request(&Request::Shutdown { id: 9 })
            .expect("shutdown");
        assert_eq!(bye, vec![Response::Bye { id: 9 }]);
        handle.shutdown();
        // The listener is gone: either the connection is refused or it is
        // accepted by the OS backlog and then closed without a response.
        if let Ok(mut late) = Client::connect(addr) {
            assert!(late.request(&Request::Ping { id: 1 }).is_err());
        }
    }
}
