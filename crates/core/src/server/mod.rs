//! `pnsymd`: a long-running analysis service over the symbolic kernel.
//!
//! The daemon answers portfolio CTL queries over line-delimited JSON on
//! TCP (hand-rolled on `std::net` — the workspace stays dependency-free).
//! Three thread roles cooperate:
//!
//! * an **accept** thread turns incoming connections into reader threads;
//! * one **reader thread per connection** decodes request lines and
//!   forwards them, each with a private reply channel, to the scheduler;
//! * the single **scheduler** thread owns every [`SymbolicContext`]
//!   (contexts are deliberately not `Send`, so all evaluation funnels
//!   through here) and streams response lines back through the reply
//!   channel, which the reader thread writes to the socket.
//!
//! Warm-context reuse, portfolio subterm caching, and per-query budgets
//! live in [`pool`] and [`scheduler`]; the wire format lives in [`proto`].
//!
//! [`SymbolicContext`]: crate::SymbolicContext

pub mod pool;
pub mod proto;
pub mod scheduler;
pub mod snapshot;

pub use pool::{canonical_net_hash, ContextPool, PoolStats, WarmContext};
pub use proto::{
    CheckRequest, ErrorCode, Json, NamedFormula, PoolOutcome, ProtoError, Request, Response,
    Verdict,
};
pub use scheduler::{build_context, parse_strategy, NetResolver, Scheduler, ServerConfig};
pub use snapshot::{SnapshotRejection, SnapshotStore};

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

/// One decoded request travelling from a connection reader thread to the
/// scheduler thread, with the channel its response stream goes back on.
struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
    /// Whether this job holds an admission slot (portfolio queries only);
    /// the scheduler loop releases it once the job is handled.
    admitted: bool,
}

/// The overload gate: portfolio queries in flight (admitted but not yet
/// fully handled), bounded by `max_inflight + max_queue`. Cheap requests
/// (ping/stats/shutdown) bypass it — they must keep working on an
/// overloaded daemon, that is what they are for.
struct Admission {
    pending: AtomicUsize,
    capacity: usize,
}

impl Admission {
    /// Tries to take a slot; on rejection returns the pending count the
    /// retry-after hint is derived from.
    fn try_acquire(&self) -> Result<(), usize> {
        let mut current = self.pending.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                return Err(current);
            }
            match self.pending.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(seen) => current = seen,
            }
        }
    }

    fn release(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }

    /// The backoff hint for a rejected query: scales with the queue the
    /// client would be waiting behind, clamped to a sane band.
    fn retry_after_ms(pending: usize) -> u64 {
        (25 * pending as u64).clamp(25, 5_000)
    }
}

/// A running daemon: its bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    jobs: mpsc::Sender<Job>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
    scheduler_thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the daemon is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the daemon stops (a client `shutdown` request), then
    /// joins its threads.
    pub fn wait(mut self) {
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops the daemon: unblocks the accept loop, stops the scheduler,
    /// and joins both threads. Idempotent with a client-initiated
    /// `shutdown` request.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The scheduler breaks its receive loop on a Shutdown job; the
        // reply channel is dropped unread.
        let (tx, _rx) = mpsc::channel();
        let _ = self.jobs.send(Job {
            request: Request::Shutdown { id: 0 },
            reply: tx,
            admitted: false,
        });
        // Poke the blocking accept() so the accept thread observes the
        // stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts the daemon
/// with the given scheduler configuration and net resolver. Returns once
/// the listener is accepting; queries are served until
/// [`ServerHandle::shutdown`] or a client `shutdown` request.
pub fn serve(
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    resolver: NetResolver,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
    let admission = Arc::new(Admission {
        pending: AtomicUsize::new(0),
        capacity: config.max_inflight.saturating_add(config.max_queue).max(1),
    });

    let scheduler_stop = Arc::clone(&stop);
    let scheduler_admission = Arc::clone(&admission);
    let scheduler_thread = thread::Builder::new()
        .name("pnsymd-scheduler".to_string())
        .spawn(move || {
            let mut scheduler = Scheduler::new(config, resolver);
            while let Ok(job) = jobs_rx.recv() {
                let is_shutdown = matches!(job.request, Request::Shutdown { .. });
                scheduler.handle(&job.request, &mut |resp| {
                    let _ = job.reply.send(resp);
                });
                if job.admitted {
                    scheduler_admission.release();
                }
                if is_shutdown {
                    scheduler_stop.store(true, Ordering::SeqCst);
                    // Unblock accept() so the accept thread can exit.
                    let _ = TcpStream::connect(addr);
                    break;
                }
            }
        })?;

    let accept_stop = Arc::clone(&stop);
    let accept_jobs = jobs_tx.clone();
    let accept_thread = thread::Builder::new()
        .name("pnsymd-accept".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let jobs = accept_jobs.clone();
                let gate = Arc::clone(&admission);
                let _ = thread::Builder::new()
                    .name("pnsymd-conn".to_string())
                    .spawn(move || handle_connection(stream, jobs, gate));
            }
        })?;

    Ok(ServerHandle {
        addr,
        jobs: jobs_tx,
        stop,
        accept_thread: Some(accept_thread),
        scheduler_thread: Some(scheduler_thread),
    })
}

/// Reads request lines off one connection until the peer closes it. Every
/// malformed line is answered with a terminal typed error — the connection
/// itself always survives bad input.
fn handle_connection(stream: TcpStream, jobs: mpsc::Sender<Job>, admission: Arc<Admission>) {
    // Responses are small lines written one at a time; Nagle's algorithm
    // would serialize each behind the peer's delayed ACK.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(line.trim_end()) {
            Ok(request) => request,
            Err(err) => {
                if write_line(&mut writer, &err.into_response(0).to_line()).is_err() {
                    return;
                }
                continue;
            }
        };
        // Only portfolio queries pass the admission gate: they are the
        // expensive work. Control requests must keep answering while the
        // daemon sheds load.
        let admitted = if matches!(request, Request::Check(_)) {
            match admission.try_acquire() {
                Ok(()) => true,
                Err(pending) => {
                    let resp = Response::Error {
                        id: request.id(),
                        code: ErrorCode::Overloaded,
                        message: format!("{pending} queries already pending"),
                        terminal: true,
                        retry_after_ms: Some(Admission::retry_after_ms(pending)),
                    };
                    if write_line(&mut writer, &resp.to_line()).is_err() {
                        return;
                    }
                    continue;
                }
            }
        } else {
            false
        };
        let is_shutdown = matches!(request, Request::Shutdown { .. });
        let (reply_tx, reply_rx) = mpsc::channel::<Response>();
        if jobs
            .send(Job {
                request,
                reply: reply_tx,
                admitted,
            })
            .is_err()
        {
            if admitted {
                admission.release();
            }
            // Scheduler already stopped: answer with a terminal typed
            // error rather than dropping the connection mid-request.
            let resp = Response::Error {
                id: 0,
                code: ErrorCode::Internal,
                message: "server is shutting down".to_string(),
                terminal: true,
                retry_after_ms: None,
            };
            let _ = write_line(&mut writer, &resp.to_line());
            return;
        }
        // The scheduler drops its reply sender when the stream is
        // complete, which ends this iterator.
        for resp in reply_rx {
            if write_line(&mut writer, &resp.to_line()).is_err() {
                return;
            }
        }
        if is_shutdown {
            return;
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Client-side resilience knobs: timeouts, reconnect retries, backoff.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Timeout for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Timeout for each response line. A hung or dead daemon surfaces as
    /// [`ClientError::Timeout`] instead of blocking forever.
    pub read_timeout: Duration,
    /// How many times [`Client::request`] reconnects and resends after a
    /// connection-level failure (requests are idempotent by id, so a
    /// resend can at worst recompute). `0` fails fast.
    pub retries: u32,
    /// First reconnect backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter (splitmix64 over attempt count), so
    /// client fleets retrying a restarted daemon do not stampede in sync.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(120),
            retries: 0,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            jitter_seed: 0x5eed,
        }
    }
}

/// A typed client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Establishing (or re-establishing) the TCP connection failed.
    Connect(io::Error),
    /// The daemon produced no response line within the read timeout.
    Timeout,
    /// The connection failed mid-exchange (reset, or closed before the
    /// terminal line).
    Io(io::Error),
    /// A response line failed to decode.
    Protocol(ProtoError),
}

impl ClientError {
    /// Whether reconnect-and-resend can plausibly recover: connection
    /// failures can (the daemon may be restarting), timeouts and protocol
    /// errors cannot (the daemon is alive and answered, or is answering
    /// garbage).
    fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Connect(_) | ClientError::Io(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(err) => write!(f, "connect failed: {err}"),
            ClientError::Timeout => write!(f, "timed out waiting for a response line"),
            ClientError::Io(err) => write!(f, "connection failed: {err}"),
            ClientError::Protocol(err) => write!(f, "bad response line: {err}"),
        }
    }
}

impl std::error::Error for ClientError {}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A blocking protocol client over one TCP connection, with connect/read
/// timeouts and optional reconnect-with-backoff on connection failures.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
    config: ClientConfig,
}

impl Client {
    /// Connects to a running daemon with [`ClientConfig::default`]
    /// timeouts (and no retries).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit resilience knobs.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ClientError> {
        let mut last = None;
        for peer in addr.to_socket_addrs().map_err(ClientError::Connect)? {
            match Client::open(peer, config) {
                Ok(client) => return Ok(client),
                Err(err) => last = Some(err),
            }
        }
        Err(last.unwrap_or_else(|| {
            ClientError::Connect(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ))
        }))
    }

    fn open(peer: SocketAddr, config: ClientConfig) -> Result<Client, ClientError> {
        let writer = TcpStream::connect_timeout(&peer, config.connect_timeout)
            .map_err(ClientError::Connect)?;
        writer.set_nodelay(true).map_err(ClientError::Connect)?;
        writer
            .set_read_timeout(Some(config.read_timeout))
            .map_err(ClientError::Connect)?;
        let reader = BufReader::new(writer.try_clone().map_err(ClientError::Connect)?);
        Ok(Client {
            reader,
            writer,
            peer,
            config,
        })
    }

    /// Drops the current connection and dials the same peer again.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        *self = Client::open(self.peer, self.config)?;
        Ok(())
    }

    /// Sends one raw line verbatim (for protocol-robustness tests); the
    /// trailing newline is added.
    pub fn send_raw(&mut self, line: &str) -> Result<(), ClientError> {
        let io = (|| {
            self.writer.write_all(line.as_bytes())?;
            self.writer.write_all(b"\n")?;
            self.writer.flush()
        })();
        io.map_err(ClientError::Io)
    }

    /// Reads and decodes the next response line.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                )))
            }
            Ok(_) => {}
            Err(err)
                if matches!(
                    err.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Err(ClientError::Timeout)
            }
            Err(err) => return Err(ClientError::Io(err)),
        }
        Response::parse(line.trim_end()).map_err(ClientError::Protocol)
    }

    /// Sends a request and collects its full response stream, up to and
    /// including the terminal line.
    ///
    /// With a non-zero [`ClientConfig::retries`], connection-level
    /// failures (a crashed or restarting daemon) are ridden out: the
    /// client reconnects after a capped exponential backoff with jitter
    /// and resends the *same* request — requests are idempotent by id, so
    /// the worst case is recomputation. A terminal
    /// [`ErrorCode::Overloaded`] answer is also retried, honouring the
    /// server's `retry_after_ms` hint when it exceeds the backoff.
    /// Timeouts and protocol errors are never retried.
    pub fn request(&mut self, request: &Request) -> Result<Vec<Response>, ClientError> {
        let mut attempt = 0u32;
        loop {
            let result = self
                .send_raw(&request.to_line())
                .and_then(|()| self.read_stream());
            let overloaded_hint = match &result {
                Ok(responses) => match responses.last() {
                    Some(Response::Error {
                        code: ErrorCode::Overloaded,
                        retry_after_ms,
                        ..
                    }) => Some(retry_after_ms.unwrap_or(0)),
                    _ => return result,
                },
                Err(err) if err.is_retryable() => None,
                Err(_) => return result,
            };
            if attempt >= self.config.retries {
                return result;
            }
            let backoff = self.backoff(attempt, overloaded_hint);
            attempt += 1;
            thread::sleep(backoff);
            if overloaded_hint.is_none() {
                // Connection-level failure: the old socket is gone.
                // Reconnect failures burn further attempts (with backoff)
                // rather than aborting — the daemon may still be booting.
                while let Err(err) = self.reconnect() {
                    if attempt >= self.config.retries {
                        return Err(err);
                    }
                    let backoff = self.backoff(attempt, None);
                    attempt += 1;
                    thread::sleep(backoff);
                }
            }
        }
    }

    /// Exponential backoff with full jitter: `base * 2^attempt` capped,
    /// then scaled by a deterministic per-attempt factor in [0.5, 1.0].
    /// An overloaded server's `retry_after_ms` hint acts as a floor.
    fn backoff(&self, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let base = self.config.backoff_base.as_millis() as u64;
        let cap = self.config.backoff_cap.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        let jitter = splitmix(self.config.jitter_seed ^ u64::from(attempt));
        let scaled = exp / 2 + (exp / 2).min(jitter % (exp / 2 + 1));
        Duration::from_millis(scaled.max(hint_ms.unwrap_or(0)))
    }

    /// Collects one response stream (after a raw send), up to and
    /// including the terminal line.
    pub fn read_stream(&mut self) -> Result<Vec<Response>, ClientError> {
        let mut responses = Vec::new();
        loop {
            let resp = self.read_response()?;
            let terminal = resp.is_terminal();
            responses.push(resp);
            if terminal {
                return Ok(responses);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets;

    fn boot() -> ServerHandle {
        let resolver: NetResolver = Box::new(|spec| match spec {
            "figure1" => Some(nets::figure1()),
            _ => None,
        });
        serve("127.0.0.1:0", ServerConfig::default(), resolver).expect("bind ephemeral port")
    }

    #[test]
    fn ping_stats_and_garbage_share_one_connection() {
        let handle = boot();
        let mut client = Client::connect(handle.addr()).expect("connect");

        let pong = client.request(&Request::Ping { id: 3 }).expect("ping");
        assert_eq!(pong, vec![Response::Pong { id: 3 }]);

        // Garbage must produce a typed error on the same connection...
        client.send_raw("this is not json").expect("send");
        let err = client.read_stream().expect("typed error");
        assert!(matches!(
            err[0],
            Response::Error {
                code: ErrorCode::Json,
                terminal: true,
                ..
            }
        ));

        // ...and the connection stays usable afterwards.
        let responses = client
            .request(&Request::check_text(
                4,
                "figure1",
                &[("m7", "EF (p6 & p7)")],
            ))
            .expect("check");
        assert!(matches!(&responses[0], Response::Verdict(v) if v.holds));
        assert!(matches!(&responses[1], Response::Done { .. }));

        let stats = client.request(&Request::Stats { id: 5 }).expect("stats");
        let Response::Stats {
            queries, misses, ..
        } = stats[0]
        else {
            panic!("expected stats, got {:?}", stats[0]);
        };
        assert_eq!(queries, 1);
        assert_eq!(misses, 1);
        handle.shutdown();
    }

    #[test]
    fn client_shutdown_request_stops_the_daemon() {
        let handle = boot();
        let addr = handle.addr();
        let mut client = Client::connect(addr).expect("connect");
        let bye = client
            .request(&Request::Shutdown { id: 9 })
            .expect("shutdown");
        assert_eq!(bye, vec![Response::Bye { id: 9 }]);
        handle.shutdown();
        // The listener is gone: either the connection is refused or it is
        // accepted by the OS backlog and then closed without a response.
        if let Ok(mut late) = Client::connect(addr) {
            assert!(late.request(&Request::Ping { id: 1 }).is_err());
        }
    }
}
