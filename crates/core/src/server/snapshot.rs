//! Durable snapshots of warm serving state: the daemon's crash-recovery
//! layer.
//!
//! Two kinds of files live in the `--snapshot-dir`, both wrapped in the
//! same checksummed envelope around a [`SerializedBdd`] byte blob:
//!
//! * **Warm snapshots** (`warm-<hash>.pnsnap`) — one per pooled net: the
//!   net's canonical hash, its spec string, and every *complete*
//!   per-strategy [`ReachabilityResult`] with the reached sets exported
//!   as a shared multi-rooted BDD slice. Written when a query completes
//!   and when the LRU pool evicts a warm entry (spill-instead-of-drop).
//! * **Checkpoints** (`ckpt-<hash>.pnsnap`) — the partial reached set of
//!   a long-running fixpoint, rewritten at pass boundaries. A restart
//!   resumes the traversal from the checkpointed set instead of the
//!   initial marking; the file is deleted when the fixpoint completes.
//!
//! Every write is atomic — write to a temp file, `fsync`, rename — so a
//! `kill -9` at any instant leaves either the previous file or the new
//! one, never a readable torn file. Every read validates the trailing
//! checksum *before* trusting any length field, then re-validates the
//! structural invariants of the embedded BDD slice; any mismatch is a
//! typed [`SnapshotRejection`], the offending file is deleted, and the
//! caller degrades to a cold rebuild. No input, however corrupt, panics.
//!
//! Under the `fault-inject` feature the store can be armed with a
//! `DiskFaultSchedule` (feature-gated, so no doc link here) that deterministically
//! injects short writes, failed renames and corrupt-on-read bit flips at
//! these sites, which is how the disk-fault matrix exercises the
//! degradation paths.

use super::pool::WarmContext;
use super::scheduler::parse_strategy;
use crate::context::SymbolicContext;
use crate::traverse::{FixpointStrategy, ReachabilityResult};
use pnsym_bdd::{snapshot_checksum, Ref, SerializedBdd, SnapshotError};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

#[cfg(feature = "fault-inject")]
use pnsym_bdd::{DiskFaultSchedule, DiskFaultSite};

/// Magic prefix of the store's envelope (distinct from the inner
/// [`SerializedBdd`] blob's own magic).
const STORE_MAGIC: &[u8; 8] = b"PNSYMDS\0";
/// Envelope format version.
const STORE_VERSION: u32 = 1;
const KIND_WARM: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;
/// Upper bound on per-strategy entries in one warm snapshot — far above
/// the number of distinct traversal strategies, it only bounds the
/// allocation a corrupt count field could request.
const MAX_ENTRIES: usize = 64;

/// Why a snapshot file was rejected. Every variant degrades to a cold
/// rebuild: the file is deleted and the query proceeds as a miss.
#[derive(Debug)]
pub enum SnapshotRejection {
    /// Reading the file failed at the I/O level.
    Io(io::Error),
    /// The envelope is malformed: bad magic, checksum mismatch, torn or
    /// trailing bytes, a bad length field, non-UTF-8 text.
    Envelope(&'static str),
    /// The envelope's format version is not understood.
    Version(u32),
    /// The embedded BDD blob failed its own validation.
    Bdd(SnapshotError),
    /// The snapshot does not match the live state it would restore into:
    /// wrong net hash, wrong variable count, an unknown strategy name, or
    /// a restored reached set whose marking count disagrees with the one
    /// recorded at save time.
    Mismatch(String),
}

impl std::fmt::Display for SnapshotRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotRejection::Io(err) => write!(f, "i/o error: {err}"),
            SnapshotRejection::Envelope(what) => write!(f, "malformed envelope: {what}"),
            SnapshotRejection::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotRejection::Bdd(err) => write!(f, "bad BDD blob: {err}"),
            SnapshotRejection::Mismatch(what) => write!(f, "snapshot/state mismatch: {what}"),
        }
    }
}

impl std::error::Error for SnapshotRejection {}

/// One per-strategy record of a decoded snapshot envelope.
#[derive(Debug, Clone, PartialEq)]
struct RawEntry {
    strategy: String,
    num_markings: f64,
    iterations: u64,
}

/// A fully decoded (and checksum-verified) snapshot file.
struct Payload {
    kind: u8,
    net_hash: u64,
    spec: String,
    entries: Vec<RawEntry>,
    bdd: SerializedBdd,
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotRejection> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(SnapshotRejection::Envelope("truncated field"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotRejection> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotRejection> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, SnapshotRejection> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotRejection::Envelope("non-UTF-8 string"))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode(kind: u8, net_hash: u64, spec: &str, entries: &[RawEntry], blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(blob.len() + 256);
    out.extend_from_slice(STORE_MAGIC);
    push_u32(&mut out, STORE_VERSION);
    out.push(kind);
    push_u64(&mut out, net_hash);
    push_str(&mut out, spec);
    push_u32(&mut out, entries.len() as u32);
    for entry in entries {
        push_str(&mut out, &entry.strategy);
        push_u64(&mut out, entry.num_markings.to_bits());
        push_u64(&mut out, entry.iterations);
    }
    push_u32(&mut out, blob.len() as u32);
    out.extend_from_slice(blob);
    let sum = snapshot_checksum(&out);
    push_u64(&mut out, sum);
    out
}

fn decode(bytes: &[u8]) -> Result<Payload, SnapshotRejection> {
    if bytes.len() < STORE_MAGIC.len() + 8 {
        return Err(SnapshotRejection::Envelope("file too short"));
    }
    // Verify the trailing checksum over the whole body *first*: after this
    // every length field is trusted-as-written, and a torn or bit-flipped
    // file cannot steer the parse.
    let (body, stored) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(stored.try_into().unwrap());
    if snapshot_checksum(body) != stored {
        return Err(SnapshotRejection::Envelope("checksum mismatch"));
    }
    let mut r = Reader {
        bytes: body,
        pos: 0,
    };
    if r.take(STORE_MAGIC.len())? != STORE_MAGIC {
        return Err(SnapshotRejection::Envelope("bad magic"));
    }
    let version = r.u32()?;
    if version != STORE_VERSION {
        return Err(SnapshotRejection::Version(version));
    }
    let kind = r.take(1)?[0];
    if kind != KIND_WARM && kind != KIND_CHECKPOINT {
        return Err(SnapshotRejection::Envelope("unknown snapshot kind"));
    }
    let net_hash = r.u64()?;
    let spec = r.str()?;
    let count = r.u32()? as usize;
    if count > MAX_ENTRIES {
        return Err(SnapshotRejection::Envelope("implausible entry count"));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let strategy = r.str()?;
        let num_markings = f64::from_bits(r.u64()?);
        let iterations = r.u64()?;
        entries.push(RawEntry {
            strategy,
            num_markings,
            iterations,
        });
    }
    let blob_len = r.u32()? as usize;
    let blob = r.take(blob_len)?;
    if r.remaining() != 0 {
        return Err(SnapshotRejection::Envelope("trailing bytes"));
    }
    let (tag, bdd) = SerializedBdd::from_bytes(blob).map_err(SnapshotRejection::Bdd)?;
    if tag != net_hash {
        return Err(SnapshotRejection::Envelope(
            "BDD blob tag disagrees with the envelope's net hash",
        ));
    }
    if bdd.num_roots() != entries.len() {
        return Err(SnapshotRejection::Envelope(
            "root count disagrees with the entry count",
        ));
    }
    Ok(Payload {
        kind,
        net_hash,
        spec,
        entries,
        bdd,
    })
}

/// Imports the decoded slice into a live context, reordering the manager
/// to the snapshot's variable order first (imports require order
/// equality). Returns the imported roots, unprotected.
fn import_into(
    ctx: &mut SymbolicContext,
    bdd: &SerializedBdd,
) -> Result<Vec<Ref>, SnapshotRejection> {
    if bdd.num_vars() != ctx.manager().num_vars() {
        return Err(SnapshotRejection::Mismatch(format!(
            "snapshot has {} variables, the live context {}",
            bdd.num_vars(),
            ctx.manager().num_vars()
        )));
    }
    if ctx.manager().current_order() != bdd.order() {
        ctx.manager_mut().reorder_to(&bdd.order());
    }
    Ok(ctx.manager_mut().import_subgraph(bdd))
}

/// The durable store under a snapshot directory. All methods degrade:
/// they log nothing themselves and report failures as typed values, so
/// the single-threaded scheduler decides what is worth a log line.
pub struct SnapshotStore {
    dir: PathBuf,
    #[cfg(feature = "fault-inject")]
    faults: DiskFaultSchedule,
}

impl SnapshotStore {
    /// Opens (creating if necessary) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SnapshotStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore {
            dir,
            #[cfg(feature = "fault-inject")]
            faults: DiskFaultSchedule::none(),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Arms a deterministic disk-fault schedule; subsequent writes and
    /// reads trip the scheduled sites.
    #[cfg(feature = "fault-inject")]
    pub fn arm_faults(&mut self, faults: DiskFaultSchedule) {
        self.faults = faults;
    }

    fn warm_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("warm-{key:016x}.pnsnap"))
    }

    fn ckpt_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{key:016x}.pnsnap"))
    }

    /// Atomically replaces `path` with `bytes`: temp file, `fsync`,
    /// rename. A crash at any point leaves the old file or the new file.
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("pnsnap.tmp");
        #[allow(unused_mut)]
        let mut payload: &[u8] = bytes;
        #[cfg(feature = "fault-inject")]
        if self.faults.observe(DiskFaultSite::ShortWrite) {
            // A torn write that still gets renamed into place: the
            // checksum catches it on the next read.
            payload = &bytes[..bytes.len() / 2];
        }
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(payload)?;
            file.sync_all()?;
        }
        #[cfg(feature = "fault-inject")]
        if self.faults.observe(DiskFaultSite::FailedRename) {
            let _ = fs::remove_file(&tmp);
            return Err(io::Error::other("injected rename failure"));
        }
        fs::rename(&tmp, path)
    }

    fn read_file(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        #[allow(unused_mut)]
        let mut bytes = fs::read(path)?;
        #[cfg(feature = "fault-inject")]
        if self.faults.observe(DiskFaultSite::CorruptRead) && !bytes.is_empty() {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
        }
        Ok(bytes)
    }

    /// Spills a warm pool entry: every complete per-strategy result, with
    /// the reached sets exported as one shared multi-rooted slice.
    /// Returns `Ok(false)` without writing when the entry has no complete
    /// results worth persisting.
    pub fn save_warm(&mut self, entry: &WarmContext) -> io::Result<bool> {
        let results: Vec<&(FixpointStrategy, ReachabilityResult)> = entry
            .reached_all()
            .iter()
            .filter(|(_, run)| run.truncated.is_none())
            .collect();
        if results.is_empty() {
            return Ok(false);
        }
        let roots: Vec<Ref> = results.iter().map(|(_, run)| run.reached).collect();
        let blob = entry
            .context()
            .manager()
            .export_subgraph(&roots)
            .to_bytes(entry.key());
        let entries: Vec<RawEntry> = results
            .iter()
            .map(|(strategy, run)| RawEntry {
                strategy: strategy.to_string(),
                num_markings: run.num_markings,
                iterations: run.iterations as u64,
            })
            .collect();
        let bytes = encode(KIND_WARM, entry.key(), entry.spec(), &entries, &blob);
        self.write_atomic(&self.warm_path(entry.key()), &bytes)?;
        Ok(true)
    }

    /// Rehydrates the warm snapshot for `key` into a freshly built
    /// context: imports the reached sets (reordering the manager to the
    /// snapshot's order), protects them, and re-verifies each marking
    /// count against the one recorded at save time. `None` when no
    /// snapshot exists; on `Err` the offending file has already been
    /// deleted and the caller proceeds cold.
    pub fn restore_warm(
        &mut self,
        key: u64,
        ctx: &mut SymbolicContext,
    ) -> Option<Result<Vec<(FixpointStrategy, ReachabilityResult)>, SnapshotRejection>> {
        let path = self.warm_path(key);
        if !path.exists() {
            return None;
        }
        let result = self.try_restore_warm(&path, key, ctx);
        if result.is_err() {
            let _ = fs::remove_file(&path);
        }
        Some(result)
    }

    fn try_restore_warm(
        &mut self,
        path: &Path,
        key: u64,
        ctx: &mut SymbolicContext,
    ) -> Result<Vec<(FixpointStrategy, ReachabilityResult)>, SnapshotRejection> {
        let bytes = self.read_file(path).map_err(SnapshotRejection::Io)?;
        let payload = decode(&bytes)?;
        if payload.kind != KIND_WARM {
            return Err(SnapshotRejection::Envelope("not a warm snapshot"));
        }
        if payload.net_hash != key {
            return Err(SnapshotRejection::Mismatch(format!(
                "snapshot is for net {:016x}, expected {key:016x}",
                payload.net_hash
            )));
        }
        let roots = import_into(ctx, &payload.bdd)?;
        let mut restored: Vec<(FixpointStrategy, ReachabilityResult)> =
            Vec::with_capacity(roots.len());
        for (entry, &root) in payload.entries.iter().zip(&roots) {
            let Some(strategy) = parse_strategy(&entry.strategy) else {
                for (_, run) in &restored {
                    ctx.manager_mut().unprotect(run.reached);
                }
                return Err(SnapshotRejection::Mismatch(format!(
                    "unknown strategy {:?}",
                    entry.strategy
                )));
            };
            ctx.manager_mut().protect(root);
            let num_markings = ctx.count_markings(root);
            if num_markings != entry.num_markings {
                ctx.manager_mut().unprotect(root);
                for (_, run) in &restored {
                    ctx.manager_mut().unprotect(run.reached);
                }
                return Err(SnapshotRejection::Mismatch(format!(
                    "restored {:?} set counts {num_markings} markings, snapshot recorded {}",
                    entry.strategy, entry.num_markings
                )));
            }
            restored.push((
                strategy,
                ReachabilityResult {
                    reached: root,
                    num_markings,
                    iterations: entry.iterations as usize,
                    bdd_nodes: ctx.bdd_size(root),
                    peak_live_nodes: ctx.manager().peak_live_nodes(),
                    duration: Duration::ZERO,
                    critical_path: Duration::ZERO,
                    truncated: None,
                    strategy,
                },
            ));
        }
        Ok(restored)
    }

    /// Deletes the warm snapshot for `key`, if any.
    pub fn discard_warm(&mut self, key: u64) {
        let _ = fs::remove_file(self.warm_path(key));
    }

    /// Lists `(key, spec)` of every decodable warm snapshot in the store,
    /// for startup rehydration. Undecodable files are skipped here — the
    /// lazy restore path deletes them with a typed reason on first use.
    pub fn warm_specs(&mut self) -> Vec<(u64, String)> {
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut keys: Vec<u64> = dir
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let hex = name.strip_prefix("warm-")?.strip_suffix(".pnsnap")?;
                u64::from_str_radix(hex, 16).ok()
            })
            .collect();
        keys.sort_unstable();
        keys.into_iter()
            .filter_map(|key| {
                let path = self.warm_path(key);
                let bytes = self.read_file(&path).ok()?;
                let payload = decode(&bytes).ok()?;
                (payload.kind == KIND_WARM && payload.net_hash == key)
                    .then_some((key, payload.spec))
            })
            .collect()
    }

    /// Checkpoints the partial reached set of a running fixpoint.
    pub fn save_checkpoint(
        &mut self,
        key: u64,
        spec: &str,
        strategy: FixpointStrategy,
        ctx: &SymbolicContext,
        reached: Ref,
        iterations: usize,
    ) -> io::Result<()> {
        let blob = ctx.manager().export_subgraph(&[reached]).to_bytes(key);
        let entries = [RawEntry {
            strategy: strategy.to_string(),
            num_markings: 0.0,
            iterations: iterations as u64,
        }];
        let bytes = encode(KIND_CHECKPOINT, key, spec, &entries, &blob);
        self.write_atomic(&self.ckpt_path(key), &bytes)
    }

    /// Loads the checkpoint for `key` into a live context, returning the
    /// imported (and protected) partial reached set plus the pass count
    /// it had completed. `None` when no checkpoint exists *or* it was
    /// written under a different strategy (the file is left in place for
    /// a later query of that strategy); on `Err` the file has been
    /// deleted and the traversal restarts from the initial marking.
    pub fn load_checkpoint(
        &mut self,
        key: u64,
        strategy: FixpointStrategy,
        ctx: &mut SymbolicContext,
    ) -> Option<Result<(Ref, usize), SnapshotRejection>> {
        let path = self.ckpt_path(key);
        if !path.exists() {
            return None;
        }
        let result = (|| {
            let bytes = self.read_file(&path).map_err(SnapshotRejection::Io)?;
            let payload = decode(&bytes)?;
            if payload.kind != KIND_CHECKPOINT {
                return Err(SnapshotRejection::Envelope("not a checkpoint"));
            }
            if payload.net_hash != key {
                return Err(SnapshotRejection::Mismatch(format!(
                    "checkpoint is for net {:016x}, expected {key:016x}",
                    payload.net_hash
                )));
            }
            let [entry] = payload.entries.as_slice() else {
                return Err(SnapshotRejection::Envelope(
                    "checkpoint must carry exactly one entry",
                ));
            };
            Ok((entry.clone(), payload.bdd))
        })();
        let (entry, bdd) = match result {
            Ok(decoded) => decoded,
            Err(rejection) => {
                let _ = fs::remove_file(&path);
                return Some(Err(rejection));
            }
        };
        if parse_strategy(&entry.strategy) != Some(strategy) {
            return None;
        }
        match import_into(ctx, &bdd) {
            Ok(roots) => {
                let seed = roots[0];
                ctx.manager_mut().protect(seed);
                Some(Ok((seed, entry.iterations as usize)))
            }
            Err(rejection) => {
                let _ = fs::remove_file(&path);
                Some(Err(rejection))
            }
        }
    }

    /// Deletes the checkpoint for `key` — called when its fixpoint
    /// completes (the warm snapshot supersedes it).
    pub fn clear_checkpoint(&mut self, key: u64) {
        let _ = fs::remove_file(self.ckpt_path(key));
    }
}
