//! The daemon's query scheduler: decoded requests in, response lines out.
//!
//! [`SymbolicContext`] is deliberately not `Send`
//! (its image plans are shared `Rc` artefacts), so the scheduler — which
//! owns the whole [`ContextPool`] — runs on exactly one thread; connection
//! threads hand it decoded [`Request`]s and receive [`Response`] streams
//! back over channels. That single-writer design is what lets warm
//! contexts, their computed caches, and cached reached sets be reused
//! across queries without any locking inside the kernel.
//!
//! A query's lifecycle: resolve the net spec → canonical-hash it into the
//! pool → parse the portfolio (each bad formula degrades to a non-terminal
//! typed error) → reuse or compute the reached set under the query's
//! [`Budget`](pnsym_bdd::Budget) → evaluate the portfolio in one memoized
//! bottom-up pass → stream one verdict line per property and a closing
//! summary line.

use super::pool::{canonical_net_hash, ContextPool, WarmContext};
use super::proto::{CheckRequest, ErrorCode, PoolOutcome, Request, Response, Verdict};
use super::snapshot::SnapshotStore;
use crate::context::SymbolicContext;
use crate::encoding::{AssignmentStrategy, Encoding};
use crate::mc::TraceKind;
use crate::property::Property;
use crate::traverse::{ChainingOrder, FixpointStrategy, TraversalOptions};
use pnsym_bdd::{Ref, TruncationReason};
use pnsym_net::PetriNet;
use pnsym_structural::find_smcs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Maps a net spec string from a `check` request to a net. The daemon
/// plugs in the bench crate's spec grammar; tests plug in closures over
/// the bundled generators.
pub type NetResolver = Box<dyn Fn(&str) -> Option<PetriNet> + Send>;

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Warm contexts kept in the LRU pool.
    pub pool_capacity: usize,
    /// Traversal strategy used when a query does not name one.
    pub default_strategy: FixpointStrategy,
    /// Directory for durable warm-context snapshots and fixpoint
    /// checkpoints; `None` disables durability entirely.
    pub snapshot_dir: Option<PathBuf>,
    /// Checkpoint a running fixpoint every this many productive passes
    /// (`0` disables checkpointing; ignored without a snapshot dir).
    pub checkpoint_every: usize,
    /// Portfolio queries admitted into service at once (the scheduler is
    /// single-threaded, so this bounds the work it has accepted, not
    /// parallelism).
    pub max_inflight: usize,
    /// Queries allowed to wait behind the in-flight ones before the
    /// admission gate answers `overloaded` with a retry-after hint.
    pub max_queue: usize,
    /// Deterministic disk-fault schedule armed on the snapshot store.
    #[cfg(feature = "fault-inject")]
    pub disk_faults: Option<pnsym_bdd::DiskFaultSchedule>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pool_capacity: 4,
            default_strategy: FixpointStrategy::default(),
            snapshot_dir: None,
            checkpoint_every: 8,
            max_inflight: 4,
            max_queue: 64,
            #[cfg(feature = "fault-inject")]
            disk_faults: None,
        }
    }
}

/// Parses the protocol's strategy names (the same spellings the
/// [`FixpointStrategy`] `Display` impl produces): `bfs`, `bfs-full`,
/// `chaining`, `chaining-index`, `saturation`, `parallel` or
/// `parallel-N`.
pub fn parse_strategy(spec: &str) -> Option<FixpointStrategy> {
    Some(match spec {
        "bfs" => FixpointStrategy::Bfs { use_frontier: true },
        "bfs-full" => FixpointStrategy::Bfs {
            use_frontier: false,
        },
        "chaining" => FixpointStrategy::Chaining {
            order: ChainingOrder::Structural,
        },
        "chaining-index" => FixpointStrategy::Chaining {
            order: ChainingOrder::Index,
        },
        "saturation" => FixpointStrategy::Saturation,
        "parallel" => FixpointStrategy::Parallel { threads: 2 },
        other => {
            let threads = other.strip_prefix("parallel-")?.parse().ok()?;
            FixpointStrategy::Parallel { threads }
        }
    })
}

/// Builds the context the daemon serves for a net: the PR-2 dense SMC
/// encoding with Gray assignment when an SMC cover exists, the sparse
/// one-variable-per-place encoding otherwise — the same policy as the
/// bench harness.
pub fn build_context(net: &PetriNet) -> SymbolicContext {
    match find_smcs(net) {
        Ok(smcs) => SymbolicContext::new(
            net,
            Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
        ),
        Err(_) => SymbolicContext::new(net, Encoding::sparse(net)),
    }
}

/// The single-threaded query scheduler owning the warm-context pool.
pub struct Scheduler {
    pool: ContextPool,
    resolver: NetResolver,
    config: ServerConfig,
    snapshots: Option<SnapshotStore>,
    queries: u64,
}

impl Scheduler {
    /// Creates a scheduler with the given pool capacity and net resolver.
    /// When the config names a snapshot directory, the pool rehydrates
    /// from it immediately: every decodable warm snapshot whose spec still
    /// resolves is restored (up to the pool capacity) before the first
    /// query arrives.
    pub fn new(config: ServerConfig, resolver: NetResolver) -> Scheduler {
        let snapshots =
            config
                .snapshot_dir
                .as_ref()
                .and_then(|dir| match SnapshotStore::open(dir.clone()) {
                    Ok(store) => Some(store),
                    Err(err) => {
                        eprintln!(
                        "pnsymd: cannot open snapshot dir {}: {err}; running without durability",
                        dir.display()
                    );
                        None
                    }
                });
        #[cfg(feature = "fault-inject")]
        let snapshots = {
            let mut snapshots = snapshots;
            if let (Some(store), Some(faults)) = (snapshots.as_mut(), config.disk_faults) {
                store.arm_faults(faults);
            }
            snapshots
        };
        let mut scheduler = Scheduler {
            pool: ContextPool::new(config.pool_capacity),
            resolver,
            config,
            snapshots,
            queries: 0,
        };
        scheduler.rehydrate();
        scheduler
    }

    /// Startup rehydration: restores warm snapshots into the pool, oldest
    /// key first, stopping at the pool capacity. A snapshot whose spec no
    /// longer resolves (or whose net hashes differently than its key
    /// claims) is discarded; a corrupt one is deleted by the restore path
    /// with a typed reason.
    fn rehydrate(&mut self) {
        let Some(store) = self.snapshots.as_mut() else {
            return;
        };
        for (key, spec) in store
            .warm_specs()
            .into_iter()
            .take(self.config.pool_capacity)
        {
            let Some(net) = (self.resolver)(&spec) else {
                continue;
            };
            if canonical_net_hash(&net) != key {
                store.discard_warm(key);
                continue;
            }
            let mut entry = WarmContext::new(key, spec, build_context(&net));
            match store.restore_warm(key, entry.context_mut()) {
                Some(Ok(results)) => {
                    entry.install_reached(results);
                    self.pool.note_restore();
                    let _ = self.pool.insert(entry);
                }
                Some(Err(reason)) => {
                    eprintln!(
                        "pnsymd: snapshot {key:016x} rejected at startup ({reason}); deleted"
                    );
                }
                None => {}
            }
        }
    }

    /// Handles one decoded request, pushing every response line (the last
    /// one terminal) through `emit`.
    pub fn handle(&mut self, request: &Request, emit: &mut dyn FnMut(Response)) {
        match request {
            Request::Ping { id } => emit(Response::Pong { id: *id }),
            Request::Shutdown { id } => emit(Response::Bye { id: *id }),
            Request::Stats { id } => {
                let stats = self.pool.stats();
                emit(Response::Stats {
                    id: *id,
                    contexts: self.pool.len() as u64,
                    hits: stats.hits,
                    misses: stats.misses,
                    evictions: stats.evictions,
                    spills: stats.spills,
                    restores: stats.restores,
                    queries: self.queries,
                });
            }
            Request::Check(check) => self.handle_check(check, emit),
        }
    }

    fn handle_check(&mut self, check: &CheckRequest, emit: &mut dyn FnMut(Response)) {
        let start = Instant::now();
        let id = check.id;
        self.queries += 1;

        let strategy = match &check.strategy {
            None => self.config.default_strategy,
            Some(spec) => match parse_strategy(spec) {
                Some(strategy) => strategy,
                None => {
                    return emit(Response::Error {
                        id,
                        code: ErrorCode::Request,
                        message: format!("unknown traversal strategy {spec:?}"),
                        terminal: true,
                        retry_after_ms: None,
                    });
                }
            },
        };

        let Some(net) = (self.resolver)(&check.net) else {
            return emit(Response::Error {
                id,
                code: ErrorCode::Net,
                message: format!("unknown net spec {:?}", check.net),
                terminal: true,
                retry_after_ms: None,
            });
        };

        // Parse the whole portfolio up front: every rejected formula
        // becomes a non-terminal typed error, and the surviving formulas
        // are still evaluated.
        let mut properties = Vec::with_capacity(check.properties.len());
        for named in &check.properties {
            match Property::parse(&named.formula, &net) {
                Ok(property) => properties.push((named, property)),
                Err(err) => emit(Response::Error {
                    id,
                    code: ErrorCode::Property,
                    message: format!("{}: {err}", named.name),
                    terminal: false,
                    retry_after_ms: None,
                }),
            }
        }

        let mut options = TraversalOptions {
            strategy,
            ..TraversalOptions::default()
        };
        options.time_budget = check.deadline_ms.map(Duration::from_millis);
        options.node_budget = check.node_ceiling.map(|n| n as usize);
        options.step_budget = check.step_ceiling;
        #[cfg(feature = "fault-inject")]
        {
            options.faults = check.fault_seed.map(pnsym_bdd::FaultSchedule::from_seed);
        }
        #[cfg(not(feature = "fault-inject"))]
        let _ = check.fault_seed;

        let key = canonical_net_hash(&net);
        let checkpoint_every = self.config.checkpoint_every;
        let pool = &mut self.pool;
        let mut snapshots = self.snapshots.as_mut();

        let pool_outcome = if pool.touch(key) {
            PoolOutcome::Hit
        } else {
            // Miss: before building cold, try to rehydrate the net's warm
            // snapshot into a fresh context. A corrupt or mismatched file
            // has already been deleted by the store; the query degrades to
            // a cold rebuild with the typed reason on stderr.
            let mut fresh = WarmContext::new(key, check.net.clone(), build_context(&net));
            let mut restored = false;
            if let Some(store) = snapshots.as_deref_mut() {
                match store.restore_warm(key, fresh.context_mut()) {
                    Some(Ok(results)) => {
                        fresh.install_reached(results);
                        restored = true;
                    }
                    Some(Err(reason)) => {
                        eprintln!(
                            "pnsymd: snapshot {key:016x} rejected ({reason}); rebuilding cold"
                        )
                    }
                    None => {}
                }
            }
            let outcome = if restored {
                pool.note_restore();
                PoolOutcome::Restored
            } else {
                pool.note_miss();
                PoolOutcome::Miss
            };
            // Spill-instead-of-drop: the evicted entry's warm results go
            // to disk when durability is on, so LRU pressure loses time,
            // not work.
            if let Some(evicted) = pool.insert(fresh) {
                if let Some(store) = snapshots.as_deref_mut() {
                    match store.save_warm(&evicted) {
                        Ok(true) => pool.note_spill(),
                        Ok(false) => {}
                        Err(err) => {
                            eprintln!("pnsymd: failed to spill {:016x}: {err}", evicted.key())
                        }
                    }
                }
            }
            outcome
        };
        let entry = pool.get_mut(key).expect("entry just touched or inserted");

        // Reuse the cached fixpoint when this strategy already completed on
        // the warm context; otherwise run the governed traversal — resumed
        // from the last durable checkpoint when one exists, re-checkpointed
        // at pass boundaries as it runs — and cache (plus snapshot) the
        // result if it ran to completion. The parallel strategy restarts
        // from the initial marking instead: its sharded driver neither
        // consumes seeds nor reports pass boundaries.
        let mut spilled = false;
        let run = match entry.reached_for(strategy) {
            Some(run) => run,
            None => {
                let parallel = matches!(strategy, FixpointStrategy::Parallel { .. });
                let mut seed = None;
                let mut base_iterations = 0usize;
                if !parallel {
                    if let Some(store) = snapshots.as_deref_mut() {
                        match store.load_checkpoint(key, strategy, entry.context_mut()) {
                            Some(Ok((set, passes))) => {
                                seed = Some(set);
                                base_iterations = passes;
                            }
                            Some(Err(reason)) => eprintln!(
                                "pnsymd: checkpoint {key:016x} rejected ({reason}); restarting cold"
                            ),
                            None => {}
                        }
                    }
                }
                let checkpointing = !parallel && checkpoint_every != 0 && snapshots.is_some();
                let mut run = if checkpointing {
                    let spec = check.net.as_str();
                    let snapshots = &mut snapshots;
                    let mut observer = |ctx: &SymbolicContext, reached: Ref, pass: usize| {
                        if !pass.is_multiple_of(checkpoint_every) {
                            return;
                        }
                        if let Some(store) = snapshots.as_deref_mut() {
                            if let Err(err) = store.save_checkpoint(
                                key,
                                spec,
                                strategy,
                                ctx,
                                reached,
                                base_iterations + pass,
                            ) {
                                eprintln!("pnsymd: checkpoint write failed: {err}");
                            }
                        }
                    };
                    entry.context_mut().reachable_markings_observed(
                        options,
                        seed,
                        Some(&mut observer),
                    )
                } else {
                    entry
                        .context_mut()
                        .reachable_markings_observed(options, seed, None)
                };
                run.iterations += base_iterations;
                if let Some(seed) = seed {
                    entry.context_mut().manager_mut().unprotect(seed);
                }
                entry.store_reached(strategy, run);
                if run.truncated.is_none() {
                    if let Some(store) = snapshots {
                        store.clear_checkpoint(key);
                        match store.save_warm(&*entry) {
                            Ok(wrote) => spilled = wrote,
                            Err(err) => {
                                eprintln!("pnsymd: failed to snapshot {key:016x}: {err}")
                            }
                        }
                    }
                }
                run
            }
        };

        let portfolio_props: Vec<Property> = properties.iter().map(|(_, p)| p.clone()).collect();
        let portfolio = entry
            .context_mut()
            .check_portfolio_on(&portfolio_props, &run, options);
        if spilled {
            pool.note_spill();
        }

        let mut query_truncated = run.truncated;
        let mut faulted = false;
        for ((named, _), report) in properties.iter().zip(&portfolio.reports) {
            if query_truncated.is_none() {
                query_truncated = report.truncated;
            }
            if report.truncated == Some(TruncationReason::InjectedFault) {
                faulted = true;
            }
            let trace = if check.witness {
                report.trace.as_ref().map(|trace| {
                    trace
                        .transitions
                        .iter()
                        .map(|&t| net.transition_name(t).to_string())
                        .collect()
                })
            } else {
                None
            };
            emit(Response::Verdict(Verdict {
                id,
                name: named.name.clone(),
                formula: named.formula.clone(),
                holds: report.holds,
                sat_markings: report.sat_markings,
                reached_markings: report.reached_markings,
                truncated: report.truncated,
                trace_kind: if check.witness {
                    report.trace_kind
                } else {
                    None
                },
                trace,
                check_ms: report.duration.as_secs_f64() * 1e3,
            }));
        }

        // An injected fault is a server-side failure, not a budget verdict:
        // surface it as a typed (non-terminal) error line too, so clients
        // distinguish "your budget ran out" from "the backend faulted".
        if faulted {
            emit(Response::Error {
                id,
                code: ErrorCode::Internal,
                message: "injected fault tripped while evaluating the portfolio".to_string(),
                terminal: false,
                retry_after_ms: None,
            });
        }

        emit(Response::Done {
            id,
            net: check.net.clone(),
            pool: pool_outcome,
            properties: portfolio.reports.len() as u64,
            subterm_hits: portfolio.subterm_hits,
            subterm_lookups: portfolio.subterm_lookups,
            truncated: query_truncated,
            total_ms: start.elapsed().as_secs_f64() * 1e3,
        });
    }
}

/// What kind of trace a verdict line carries, re-exported for clients.
pub fn trace_kind_name(kind: TraceKind) -> &'static str {
    match kind {
        TraceKind::Witness => "witness",
        TraceKind::Counterexample => "counterexample",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::proto::PoolOutcome;
    use pnsym_net::nets;

    fn test_scheduler(capacity: usize) -> Scheduler {
        let resolver: NetResolver = Box::new(|spec| match spec {
            "figure1" => Some(nets::figure1()),
            "phil-2" => Some(nets::philosophers(2)),
            _ => None,
        });
        Scheduler::new(
            ServerConfig {
                pool_capacity: capacity,
                ..ServerConfig::default()
            },
            resolver,
        )
    }

    fn collect(scheduler: &mut Scheduler, request: &Request) -> Vec<Response> {
        let mut out = Vec::new();
        scheduler.handle(request, &mut |resp| out.push(resp));
        assert!(
            out.last().is_some_and(Response::is_terminal),
            "stream must end with a terminal line: {out:?}"
        );
        out
    }

    #[test]
    fn strategy_names_round_trip_through_display() {
        for strategy in [
            FixpointStrategy::Bfs { use_frontier: true },
            FixpointStrategy::Bfs {
                use_frontier: false,
            },
            FixpointStrategy::Chaining {
                order: ChainingOrder::Structural,
            },
            FixpointStrategy::Chaining {
                order: ChainingOrder::Index,
            },
            FixpointStrategy::Saturation,
            FixpointStrategy::Parallel { threads: 3 },
        ] {
            assert_eq!(parse_strategy(&strategy.to_string()), Some(strategy));
        }
        assert_eq!(parse_strategy("dfs"), None);
    }

    #[test]
    fn check_streams_verdicts_and_reports_warm_hits() {
        let mut scheduler = test_scheduler(2);
        let request = Request::check_text(
            1,
            "phil-2",
            &[
                ("exclusion", "AG !(eating.0 & eating.1)"),
                ("can-eat", "EF eating.0"),
            ],
        );
        let cold = collect(&mut scheduler, &request);
        assert_eq!(cold.len(), 3);
        let Response::Done { pool, .. } = &cold[2] else {
            panic!("expected done line, got {:?}", cold[2]);
        };
        assert_eq!(*pool, PoolOutcome::Miss);

        let warm = collect(&mut scheduler, &request);
        let Response::Done { pool, .. } = &warm[2] else {
            panic!("expected done line, got {:?}", warm[2]);
        };
        assert_eq!(*pool, PoolOutcome::Hit);
        // Bit-identical verdicts cold vs warm (timing aside).
        let zero_ms = |resp: &Response| match resp {
            Response::Verdict(v) => {
                let mut v = v.clone();
                v.check_ms = 0.0;
                Response::Verdict(v)
            }
            other => other.clone(),
        };
        let cold_norm: Vec<_> = cold[0..2].iter().map(zero_ms).collect();
        let warm_norm: Vec<_> = warm[0..2].iter().map(zero_ms).collect();
        assert_eq!(cold_norm, warm_norm);
        let Response::Verdict(v) = &cold[0] else {
            panic!("expected verdict, got {:?}", cold[0]);
        };
        assert!(v.holds, "philosophers(2) exclusion holds");
    }

    #[test]
    fn bad_formula_is_a_typed_nonterminal_error() {
        let mut scheduler = test_scheduler(1);
        let request = Request::check_text(
            7,
            "figure1",
            &[("bad", "EF nonexistent_place"), ("good", "EF p7")],
        );
        let responses = collect(&mut scheduler, &request);
        assert_eq!(responses.len(), 3, "{responses:?}");
        let Response::Error { code, terminal, .. } = &responses[0] else {
            panic!("expected property error, got {:?}", responses[0]);
        };
        assert_eq!(*code, ErrorCode::Property);
        assert!(!terminal, "property errors must not close the stream");
        assert!(matches!(&responses[1], Response::Verdict(v) if v.name == "good" && v.holds));
        assert!(matches!(&responses[2], Response::Done { .. }));
    }

    #[test]
    fn unknown_net_and_strategy_are_terminal_errors() {
        let mut scheduler = test_scheduler(1);
        let bad_net = Request::check_text(2, "zorkmid-9", &[("p", "EF p7")]);
        let responses = collect(&mut scheduler, &bad_net);
        assert_eq!(responses.len(), 1);
        assert!(matches!(
            &responses[0],
            Response::Error {
                code: ErrorCode::Net,
                terminal: true,
                ..
            }
        ));

        let mut bad_strategy = Request::check_text(3, "figure1", &[("p", "EF p7")]);
        if let Request::Check(check) = &mut bad_strategy {
            check.strategy = Some("dfs".to_string());
        }
        let responses = collect(&mut scheduler, &bad_strategy);
        assert_eq!(responses.len(), 1);
        assert!(matches!(
            &responses[0],
            Response::Error {
                code: ErrorCode::Request,
                terminal: true,
                ..
            }
        ));
    }

    #[test]
    fn zero_deadline_degrades_to_typed_deadline_verdicts() {
        let mut scheduler = test_scheduler(1);
        let mut request = Request::check_text(4, "phil-2", &[("p", "EF eating.0")]);
        if let Request::Check(check) = &mut request {
            check.deadline_ms = Some(0);
        }
        let responses = collect(&mut scheduler, &request);
        let Response::Verdict(v) = &responses[0] else {
            panic!("expected verdict, got {:?}", responses[0]);
        };
        assert_eq!(v.truncated, Some(TruncationReason::Deadline));
        let Response::Done { truncated, .. } = &responses[1] else {
            panic!("expected done, got {:?}", responses[1]);
        };
        assert_eq!(*truncated, Some(TruncationReason::Deadline));

        // The pool stays serviceable: the same context answers an
        // ungoverned query cleanly afterwards.
        let clean = collect(
            &mut scheduler,
            &Request::check_text(5, "phil-2", &[("p", "EF eating.0")]),
        );
        let Response::Verdict(v) = &clean[0] else {
            panic!("expected verdict, got {:?}", clean[0]);
        };
        assert_eq!(v.truncated, None);
        assert!(v.holds);
    }
}
