//! The `pnsymd` wire protocol: line-delimited JSON over TCP.
//!
//! Every request and every response is one JSON object on one line —
//! hand-rolled on `std` (no serde in the dependency closure), mirroring the
//! workspace's hand-rolled JSON *writer* in the bench crate with the parser
//! this module adds. The protocol is strictly request/response with
//! streaming: one request line produces one or more response lines, the
//! last of which is *terminal* ([`Response::is_terminal`]), so a client
//! reads until the terminal line and the connection is immediately ready
//! for the next request.
//!
//! Malformed input of any kind — unparseable JSON, an unknown `op`, a
//! formula [`Property::parse`](crate::Property::parse) rejects — comes back
//! as a typed [`Response::Error`]; the server never drops the connection
//! over bad input and never panics on it.

use crate::mc::TraceKind;
use pnsym_bdd::TruncationReason;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------------

/// A parsed JSON value (the wire protocol's abstract syntax).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace), suitable for one
    /// protocol line. Non-finite floats are not valid JSON and serialize as
    /// `null`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) if f.is_finite() => {
                // `Display` prints the shortest string that round-trips the
                // f64; add a decimal point when it omits one so the value
                // parses back as a float rather than an integer.
                let mut num = String::new();
                let _ = write!(num, "{f}");
                if !num.contains(['.', 'e', 'E']) {
                    num.push_str(".0");
                }
                out.push_str(&num);
            }
            Json::Float(_) => out.push_str("null"),
            Json::Str(s) => write_json_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text`, requiring it to consume the whole
    /// input (trailing whitespace aside).
    pub fn parse(text: &str) -> Result<Json, ProtoError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ProtoError::json(format!(
                "trailing bytes at offset {pos} after the JSON value"
            )));
        }
        Ok(value)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, ProtoError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(ProtoError::json("unexpected end of input".to_string()));
    };
    match b {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(ProtoError::json(format!("expected ':' at offset {pos}")));
                }
                *pos += 1;
                let value = parse_value(text, bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(ProtoError::json(format!(
                            "expected ',' or '}}' at offset {pos}"
                        )))
                    }
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ProtoError::json(format!(
                            "expected ',' or ']' at offset {pos}"
                        )))
                    }
                }
            }
        }
        b'"' => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        b't' if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        b'f' if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        b'n' if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        b'-' | b'0'..=b'9' => parse_number(text, bytes, pos),
        _ => Err(ProtoError::json(format!(
            "unexpected byte {:?} at offset {pos}",
            b as char
        ))),
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, ProtoError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(ProtoError::json(format!("expected '\"' at offset {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = text[*pos..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => {
                let Some((_, esc)) = chars.next() else { break };
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = chars.next() else {
                                return Err(ProtoError::json("truncated \\u escape".to_string()));
                            };
                            let d = h.to_digit(16).ok_or_else(|| {
                                ProtoError::json(format!("bad hex digit {h:?} in \\u escape"))
                            })?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not produced by this writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(ProtoError::json(format!("bad escape \\{other}")));
                    }
                }
            }
            c => out.push(c),
        }
    }
    Err(ProtoError::json("unterminated string".to_string()))
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, ProtoError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let slice = &text[start..*pos];
    if !fractional {
        if let Ok(i) = slice.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    slice
        .parse::<f64>()
        .map(Json::Float)
        .map_err(|_| ProtoError::json(format!("bad number {slice:?} at offset {start}")))
}

// ---------------------------------------------------------------------------
// Typed protocol errors
// ---------------------------------------------------------------------------

/// What class of failure a [`Response::Error`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// The request line was not valid JSON.
    Json,
    /// The request was valid JSON but not a valid request (unknown `op`,
    /// missing or ill-typed field, unknown strategy).
    Request,
    /// The requested net spec did not resolve.
    Net,
    /// A property formula was rejected by the parser; the query's other
    /// properties are still evaluated.
    Property,
    /// A server-side failure (e.g. an injected fault tripped mid-query).
    Internal,
    /// The server's admission gate is full (`--max-inflight` plus
    /// `--max-queue` portfolio queries already pending). The error line
    /// carries a `retry_after_ms` hint; resending the same request
    /// (idempotent by id) after the hint is the intended recovery.
    Overloaded,
}

impl ErrorCode {
    fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Json => "json",
            ErrorCode::Request => "request",
            ErrorCode::Net => "net",
            ErrorCode::Property => "property",
            ErrorCode::Internal => "internal",
            ErrorCode::Overloaded => "overloaded",
        }
    }

    fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "json" => ErrorCode::Json,
            "request" => ErrorCode::Request,
            "net" => ErrorCode::Net,
            "property" => ErrorCode::Property,
            "internal" => ErrorCode::Internal,
            "overloaded" => ErrorCode::Overloaded,
            _ => return None,
        })
    }
}

/// A typed protocol failure: decoding a request or response line failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The failure class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    fn json(message: String) -> ProtoError {
        ProtoError {
            code: ErrorCode::Json,
            message,
        }
    }

    fn request(message: String) -> ProtoError {
        ProtoError {
            code: ErrorCode::Request,
            message,
        }
    }

    /// The terminal [`Response::Error`] this decoding failure maps to.
    pub fn into_response(self, id: u64) -> Response {
        Response::Error {
            id,
            code: self.code,
            message: self.message,
            terminal: true,
            retry_after_ms: None,
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One named formula of a portfolio query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedFormula {
    /// Short identifier echoed on the verdict line.
    pub name: String,
    /// The formula, in the textual CTL syntax of
    /// [`Property::parse`](crate::Property::parse).
    pub formula: String,
}

/// A portfolio query: one net, a portfolio of CTL properties, an optional
/// per-query budget and traversal strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckRequest {
    /// Client-chosen id echoed on every response line.
    pub id: u64,
    /// The net spec, resolved by the server's net resolver (the bundled
    /// daemon understands the bench `net_by_spec` grammar: `figure1`,
    /// `phil-3`, `philosophers(3)`, `dme-spec-3`, ...).
    pub net: String,
    /// The portfolio, evaluated in order in a single bottom-up pass with
    /// shared subterm caching.
    pub properties: Vec<NamedFormula>,
    /// Wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Live-node ceiling of the evaluating manager.
    pub node_ceiling: Option<u64>,
    /// Governed-step ceiling.
    pub step_ceiling: Option<u64>,
    /// Seed for a deterministic injected-fault schedule; honored only when
    /// the server is built with the `fault-inject` feature, ignored
    /// otherwise.
    pub fault_seed: Option<u64>,
    /// Traversal strategy override (`bfs`, `chaining`, `saturation`,
    /// `parallel`); `None` uses the server default.
    pub strategy: Option<String>,
    /// Whether verdict lines should carry witness traces.
    pub witness: bool,
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered by [`Response::Pong`].
    Ping {
        /// Client-chosen id echoed on the response.
        id: u64,
    },
    /// Pool/scheduler statistics; answered by [`Response::Stats`].
    Stats {
        /// Client-chosen id echoed on the response.
        id: u64,
    },
    /// Orderly shutdown; answered by [`Response::Bye`], after which the
    /// server stops accepting connections.
    Shutdown {
        /// Client-chosen id echoed on the response.
        id: u64,
    },
    /// A portfolio query; answered by a stream of [`Response::Verdict`]
    /// (and per-property [`Response::Error`]) lines closed by a
    /// [`Response::Done`].
    Check(CheckRequest),
}

impl Request {
    /// Convenience constructor for a budgetless portfolio query from
    /// `(name, formula)` text pairs.
    pub fn check_text(id: u64, net: &str, properties: &[(&str, &str)]) -> Request {
        Request::Check(CheckRequest {
            id,
            net: net.to_string(),
            properties: properties
                .iter()
                .map(|(name, formula)| NamedFormula {
                    name: name.to_string(),
                    formula: formula.to_string(),
                })
                .collect(),
            deadline_ms: None,
            node_ceiling: None,
            step_ceiling: None,
            fault_seed: None,
            strategy: None,
            witness: true,
        })
    }

    /// The client-chosen id of the request.
    pub fn id(&self) -> u64 {
        match self {
            Request::Ping { id } | Request::Stats { id } | Request::Shutdown { id } => *id,
            Request::Check(c) => c.id,
        }
    }

    /// Serializes the request as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let op = match self {
            Request::Ping { .. } => "ping",
            Request::Stats { .. } => "stats",
            Request::Shutdown { .. } => "shutdown",
            Request::Check(_) => "check",
        };
        fields.push(("op".to_string(), Json::Str(op.to_string())));
        fields.push(("id".to_string(), Json::Int(self.id() as i64)));
        if let Request::Check(c) = self {
            fields.push(("net".to_string(), Json::Str(c.net.clone())));
            fields.push((
                "properties".to_string(),
                Json::Arr(
                    c.properties
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::Str(p.name.clone())),
                                ("formula".to_string(), Json::Str(p.formula.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
            let opt = |fields: &mut Vec<(String, Json)>, key: &str, v: Option<u64>| {
                if let Some(v) = v {
                    fields.push((key.to_string(), Json::Int(v as i64)));
                }
            };
            opt(&mut fields, "deadline_ms", c.deadline_ms);
            opt(&mut fields, "node_ceiling", c.node_ceiling);
            opt(&mut fields, "step_ceiling", c.step_ceiling);
            opt(&mut fields, "fault_seed", c.fault_seed);
            if let Some(strategy) = &c.strategy {
                fields.push(("strategy".to_string(), Json::Str(strategy.clone())));
            }
            fields.push(("witness".to_string(), Json::Bool(c.witness)));
        }
        let mut out = String::new();
        Json::Obj(fields).write(&mut out);
        out
    }

    /// Decodes one request line. Failures carry a typed [`ProtoError`]
    /// which the server answers with a terminal [`Response::Error`] — the
    /// connection itself survives.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let value = Json::parse(line)?;
        if !matches!(value, Json::Obj(_)) {
            return Err(ProtoError::request(
                "request must be a JSON object".to_string(),
            ));
        }
        let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
        let op = value
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::request("missing string field \"op\"".to_string()))?;
        match op {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "check" => {
                let net = value
                    .get("net")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ProtoError::request("check: missing string field \"net\"".to_string())
                    })?
                    .to_string();
                let Some(Json::Arr(raw_props)) = value.get("properties") else {
                    return Err(ProtoError::request(
                        "check: missing array field \"properties\"".to_string(),
                    ));
                };
                let mut properties = Vec::with_capacity(raw_props.len());
                for (i, p) in raw_props.iter().enumerate() {
                    let formula = p.get("formula").and_then(Json::as_str).ok_or_else(|| {
                        ProtoError::request(format!(
                            "check: properties[{i}] is missing string field \"formula\""
                        ))
                    })?;
                    let name = p
                        .get("name")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| format!("p{i}"));
                    properties.push(NamedFormula {
                        name,
                        formula: formula.to_string(),
                    });
                }
                let uint = |key: &str| -> Result<Option<u64>, ProtoError> {
                    match value.get(key) {
                        None | Some(Json::Null) => Ok(None),
                        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                            ProtoError::request(format!(
                                "check: field \"{key}\" must be a non-negative integer"
                            ))
                        }),
                    }
                };
                Ok(Request::Check(CheckRequest {
                    id,
                    net,
                    properties,
                    deadline_ms: uint("deadline_ms")?,
                    node_ceiling: uint("node_ceiling")?,
                    step_ceiling: uint("step_ceiling")?,
                    fault_seed: uint("fault_seed")?,
                    strategy: value
                        .get("strategy")
                        .and_then(Json::as_str)
                        .map(str::to_string),
                    witness: value.get("witness").and_then(Json::as_bool).unwrap_or(true),
                }))
            }
            other => Err(ProtoError::request(format!("unknown op {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One verdict line of a portfolio query.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// The request id.
    pub id: u64,
    /// The property's name, echoed from the request.
    pub name: String,
    /// The formula text, echoed from the request.
    pub formula: String,
    /// Whether the initial marking satisfies the property (over the
    /// explored prefix when `truncated` is set).
    pub holds: bool,
    /// Markings of the reached set satisfying the property.
    pub sat_markings: f64,
    /// Markings of the reached set the property was evaluated over.
    pub reached_markings: f64,
    /// Why the verdict is non-definitive, if it is.
    pub truncated: Option<TruncationReason>,
    /// What the attached trace demonstrates, when one is attached.
    pub trace_kind: Option<TraceKind>,
    /// The trace as a firing sequence of transition names.
    pub trace: Option<Vec<String>>,
    /// Server-side evaluation time of this property, milliseconds.
    pub check_ms: f64,
}

/// Whether a portfolio query was answered from a warm pool entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolOutcome {
    /// The net's context (and possibly its reached set) was already warm.
    Hit,
    /// A fresh context was built (and possibly an older one evicted).
    Miss,
    /// The context was rehydrated from an on-disk snapshot: warm results
    /// without a traversal, but a rebuilt manager.
    Restored,
}

/// One decoded response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`]. Terminal.
    Pong {
        /// The request id.
        id: u64,
    },
    /// Answer to [`Request::Stats`]. Terminal.
    Stats {
        /// The request id.
        id: u64,
        /// Warm contexts currently pooled.
        contexts: u64,
        /// Pool hits since start.
        hits: u64,
        /// Pool misses since start.
        misses: u64,
        /// Pool evictions since start.
        evictions: u64,
        /// Warm entries spilled to the snapshot directory since start.
        spills: u64,
        /// Queries rehydrated from snapshots since start.
        restores: u64,
        /// Portfolio queries served since start.
        queries: u64,
    },
    /// Answer to [`Request::Shutdown`]. Terminal.
    Bye {
        /// The request id.
        id: u64,
    },
    /// A typed error. `terminal` distinguishes a query-level failure (the
    /// request is answered, the response stream ends here) from a
    /// property-level one (more lines follow; the query's `done` line still
    /// closes the stream). The connection survives either way.
    Error {
        /// The request id (0 when the line did not decode far enough to
        /// carry one).
        id: u64,
        /// The failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Whether this line closes the response stream of its request.
        terminal: bool,
        /// For [`ErrorCode::Overloaded`]: how long the client should back
        /// off before resending the (idempotent) request, in milliseconds.
        retry_after_ms: Option<u64>,
    },
    /// One property's verdict within a portfolio query.
    Verdict(Verdict),
    /// The summary line closing a portfolio query. Terminal.
    Done {
        /// The request id.
        id: u64,
        /// The net spec, echoed from the request.
        net: String,
        /// Whether the query hit a warm pooled context.
        pool: PoolOutcome,
        /// Number of verdicts streamed before this line.
        properties: u64,
        /// Shared-subterm cache hits of the portfolio pass.
        subterm_hits: u64,
        /// Shared-subterm cache lookups of the portfolio pass.
        subterm_lookups: u64,
        /// The query-level truncation reason, if any part degraded.
        truncated: Option<TruncationReason>,
        /// Server-side total time of the query, milliseconds.
        total_ms: f64,
    },
}

fn truncation_to_str(reason: TruncationReason) -> &'static str {
    match reason {
        TruncationReason::Iterations => "iterations",
        TruncationReason::Deadline => "deadline",
        TruncationReason::NodeBudget => "node-budget",
        TruncationReason::StepBudget => "step-budget",
        TruncationReason::InjectedFault => "injected-fault",
        TruncationReason::WorkerLoss => "worker-loss",
    }
}

fn truncation_from_str(s: &str) -> Option<TruncationReason> {
    Some(match s {
        "iterations" => TruncationReason::Iterations,
        "deadline" => TruncationReason::Deadline,
        "node-budget" => TruncationReason::NodeBudget,
        "step-budget" => TruncationReason::StepBudget,
        "injected-fault" => TruncationReason::InjectedFault,
        "worker-loss" => TruncationReason::WorkerLoss,
        _ => return None,
    })
}

impl Response {
    /// Whether this line closes the response stream of its request (the
    /// client stops reading after it).
    pub fn is_terminal(&self) -> bool {
        match self {
            Response::Pong { .. }
            | Response::Stats { .. }
            | Response::Bye { .. }
            | Response::Done { .. } => true,
            Response::Error { terminal, .. } => *terminal,
            Response::Verdict(_) => false,
        }
    }

    /// The request id the line answers.
    pub fn id(&self) -> u64 {
        match self {
            Response::Pong { id }
            | Response::Stats { id, .. }
            | Response::Bye { id }
            | Response::Error { id, .. }
            | Response::Done { id, .. } => *id,
            Response::Verdict(v) => v.id,
        }
    }

    /// Serializes the response as one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let push_str = |fields: &mut Vec<(String, Json)>, key: &str, v: &str| {
            fields.push((key.to_string(), Json::Str(v.to_string())));
        };
        let push_int = |fields: &mut Vec<(String, Json)>, key: &str, v: u64| {
            fields.push((key.to_string(), Json::Int(v as i64)));
        };
        match self {
            Response::Pong { id } => {
                push_str(&mut fields, "type", "pong");
                push_int(&mut fields, "id", *id);
            }
            Response::Stats {
                id,
                contexts,
                hits,
                misses,
                evictions,
                spills,
                restores,
                queries,
            } => {
                push_str(&mut fields, "type", "stats");
                push_int(&mut fields, "id", *id);
                push_int(&mut fields, "contexts", *contexts);
                push_int(&mut fields, "hits", *hits);
                push_int(&mut fields, "misses", *misses);
                push_int(&mut fields, "evictions", *evictions);
                push_int(&mut fields, "spills", *spills);
                push_int(&mut fields, "restores", *restores);
                push_int(&mut fields, "queries", *queries);
            }
            Response::Bye { id } => {
                push_str(&mut fields, "type", "bye");
                push_int(&mut fields, "id", *id);
            }
            Response::Error {
                id,
                code,
                message,
                terminal,
                retry_after_ms,
            } => {
                push_str(&mut fields, "type", "error");
                push_int(&mut fields, "id", *id);
                push_str(&mut fields, "code", code.as_str());
                push_str(&mut fields, "message", message);
                fields.push(("terminal".to_string(), Json::Bool(*terminal)));
                if let Some(ms) = retry_after_ms {
                    push_int(&mut fields, "retry_after_ms", *ms);
                }
            }
            Response::Verdict(v) => {
                push_str(&mut fields, "type", "verdict");
                push_int(&mut fields, "id", v.id);
                push_str(&mut fields, "name", &v.name);
                push_str(&mut fields, "formula", &v.formula);
                fields.push(("holds".to_string(), Json::Bool(v.holds)));
                fields.push(("sat_markings".to_string(), Json::Float(v.sat_markings)));
                fields.push((
                    "reached_markings".to_string(),
                    Json::Float(v.reached_markings),
                ));
                if let Some(reason) = v.truncated {
                    push_str(&mut fields, "truncated", truncation_to_str(reason));
                }
                if let Some(kind) = v.trace_kind {
                    let kind = match kind {
                        TraceKind::Witness => "witness",
                        TraceKind::Counterexample => "counterexample",
                    };
                    push_str(&mut fields, "trace_kind", kind);
                }
                if let Some(trace) = &v.trace {
                    fields.push((
                        "trace".to_string(),
                        Json::Arr(trace.iter().map(|t| Json::Str(t.clone())).collect()),
                    ));
                }
                fields.push(("check_ms".to_string(), Json::Float(v.check_ms)));
            }
            Response::Done {
                id,
                net,
                pool,
                properties,
                subterm_hits,
                subterm_lookups,
                truncated,
                total_ms,
            } => {
                push_str(&mut fields, "type", "done");
                push_int(&mut fields, "id", *id);
                push_str(&mut fields, "net", net);
                let pool = match pool {
                    PoolOutcome::Hit => "hit",
                    PoolOutcome::Miss => "miss",
                    PoolOutcome::Restored => "restored",
                };
                push_str(&mut fields, "pool", pool);
                push_int(&mut fields, "properties", *properties);
                push_int(&mut fields, "subterm_hits", *subterm_hits);
                push_int(&mut fields, "subterm_lookups", *subterm_lookups);
                if let Some(reason) = truncated {
                    push_str(&mut fields, "truncated", truncation_to_str(*reason));
                }
                fields.push(("total_ms".to_string(), Json::Float(*total_ms)));
            }
        }
        let mut out = String::new();
        Json::Obj(fields).write(&mut out);
        out
    }

    /// Decodes one response line.
    pub fn parse(line: &str) -> Result<Response, ProtoError> {
        let value = Json::parse(line)?;
        let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
        let ty = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::request("missing string field \"type\"".to_string()))?;
        let uint = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
        let float = |key: &str| value.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let truncated = || {
            value
                .get("truncated")
                .and_then(Json::as_str)
                .and_then(truncation_from_str)
        };
        match ty {
            "pong" => Ok(Response::Pong { id }),
            "bye" => Ok(Response::Bye { id }),
            "stats" => Ok(Response::Stats {
                id,
                contexts: uint("contexts"),
                hits: uint("hits"),
                misses: uint("misses"),
                evictions: uint("evictions"),
                spills: uint("spills"),
                restores: uint("restores"),
                queries: uint("queries"),
            }),
            "error" => {
                let code = value
                    .get("code")
                    .and_then(Json::as_str)
                    .and_then(ErrorCode::parse)
                    .ok_or_else(|| {
                        ProtoError::request("error: missing or unknown \"code\"".to_string())
                    })?;
                Ok(Response::Error {
                    id,
                    code,
                    message: value
                        .get("message")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    terminal: value
                        .get("terminal")
                        .and_then(Json::as_bool)
                        .unwrap_or(true),
                    retry_after_ms: value.get("retry_after_ms").and_then(Json::as_u64),
                })
            }
            "verdict" => {
                let trace = match value.get("trace") {
                    Some(Json::Arr(items)) => Some(
                        items
                            .iter()
                            .map(|t| {
                                t.as_str().map(str::to_string).ok_or_else(|| {
                                    ProtoError::request(
                                        "verdict: trace entries must be strings".to_string(),
                                    )
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    ),
                    _ => None,
                };
                let trace_kind = match value.get("trace_kind").and_then(Json::as_str) {
                    Some("witness") => Some(TraceKind::Witness),
                    Some("counterexample") => Some(TraceKind::Counterexample),
                    _ => None,
                };
                Ok(Response::Verdict(Verdict {
                    id,
                    name: value
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    formula: value
                        .get("formula")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    holds: value.get("holds").and_then(Json::as_bool).unwrap_or(false),
                    sat_markings: float("sat_markings"),
                    reached_markings: float("reached_markings"),
                    truncated: truncated(),
                    trace_kind,
                    trace,
                    check_ms: float("check_ms"),
                }))
            }
            "done" => {
                let pool = match value.get("pool").and_then(Json::as_str) {
                    Some("hit") => PoolOutcome::Hit,
                    Some("restored") => PoolOutcome::Restored,
                    _ => PoolOutcome::Miss,
                };
                Ok(Response::Done {
                    id,
                    net: value
                        .get("net")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    pool,
                    properties: uint("properties"),
                    subterm_hits: uint("subterm_hits"),
                    subterm_lookups: uint("subterm_lookups"),
                    truncated: truncated(),
                    total_ms: float("total_ms"),
                })
            }
            other => Err(ProtoError::request(format!(
                "unknown response type {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_round_trip() {
        let requests = [
            Request::Ping { id: 7 },
            Request::Stats { id: 0 },
            Request::Shutdown {
                id: u32::MAX as u64,
            },
            Request::check_text(3, "phil-3", &[("can-eat", "EF eating.0")]),
            Request::Check(CheckRequest {
                id: 9,
                net: "dme-spec-3".to_string(),
                properties: vec![NamedFormula {
                    name: "weird \"name\"\n".to_string(),
                    formula: "AG !(critical.0 & critical.1)".to_string(),
                }],
                deadline_ms: Some(250),
                node_ceiling: Some(1_000_000),
                step_ceiling: Some(1 << 40),
                fault_seed: Some(42),
                strategy: Some("saturation".to_string()),
                witness: false,
            }),
        ];
        for request in requests {
            let line = request.to_line();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn response_lines_round_trip() {
        let responses = [
            Response::Pong { id: 1 },
            Response::Bye { id: 2 },
            Response::Stats {
                id: 3,
                contexts: 2,
                hits: 10,
                misses: 4,
                evictions: 2,
                spills: 3,
                restores: 1,
                queries: 14,
            },
            Response::Error {
                id: 4,
                code: ErrorCode::Property,
                message: "parse error at position 3: unknown place \"zork\"".to_string(),
                terminal: false,
                retry_after_ms: None,
            },
            Response::Error {
                id: 11,
                code: ErrorCode::Overloaded,
                message: "admission gate full".to_string(),
                terminal: true,
                retry_after_ms: Some(150),
            },
            Response::Verdict(Verdict {
                id: 5,
                name: "can-eat".to_string(),
                formula: "EF eating.0".to_string(),
                holds: true,
                sat_markings: 18.0,
                reached_markings: 22.0,
                truncated: Some(TruncationReason::Deadline),
                trace_kind: Some(TraceKind::Witness),
                trace: Some(vec!["go.0".to_string(), "takel.0".to_string()]),
                check_ms: 1.25,
            }),
            Response::Done {
                id: 6,
                net: "phil-3".to_string(),
                pool: PoolOutcome::Hit,
                properties: 6,
                subterm_hits: 4,
                subterm_lookups: 19,
                truncated: None,
                total_ms: 0.5,
            },
            Response::Done {
                id: 8,
                net: "muller-6".to_string(),
                pool: PoolOutcome::Restored,
                properties: 1,
                subterm_hits: 0,
                subterm_lookups: 2,
                truncated: None,
                total_ms: 0.25,
            },
        ];
        for response in responses {
            let line = response.to_line();
            assert_eq!(Response::parse(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn malformed_lines_produce_typed_errors() {
        for line in ["", "{", "nope", "[1,2]", "{\"op\":\"zap\"}", "{\"id\":1}"] {
            let err = Request::parse(line).unwrap_err();
            assert!(
                matches!(err.code, ErrorCode::Json | ErrorCode::Request),
                "{line:?} -> {err}"
            );
        }
    }

    #[test]
    fn string_escapes_survive_the_codec() {
        let ugly = "a\"b\\c\nd\te\u{1}f\u{fffd}";
        let mut out = String::new();
        Json::Str(ugly.to_string()).write(&mut out);
        assert_eq!(Json::parse(&out).unwrap(), Json::Str(ugly.to_string()));
    }
}
