//! Warm-context pool: an LRU of [`SymbolicContext`]s keyed by a canonical
//! net hash.
//!
//! Building a context is the expensive part of answering a query — encoding
//! selection, variable ordering, transition clustering, and above all the
//! first reachability fixpoint. The daemon therefore keeps the last few
//! contexts warm: a repeat query for the same net reuses the context's
//! `ImagePlan`/`PreImagePlan`, its computed caches, *and* the completed
//! reached set, skipping the traversal entirely. Eviction is LRU, so a
//! burst over one family cannot permanently evict another family's warm
//! state beyond the pool capacity.
//!
//! The key is a canonical structural hash of the net (names, arcs, initial
//! marking), not the request's spec string, so `phil-3` and
//! `philosophers(3)` share one warm entry.

use super::proto::PoolOutcome;
use crate::context::SymbolicContext;
use crate::traverse::{FixpointStrategy, ReachabilityResult};
use pnsym_net::{Marking, PetriNet};

/// The splitmix64 finaliser, chained over the net's canonical fields.
fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(value);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn mix_str(mut state: u64, s: &str) -> u64 {
    state = mix(state, s.len() as u64);
    for chunk in s.as_bytes().chunks(8) {
        let mut word = 0u64;
        for (i, &b) in chunk.iter().enumerate() {
            word |= (b as u64) << (8 * i);
        }
        state = mix(state, word);
    }
    state
}

fn mix_marking(mut state: u64, m: &Marking) -> u64 {
    state = mix(state, m.num_places() as u64);
    for p in m.iter() {
        state = mix(state, p.0 as u64);
    }
    state
}

/// A canonical structural hash of a net: place/transition names in index
/// order, every pre/post arc, and the initial marking. Two structurally
/// identical nets hash equal regardless of how the client spelled the net
/// spec; any structural difference (one arc, one token) changes the key.
pub fn canonical_net_hash(net: &PetriNet) -> u64 {
    let mut state = mix_str(0x706e_7379_6d64, net.name());
    state = mix(state, net.num_places() as u64);
    state = mix(state, net.num_transitions() as u64);
    for p in net.places() {
        state = mix_str(state, net.place_name(p));
    }
    for t in net.transitions() {
        state = mix_str(state, net.transition_name(t));
        for &p in net.pre_set(t) {
            state = mix(state, p.0 as u64);
        }
        state = mix(state, u64::MAX);
        for &p in net.post_set(t) {
            state = mix(state, p.0 as u64);
        }
        state = mix(state, u64::MAX - 1);
    }
    mix_marking(state, net.initial_marking())
}

/// Cumulative pool counters, reported on the `stats` protocol line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Queries answered from an already-warm context.
    pub hits: u64,
    /// Queries that had to build a fresh context.
    pub misses: u64,
    /// Warm contexts discarded to make room.
    pub evictions: u64,
    /// Warm entries written to the snapshot directory (on completion or
    /// eviction).
    pub spills: u64,
    /// Queries rehydrated from an on-disk snapshot instead of a cold
    /// rebuild.
    pub restores: u64,
}

/// One pooled entry: a warm [`SymbolicContext`] plus the completed reached
/// sets computed on it, keyed by traversal strategy.
pub struct WarmContext {
    key: u64,
    spec: String,
    ctx: SymbolicContext,
    reached: Vec<(FixpointStrategy, ReachabilityResult)>,
}

impl WarmContext {
    /// Wraps a freshly built context into a (still result-less) pool entry.
    /// `spec` is the net spec the entry was first built for — informational
    /// only (the pool key is the canonical net hash), but recorded in
    /// snapshots so on-disk state is attributable.
    pub fn new(key: u64, spec: impl Into<String>, ctx: SymbolicContext) -> WarmContext {
        WarmContext {
            key,
            spec: spec.into(),
            ctx,
            reached: Vec::new(),
        }
    }

    /// The canonical net hash this entry is keyed by.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The net spec this entry was first built for.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The warm context.
    pub fn context(&self) -> &SymbolicContext {
        &self.ctx
    }

    /// The warm context.
    pub fn context_mut(&mut self) -> &mut SymbolicContext {
        &mut self.ctx
    }

    /// All cached complete reached sets, in insertion order.
    pub fn reached_all(&self) -> &[(FixpointStrategy, ReachabilityResult)] {
        &self.reached
    }

    /// Replaces the cached reached sets wholesale — the snapshot-restore
    /// path, which rebuilds the whole per-strategy list from disk.
    pub fn install_reached(&mut self, reached: Vec<(FixpointStrategy, ReachabilityResult)>) {
        self.reached = reached;
    }

    /// The cached *complete* reached set for `strategy`, if one was stored.
    /// The underlying BDD root stays protected for the context's lifetime
    /// (traversal protects it), so the `Ref` inside is valid as long as
    /// this entry lives.
    pub fn reached_for(&self, strategy: FixpointStrategy) -> Option<ReachabilityResult> {
        self.reached
            .iter()
            .find(|(s, _)| *s == strategy)
            .map(|(_, run)| *run)
    }

    /// Stores a reached set for reuse. Truncated runs are *not* cached —
    /// a degraded prefix must never masquerade as the fixpoint for a later
    /// query with a healthier budget.
    pub fn store_reached(&mut self, strategy: FixpointStrategy, run: ReachabilityResult) {
        if run.truncated.is_some() {
            return;
        }
        if let Some(slot) = self.reached.iter_mut().find(|(s, _)| *s == strategy) {
            slot.1 = run;
        } else {
            self.reached.push((strategy, run));
        }
    }
}

/// An LRU pool of warm contexts. Most-recently-used entries live at the
/// back of the list; acquiring past capacity evicts from the front.
pub struct ContextPool {
    capacity: usize,
    entries: Vec<WarmContext>,
    stats: PoolStats,
}

impl ContextPool {
    /// Creates a pool holding at most `capacity` warm contexts
    /// (a capacity of 0 is clamped to 1 — the pool always retains the
    /// entry it just built for the duration of the query using it).
    pub fn new(capacity: usize) -> ContextPool {
        ContextPool {
            capacity: capacity.max(1),
            entries: Vec::new(),
            stats: PoolStats::default(),
        }
    }

    /// Cumulative counters.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of warm contexts currently pooled.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks the entry for `key` most-recently-used and counts a hit.
    /// Returns `false` (and counts nothing) if the key is not pooled.
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|e| e.key == key) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            self.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// The pooled entry for `key`, without touching LRU order or counters.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut WarmContext> {
        self.entries.iter_mut().find(|e| e.key == key)
    }

    /// Inserts `entry` as most-recently-used, evicting (and returning) the
    /// least-recently-used entry if the pool is full. The caller decides
    /// what happens to the evictee — the scheduler spills it to the
    /// snapshot directory instead of dropping its warm results.
    pub fn insert(&mut self, entry: WarmContext) -> Option<WarmContext> {
        let evicted = if self.entries.len() >= self.capacity {
            self.stats.evictions += 1;
            Some(self.entries.remove(0))
        } else {
            None
        };
        self.entries.push(entry);
        evicted
    }

    /// Counts a cold build (context constructed from scratch).
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Counts a successful rehydration from an on-disk snapshot.
    pub fn note_restore(&mut self) {
        self.stats.restores += 1;
    }

    /// Counts a warm entry written to the snapshot directory.
    pub fn note_spill(&mut self) {
        self.stats.spills += 1;
    }

    /// Fetches the warm entry for `key`, building one with `build` on a
    /// miss (evicting the least-recently-used entry if the pool is full).
    /// The returned entry is marked most-recently-used either way.
    pub fn acquire(
        &mut self,
        key: u64,
        build: impl FnOnce() -> SymbolicContext,
    ) -> (&mut WarmContext, PoolOutcome) {
        let outcome = if self.touch(key) {
            PoolOutcome::Hit
        } else {
            self.insert(WarmContext::new(key, "", build()));
            self.stats.misses += 1;
            PoolOutcome::Miss
        };
        (
            self.entries.last_mut().expect("just pushed or touched"),
            outcome,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Encoding;
    use pnsym_net::nets;

    fn sparse_ctx(net: &PetriNet) -> SymbolicContext {
        SymbolicContext::new(net, Encoding::sparse(net))
    }

    #[test]
    fn canonical_hash_distinguishes_structure_not_spelling() {
        let a = nets::philosophers(2);
        let b = nets::philosophers(2);
        let c = nets::philosophers(3);
        assert_eq!(canonical_net_hash(&a), canonical_net_hash(&b));
        assert_ne!(canonical_net_hash(&a), canonical_net_hash(&c));
        assert_ne!(canonical_net_hash(&nets::figure1()), canonical_net_hash(&a));
    }

    #[test]
    fn pool_reuses_warm_entries_and_evicts_lru() {
        let phil = nets::philosophers(2);
        let fig = nets::figure1();
        let muller = nets::muller(2);
        let (kp, kf, km) = (
            canonical_net_hash(&phil),
            canonical_net_hash(&fig),
            canonical_net_hash(&muller),
        );
        let mut pool = ContextPool::new(2);
        let (_, o1) = pool.acquire(kp, || sparse_ctx(&phil));
        let (_, o2) = pool.acquire(kp, || sparse_ctx(&phil));
        assert_eq!(o1, PoolOutcome::Miss);
        assert_eq!(o2, PoolOutcome::Hit);
        let (_, o3) = pool.acquire(kf, || sparse_ctx(&fig));
        assert_eq!(o3, PoolOutcome::Miss);
        // phil is now LRU; adding a third net evicts it.
        let (_, o4) = pool.acquire(km, || sparse_ctx(&muller));
        assert_eq!(o4, PoolOutcome::Miss);
        let (_, o5) = pool.acquire(kp, || sparse_ctx(&phil));
        assert_eq!(o5, PoolOutcome::Miss, "evicted entry rebuilds cold");
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 1,
                misses: 4,
                evictions: 2,
                spills: 0,
                restores: 0,
            }
        );
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn warm_entry_caches_complete_reached_sets_only() {
        let net = nets::philosophers(2);
        let key = canonical_net_hash(&net);
        let mut pool = ContextPool::new(1);
        let strategy = FixpointStrategy::default();
        let (entry, _) = pool.acquire(key, || sparse_ctx(&net));
        assert!(entry.reached_for(strategy).is_none());
        let run = entry.context_mut().reachable_markings();
        entry.store_reached(strategy, run);
        let warm = entry.reached_for(strategy).expect("complete run cached");
        assert_eq!(warm.num_markings, run.num_markings);

        // A truncated run must not overwrite the good one.
        let mut bad = run;
        bad.truncated = Some(pnsym_bdd::TruncationReason::Deadline);
        bad.num_markings = 1.0;
        entry.store_reached(strategy, bad);
        let still = entry.reached_for(strategy).expect("cache intact");
        assert_eq!(still.num_markings, run.num_markings);
    }
}
