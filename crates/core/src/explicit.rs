//! An explicit-state CTL checker over the enumerated reachability graph —
//! the oracle the symbolic engine is validated against.
//!
//! The checker labels every reachable marking with the subformulas it
//! satisfies, using the textbook fixpoint characterisations on the explicit
//! successor lists. It implements exactly the path semantics of
//! [`crate::mc`] (infinite-path `EG`, vacuous universal quantifiers at
//! deadlocks), so on any net small enough to enumerate,
//! [`ExplicitChecker::sat`] and
//! [`SymbolicContext::sat_set`](crate::SymbolicContext::sat_set) over the
//! reached set must agree state for state — the property suites pin this on
//! random nets across every encoding × strategy combination.

use crate::property::Property;
use pnsym_net::{PetriNet, ReachabilityGraph};

/// An explicit-state CTL checker for one net and its enumerated
/// reachability graph.
///
/// # Examples
///
/// ```
/// use pnsym_core::{ExplicitChecker, Property};
/// use pnsym_net::nets::philosophers;
///
/// let net = philosophers(2);
/// let rg = net.explore().unwrap();
/// let checker = ExplicitChecker::new(&net, &rg);
/// // The classic deadlock is reachable…
/// let deadlock = Property::parse("EF !EX true", &net).unwrap();
/// assert!(checker.holds(&deadlock));
/// // …so eating is not inevitable.
/// let fated = Property::parse("AF eating.0", &net).unwrap();
/// assert!(!checker.holds(&fated));
/// ```
pub struct ExplicitChecker<'a> {
    net: &'a PetriNet,
    rg: &'a ReachabilityGraph,
    /// Successor state indices, per state.
    successors: Vec<Vec<usize>>,
    /// Index of the initial marking in the graph.
    initial: usize,
}

impl<'a> ExplicitChecker<'a> {
    /// Builds the checker, indexing the graph's edges into per-state
    /// successor lists.
    ///
    /// # Panics
    ///
    /// Panics if `rg` was not produced by exploring `net` (its initial
    /// marking is absent from the graph).
    pub fn new(net: &'a PetriNet, rg: &'a ReachabilityGraph) -> Self {
        let mut successors = vec![Vec::new(); rg.num_markings()];
        for &(from, _, to) in rg.edges() {
            successors[from].push(to);
        }
        let initial = rg
            .index_of(net.initial_marking())
            .expect("the graph contains the initial marking");
        ExplicitChecker {
            net,
            rg,
            successors,
            initial,
        }
    }

    /// The satisfaction vector of `property`: one boolean per marking of
    /// the graph, indexed like [`ReachabilityGraph::markings`].
    pub fn sat(&self, property: &Property) -> Vec<bool> {
        let n = self.rg.num_markings();
        match property {
            Property::True => vec![true; n],
            Property::False => vec![false; n],
            Property::Place(p) => self.rg.markings().iter().map(|m| m.is_marked(*p)).collect(),
            Property::Not(a) => self.sat(a).into_iter().map(|b| !b).collect(),
            Property::And(a, b) => {
                let fa = self.sat(a);
                let fb = self.sat(b);
                fa.into_iter().zip(fb).map(|(x, y)| x && y).collect()
            }
            Property::Or(a, b) => {
                let fa = self.sat(a);
                let fb = self.sat(b);
                fa.into_iter().zip(fb).map(|(x, y)| x || y).collect()
            }
            Property::Ex(a) => {
                let fa = self.sat(a);
                self.ex(&fa)
            }
            Property::Ax(a) => {
                let fa = self.sat(a);
                self.ax(&fa)
            }
            Property::Ef(a) => {
                let fa = self.sat(a);
                self.eu(&vec![true; n], &fa)
            }
            Property::Af(a) => {
                let fa = self.sat(a);
                self.au(&vec![true; n], &fa)
            }
            Property::Eg(a) => {
                let fa = self.sat(a);
                self.eg(&fa)
            }
            Property::Ag(a) => {
                // AG a = ¬EF ¬a.
                let not_a: Vec<bool> = self.sat(a).into_iter().map(|b| !b).collect();
                let ef = self.eu(&vec![true; n], &not_a);
                ef.into_iter().map(|b| !b).collect()
            }
            Property::Eu(a, b) => {
                let fa = self.sat(a);
                let fb = self.sat(b);
                self.eu(&fa, &fb)
            }
            Property::Au(a, b) => {
                let fa = self.sat(a);
                let fb = self.sat(b);
                self.au(&fa, &fb)
            }
        }
    }

    /// Whether the initial marking satisfies `property`.
    pub fn holds(&self, property: &Property) -> bool {
        self.sat(property)[self.initial]
    }

    /// The index of the initial marking in the graph.
    pub fn initial_index(&self) -> usize {
        self.initial
    }

    /// The analysed net.
    pub fn net(&self) -> &PetriNet {
        self.net
    }

    /// `EX`: some successor satisfies.
    fn ex(&self, target: &[bool]) -> Vec<bool> {
        self.successors
            .iter()
            .map(|succ| succ.iter().any(|&s| target[s]))
            .collect()
    }

    /// `AX`: every successor satisfies (vacuously true at deadlocks).
    fn ax(&self, target: &[bool]) -> Vec<bool> {
        self.successors
            .iter()
            .map(|succ| succ.iter().all(|&s| target[s]))
            .collect()
    }

    /// `E[hold U until]`: least fixpoint of `until ∨ (hold ∧ EX Z)`.
    fn eu(&self, hold: &[bool], until: &[bool]) -> Vec<bool> {
        let mut z = until.to_vec();
        loop {
            let mut changed = false;
            for s in 0..z.len() {
                if !z[s] && hold[s] && self.successors[s].iter().any(|&t| z[t]) {
                    z[s] = true;
                    changed = true;
                }
            }
            if !changed {
                return z;
            }
        }
    }

    /// `A[hold U until]`: least fixpoint of `until ∨ (hold ∧ AX Z)` — a
    /// deadlocked `hold`-state satisfies it vacuously.
    fn au(&self, hold: &[bool], until: &[bool]) -> Vec<bool> {
        let mut z = until.to_vec();
        loop {
            let mut changed = false;
            for s in 0..z.len() {
                if !z[s] && hold[s] && self.successors[s].iter().all(|&t| z[t]) {
                    z[s] = true;
                    changed = true;
                }
            }
            if !changed {
                return z;
            }
        }
    }

    /// `EG`: greatest fixpoint of `target ∧ EX Z` — deadlocked states drop
    /// out (infinite-path semantics).
    fn eg(&self, target: &[bool]) -> Vec<bool> {
        let mut z = target.to_vec();
        loop {
            let mut changed = false;
            for s in 0..z.len() {
                if z[s] && !self.successors[s].iter().any(|&t| z[t]) {
                    z[s] = false;
                    changed = true;
                }
            }
            if !changed {
                return z;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets::{figure1, philosophers};

    #[test]
    fn boolean_and_temporal_basics_on_figure1() {
        let net = figure1();
        let rg = net.explore().unwrap();
        let checker = ExplicitChecker::new(&net, &rg);
        let p = |text: &str| Property::parse(text, &net).unwrap();
        assert!(checker.holds(&p("p1")));
        assert!(checker.holds(&p("EF (p6 & p7)")));
        assert!(checker.holds(&p("AG !(p2 & p4)")));
        assert!(checker.holds(&p("AG EX true")), "figure1 is deadlock-free");
        assert!(!checker.holds(&p("EF (p2 & p4)")));
        // Every state satisfies EF p1 (the net's behaviour is reversible).
        assert!(checker.sat(&p("EF p1")).iter().all(|&b| b));
    }

    #[test]
    fn deadlock_semantics_on_philosophers() {
        let net = philosophers(2);
        let rg = net.explore().unwrap();
        let checker = ExplicitChecker::new(&net, &rg);
        let p = |text: &str| Property::parse(text, &net).unwrap();
        // The deadlock is reachable and expressible as !EX true.
        assert!(checker.holds(&p("EF !EX true")));
        // Vacuous universal quantification at deadlocks: AX false and
        // AF false hold exactly at the deadlocked states.
        let ax_false = checker.sat(&p("AX false"));
        let af_false = checker.sat(&p("AF false"));
        assert_eq!(ax_false, af_false);
        let num_dead = ax_false.iter().filter(|&&b| b).count();
        assert_eq!(num_dead, rg.deadlocks(&net).len());
        // EG true excludes exactly the deadlocks.
        let eg_true = checker.sat(&p("EG true"));
        assert!(eg_true.iter().zip(&ax_false).all(|(&eg, &dead)| eg != dead));
    }

    #[test]
    fn until_operators_match_their_unrollings() {
        let net = philosophers(2);
        let rg = net.explore().unwrap();
        let checker = ExplicitChecker::new(&net, &rg);
        let p = |text: &str| Property::parse(text, &net).unwrap();
        assert_eq!(
            checker.sat(&p("E[true U eating.0]")),
            checker.sat(&p("EF eating.0"))
        );
        assert_eq!(
            checker.sat(&p("A[true U eating.0]")),
            checker.sat(&p("AF eating.0"))
        );
        // The AU duality under the vacuous-deadlock convention.
        let au = checker.sat(&p("A[idle.0 U eating.1]"));
        let dual = checker.sat(&p("!(E[!eating.1 U !idle.0 & !eating.1] | EG !eating.1)"));
        assert_eq!(au, dual);
    }
}
