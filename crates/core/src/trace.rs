//! Witness-trace extraction: a concrete firing sequence from the initial
//! marking to a marking satisfying a target predicate.
//!
//! During the forward traversal the frontier "onion rings" are recorded;
//! a witness is then rebuilt backwards, ring by ring, by asking which
//! transition can step from the previous ring into the current prefix of
//! the trace (a [`SymbolicContext::pre_image`] query through the
//! precomputed pre-image plan). The result is a list of
//! `(transition, marking)` pairs that the token game of `pnsym-net`
//! re-validates.
//!
//! Three extraction modes serve the CTL checker
//! ([`SymbolicContext::check_property`](crate::SymbolicContext::check_property)):
//!
//! * [`SymbolicContext::witness_trace`] — a shortest path into a target
//!   set (`EF` witnesses, `AG` counterexamples);
//! * [`SymbolicContext::witness_trace_in`] — the same, with every state
//!   before the target confined to a constraint set (`EU` witnesses, the
//!   finite branch of `AU` counterexamples);
//! * [`SymbolicContext::lasso_from_initial`] — a path that closes a cycle
//!   inside an `EG` core, demonstrating an infinite run (`EG` witnesses,
//!   `AF`/`AU` counterexamples).

use crate::context::SymbolicContext;
use pnsym_bdd::Ref;
use pnsym_net::{Marking, PlaceId, TransitionId};
use std::collections::HashMap;

/// A firing sequence witnessing the reachability of some target marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessTrace {
    /// The markings along the trace, starting with the initial marking.
    pub markings: Vec<Marking>,
    /// The transitions fired between consecutive markings
    /// (`transitions.len() == markings.len() - 1`).
    pub transitions: Vec<TransitionId>,
}

impl WitnessTrace {
    /// Number of firings in the trace.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the trace is empty (the initial marking already satisfies the
    /// target).
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The final marking of the trace (the witness itself).
    ///
    /// # Panics
    ///
    /// Never panics: a trace always contains at least the initial marking.
    pub fn witness(&self) -> &Marking {
        self.markings
            .last()
            .expect("trace contains the initial marking")
    }

    /// If the trace closes a cycle — its final marking reappearing earlier
    /// in the trace — returns the index of the first occurrence (the start
    /// of the loop). Lasso-shaped traces demonstrate an *infinite* run:
    /// `EG` witnesses and `AF` counterexamples have this shape.
    pub fn is_lasso(&self) -> Option<usize> {
        let last = self.markings.last()?;
        if self.markings.len() < 2 {
            return None;
        }
        self.markings[..self.markings.len() - 1]
            .iter()
            .position(|m| m == last)
    }

    /// Validates the trace against the net's token game.
    pub fn validate(&self, net: &pnsym_net::PetriNet) -> bool {
        if self.markings.len() != self.transitions.len() + 1 {
            return false;
        }
        for (i, &t) in self.transitions.iter().enumerate() {
            match net.fire(&self.markings[i], t) {
                Ok(next) if next == self.markings[i + 1] => {}
                _ => return false,
            }
        }
        true
    }
}

impl SymbolicContext {
    /// Finds a shortest (in breadth-first steps) firing sequence from the
    /// initial marking to a marking in `target`, or `None` if `target` is
    /// unreachable.
    ///
    /// `target` is a set of encoded markings over the current variables,
    /// typically obtained from [`SymbolicContext::property_set`] or by
    /// combining [`SymbolicContext::place_fn`]s.
    pub fn witness_trace(&mut self, target: Ref) -> Option<WitnessTrace> {
        let everything = self.manager().one();
        self.witness_trace_in(target, everything)
    }

    /// Finds a shortest firing sequence from the initial marking to a
    /// marking in `target` whose every marking *before* the target lies in
    /// `within`, or `None` if no such sequence exists.
    ///
    /// This is the witness shape of `E[hold U until]`: pass the `hold` set
    /// as `within` and the `until` set as `target`. The final marking does
    /// not need to satisfy `within`; an initial marking already in `target`
    /// yields the empty trace.
    pub fn witness_trace_in(&mut self, target: Ref, within: Ref) -> Option<WitnessTrace> {
        let zero = self.manager().zero();
        let init = self.initial_set();
        if self.manager_mut().and(init, target) != zero {
            // The initial marking already satisfies the target.
            return Some(WitnessTrace {
                markings: vec![self.net().initial_marking().clone()],
                transitions: Vec::new(),
            });
        }
        if self.manager_mut().and(init, within) == zero {
            return None;
        }

        // Forward pass: rings of newly discovered `within`-states, until
        // the image of a ring hits the target.
        let mut rings: Vec<Ref> = vec![init];
        let mut reached = init;
        self.manager_mut().protect(reached);
        let hit;
        loop {
            let frontier = *rings.last().expect("at least the initial ring");
            let image = self.image_all(frontier);
            let in_target = self.manager_mut().and(image, target);
            if in_target != zero {
                hit = in_target;
                break;
            }
            let constrained = self.manager_mut().and(image, within);
            let new = self.manager_mut().diff(constrained, reached);
            if new == zero {
                // Release everything the forward pass protected — the ring
                // protections too, or each unreachable query would pin its
                // whole fixpoint in the manager for the context's lifetime.
                self.manager_mut().unprotect(reached);
                for &ring in rings.iter().skip(1) {
                    self.manager_mut().unprotect(ring);
                }
                return None;
            }
            let next_reached = self.manager_mut().or(reached, new);
            self.manager_mut().protect(next_reached);
            self.manager_mut().protect(new);
            self.manager_mut().unprotect(reached);
            reached = next_reached;
            rings.push(new);
        }

        // Pick one concrete target marking hit from the last ring.
        let mut current = self
            .pick_marking(hit)
            .expect("hit is non-empty, so a marking exists");
        let mut markings = vec![current.clone()];
        let mut transitions = Vec::new();

        // Backward pass: for each ring find a predecessor marking and the
        // transition that was fired; `current` starts one step beyond the
        // last ring.
        for ring_index in (0..rings.len()).rev() {
            let prev_ring = rings[ring_index];
            let current_cube = self.marking_to_bdd(&current);
            let mut found = None;
            for ti in 0..self.net().num_transitions() {
                let t = TransitionId(ti as u32);
                let pre = self.pre_image(current_cube, t);
                let candidates = self.manager_mut().and(pre, prev_ring);
                if candidates != zero {
                    let m = self.pick_marking(candidates).expect("non-empty");
                    found = Some((m, t));
                    break;
                }
            }
            let (m, t) = found.expect("every ring element has a predecessor in the previous ring");
            transitions.push(t);
            markings.push(m.clone());
            current = m;
        }

        // Clean up protections added during the forward pass.
        self.manager_mut().unprotect(reached);
        for &ring in rings.iter().skip(1) {
            self.manager_mut().unprotect(ring);
        }

        markings.reverse();
        transitions.reverse();
        Some(WitnessTrace {
            markings,
            transitions,
        })
    }

    /// A single-firing trace from the initial marking to a successor in
    /// `target`, or `None` if no enabled transition reaches one.
    ///
    /// This is the evidence shape of `EX` witnesses and `AX`
    /// counterexamples: always exactly one firing, even when the initial
    /// marking itself belongs to `target` (e.g. through a self-loop
    /// transition), where the general ring search would return an empty
    /// trace.
    pub fn one_step_trace(&mut self, target: Ref) -> Option<WitnessTrace> {
        let zero = self.manager().zero();
        let init = self.initial_set();
        for ti in 0..self.net().num_transitions() {
            let t = TransitionId(ti as u32);
            let img = self.image(init, t);
            let hit = self.manager_mut().and(img, target);
            if hit != zero {
                let m = self.pick_marking(hit).expect("non-empty");
                return Some(WitnessTrace {
                    markings: vec![self.net().initial_marking().clone(), m],
                    transitions: vec![t],
                });
            }
        }
        None
    }

    /// Extracts a lasso-shaped run from the initial marking through `set`:
    /// a concrete firing sequence staying in `set` whose final marking
    /// repeats an earlier one, demonstrating an infinite run.
    ///
    /// `set` is expected to be an `EG` core (a greatest fixpoint of
    /// [`SymbolicContext::eg`] containing the initial marking), where every
    /// state has a successor inside the set — the walk then always closes a
    /// cycle. Returns `None` if the initial marking is not in `set` or the
    /// walk falls out of it (a non-core input).
    pub fn lasso_from_initial(&mut self, set: Ref) -> Option<WitnessTrace> {
        let zero = self.manager().zero();
        let init = self.initial_set();
        if self.manager_mut().and(init, set) == zero {
            return None;
        }
        let mut current = self.net().initial_marking().clone();
        let mut markings = vec![current.clone()];
        let mut transitions = Vec::new();
        let mut seen: HashMap<Marking, usize> = HashMap::new();
        seen.insert(current.clone(), 0);
        // A cycle must close within |set| steps; the cap only guards
        // against astronomically large cores.
        const MAX_STEPS: usize = 100_000;
        for _ in 0..MAX_STEPS {
            let cube = self.marking_to_bdd(&current);
            let mut found = None;
            for ti in 0..self.net().num_transitions() {
                let t = TransitionId(ti as u32);
                let img = self.image(cube, t);
                let staying = self.manager_mut().and(img, set);
                if staying != zero {
                    let m = self.pick_marking(staying).expect("non-empty");
                    found = Some((t, m));
                    break;
                }
            }
            let (t, next) = found?;
            transitions.push(t);
            markings.push(next.clone());
            if seen.contains_key(&next) {
                return Some(WitnessTrace {
                    markings,
                    transitions,
                });
            }
            seen.insert(next.clone(), markings.len() - 1);
            current = next;
        }
        None
    }

    /// Extracts one concrete marking from a non-empty set of encoded
    /// markings, or `None` if the set is empty.
    pub fn pick_marking(&mut self, set: Ref) -> Option<Marking> {
        if set == self.manager().zero() {
            return None;
        }
        // Pick a satisfying assignment and complete the unconstrained
        // variables with the recursive place evaluation of the encoding.
        let partial = self.manager().pick_one(set)?;
        let current = self.current_vars().to_vec();
        let mut bits = vec![false; current.len()];
        for (var, value) in partial {
            if let Some(i) = current.iter().position(|&v| v == var) {
                bits[i] = value;
            }
        }
        // A partial assignment may leave some variables free; the chosen
        // completion (false) is only valid if it decodes to a marking whose
        // re-encoding is in the set — fall back to enumerating assignments.
        let decode = |ctx: &SymbolicContext, bits: &[bool]| -> Option<Marking> {
            let places = ctx.encoding().decode_assignment(bits)?;
            let mut m = Marking::empty(ctx.net().num_places());
            for p in places {
                m.set(p, true);
            }
            Some(m)
        };
        if let Some(m) = decode(self, &bits) {
            if self.set_contains(set, &m) {
                return Some(m);
            }
        }
        let assignments: Vec<Vec<bool>> = self
            .manager()
            .sat_assignments(set, &current)
            .take(64)
            .collect();
        for bits in assignments {
            if let Some(m) = decode(self, &bits) {
                if self.set_contains(set, &m) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Convenience: the marked places of one marking in `set`, or `None` if
    /// the set is empty (useful for reporting counterexamples).
    pub fn pick_marked_places(&mut self, set: Ref) -> Option<Vec<PlaceId>> {
        self.pick_marking(set).map(|m| m.marked_places())
    }
}

/// Runs `operation` and asserts it leaves the manager's protected-root
/// count exactly where it found it — the invariant every trace-extraction
/// path must uphold. A leak would pin dead fixpoint rings in the manager
/// for the context's lifetime; an over-release would expose live plan
/// artefacts to garbage collection. Shared by the trace tests here and the
/// model-checker trace tests in `mc.rs`.
#[cfg(test)]
pub(crate) fn assert_protections_balanced<T>(
    ctx: &mut SymbolicContext,
    operation: impl FnOnce(&mut SymbolicContext) -> T,
) -> T {
    // Warm both lazy plans first: their one-time artefact protections are
    // permanent by design and must not be charged to `operation`.
    let _ = ctx.image_plan();
    let _ = ctx.pre_image_plan();
    let before = ctx.manager().protected_root_count();
    let out = operation(ctx);
    assert_eq!(
        ctx.manager().protected_root_count(),
        before,
        "trace extraction must release every protection it takes"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use crate::property::Property;
    use pnsym_net::nets::{dme, figure1, philosophers, DmeStyle};
    use pnsym_net::PetriNet;
    use pnsym_structural::find_smcs;

    fn contexts(net: &PetriNet) -> Vec<SymbolicContext> {
        let smcs = find_smcs(net).unwrap();
        vec![
            SymbolicContext::new(net, Encoding::sparse(net)),
            SymbolicContext::new(
                net,
                Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
            ),
        ]
    }

    #[test]
    fn witness_to_a_reachable_marking_is_valid() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            let p6 = net.place_by_name("p6").unwrap();
            let p7 = net.place_by_name("p7").unwrap();
            let target_prop = Property::all_marked(&[p6, p7]);
            let target = ctx.property_set(&target_prop);
            let trace = assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(target))
                .expect("M7 is reachable");
            assert!(trace.validate(&net), "trace must replay on the token game");
            assert!(trace.witness().is_marked(p6));
            assert!(trace.witness().is_marked(p7));
            // M7 = {p6, p7} is reached after 3 firings in Figure 1.b.
            assert_eq!(trace.len(), 3);
        }
    }

    #[test]
    fn empty_trace_when_initial_marking_satisfies_target() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            let p1 = net.place_by_name("p1").unwrap();
            let target = ctx.place_fn(p1);
            let trace = assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(target))
                .expect("initially satisfied");
            assert!(trace.is_empty());
            assert_eq!(trace.witness(), net.initial_marking());
        }
    }

    #[test]
    fn unreachable_target_has_no_witness() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            // p2 and p4 belong to the same SMC; both marked is unreachable.
            let p2 = net.place_by_name("p2").unwrap();
            let p4 = net.place_by_name("p4").unwrap();
            let prop = Property::all_marked(&[p2, p4]);
            let target = ctx.property_set(&prop);
            assert!(
                assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(target)).is_none()
            );
        }
    }

    #[test]
    fn deadlock_witness_for_the_philosophers() {
        let net = philosophers(2);
        for mut ctx in contexts(&net) {
            let reached = ctx.reachable_markings().reached;
            let dead = ctx.deadlocks_in(reached);
            let trace = assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(dead))
                .expect("the deadlock is reachable");
            assert!(trace.validate(&net));
            let witness = trace.witness().clone();
            assert!(net.enabled_transitions(&witness).is_empty());
            // The classic deadlocks: both philosophers hold their left fork,
            // or symmetrically both hold their right fork.
            let both_left = witness.is_marked(net.place_by_name("hasl.0").unwrap())
                && witness.is_marked(net.place_by_name("hasl.1").unwrap());
            let both_right = witness.is_marked(net.place_by_name("hasr.0").unwrap())
                && witness.is_marked(net.place_by_name("hasr.1").unwrap());
            assert!(both_left || both_right, "unexpected deadlock {witness}");
        }
    }

    #[test]
    fn witness_is_shortest_in_steps() {
        let net = dme(3, DmeStyle::Spec);
        for mut ctx in contexts(&net) {
            let cs1 = net.place_by_name("critical.1").unwrap();
            let target = ctx.place_fn(cs1);
            let trace = assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(target))
                .expect("reachable");
            assert!(trace.validate(&net));
            // Cell 1 needs: request.1, pass.0 (token from cell 0), enter.1
            // => 3 firings minimum.
            assert_eq!(trace.len(), 3);
        }
    }

    #[test]
    fn unreachable_witness_releases_all_protections() {
        // The forward pass protects one ring per BFS level; the
        // unreachable-target early return must release them all, or every
        // failed query would pin its whole fixpoint in the manager.
        let net = figure1();
        let mut ctx = SymbolicContext::new(&net, crate::encoding::Encoding::sparse(&net));
        let p2 = net.place_by_name("p2").unwrap();
        let p4 = net.place_by_name("p4").unwrap();
        let prop = Property::all_marked(&[p2, p4]);
        let target = ctx.property_set(&prop);
        ctx.manager_mut().protect(target);
        assert!(assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(target)).is_none());
        ctx.manager_mut().collect_garbage();
        let live = ctx.manager().live_node_count();
        assert!(assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(target)).is_none());
        ctx.manager_mut().collect_garbage();
        assert_eq!(
            ctx.manager().live_node_count(),
            live,
            "a failed witness query must not leave protections behind"
        );
    }

    #[test]
    fn one_step_trace_fires_even_on_self_loops() {
        // A transition mapping the initial marking to itself: EX evidence
        // must still be one firing, where the ring search (whose shortest
        // path is zero steps) would return the empty trace.
        let mut b = pnsym_net::NetBuilder::new("selfloop");
        let a = b.place_marked("a");
        let c = b.place_marked("c");
        let d = b.place("d");
        b.transition("spin", &[a], &[a]);
        b.transition("go", &[c], &[d]);
        let net = b.build().unwrap();
        let mut ctx = SymbolicContext::new(&net, crate::encoding::Encoding::sparse(&net));
        let target = ctx.place_fn(a);
        let trace = assert_protections_balanced(&mut ctx, |ctx| ctx.one_step_trace(target))
            .expect("spin keeps `a` marked");
        assert_eq!(trace.len(), 1);
        assert!(trace.validate(&net));
        assert_eq!(trace.witness(), net.initial_marking());
        assert!(
            assert_protections_balanced(&mut ctx, |ctx| ctx.witness_trace(target))
                .unwrap()
                .is_empty(),
            "the ring search's shortest path is the empty trace here"
        );
        // Unreachable one-step targets yield no trace.
        let never = ctx.place_fn(a);
        let never = ctx.manager_mut().not(never);
        let d_fn = ctx.place_fn(d);
        let bad = ctx.manager_mut().and(never, d_fn);
        assert!(assert_protections_balanced(&mut ctx, |ctx| ctx.one_step_trace(bad)).is_none());
    }

    #[test]
    fn pick_marking_returns_member_of_the_set() {
        let net = philosophers(2);
        for mut ctx in contexts(&net) {
            let reached = ctx.reachable_markings().reached;
            let m = assert_protections_balanced(&mut ctx, |ctx| ctx.pick_marking(reached))
                .expect("non-empty");
            assert!(ctx.set_contains(reached, &m));
            let places = ctx.pick_marked_places(reached).expect("non-empty");
            assert!(!places.is_empty());
        }
    }
}
