//! Witness-trace extraction: a concrete firing sequence from the initial
//! marking to a marking satisfying a target predicate.
//!
//! During the forward traversal the frontier "onion rings" are recorded;
//! a witness is then rebuilt backwards, ring by ring, by asking which
//! transition can step from the previous ring into the current prefix of
//! the trace. The result is a list of `(transition, marking)` pairs that the
//! token game of `pnsym-net` re-validates.

use crate::context::SymbolicContext;
use pnsym_bdd::Ref;
use pnsym_net::{Marking, PlaceId, TransitionId};

/// A firing sequence witnessing the reachability of some target marking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessTrace {
    /// The markings along the trace, starting with the initial marking.
    pub markings: Vec<Marking>,
    /// The transitions fired between consecutive markings
    /// (`transitions.len() == markings.len() - 1`).
    pub transitions: Vec<TransitionId>,
}

impl WitnessTrace {
    /// Number of firings in the trace.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the trace is empty (the initial marking already satisfies the
    /// target).
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The final marking of the trace (the witness itself).
    ///
    /// # Panics
    ///
    /// Never panics: a trace always contains at least the initial marking.
    pub fn witness(&self) -> &Marking {
        self.markings
            .last()
            .expect("trace contains the initial marking")
    }

    /// Validates the trace against the net's token game.
    pub fn validate(&self, net: &pnsym_net::PetriNet) -> bool {
        if self.markings.len() != self.transitions.len() + 1 {
            return false;
        }
        for (i, &t) in self.transitions.iter().enumerate() {
            match net.fire(&self.markings[i], t) {
                Ok(next) if next == self.markings[i + 1] => {}
                _ => return false,
            }
        }
        true
    }
}

impl SymbolicContext {
    /// Finds a shortest (in breadth-first steps) firing sequence from the
    /// initial marking to a marking in `target`, or `None` if `target` is
    /// unreachable.
    ///
    /// `target` is a set of encoded markings over the current variables,
    /// typically obtained from [`SymbolicContext::property_set`] or by
    /// combining [`SymbolicContext::place_fn`]s.
    pub fn witness_trace(&mut self, target: Ref) -> Option<WitnessTrace> {
        // Forward pass: record the frontier rings until the target is hit.
        let zero = self.manager().zero();
        let mut rings: Vec<Ref> = vec![self.initial_set()];
        let mut reached = self.initial_set();
        self.manager_mut().protect(reached);
        let mut hit = self.manager_mut().and(reached, target);

        while hit == zero {
            let frontier = *rings.last().expect("at least the initial ring");
            let image = self.image_all(frontier);
            let new = self.manager_mut().diff(image, reached);
            if new == zero {
                // Release everything the forward pass protected — the ring
                // protections too, or each unreachable query would pin its
                // whole fixpoint in the manager for the context's lifetime.
                self.manager_mut().unprotect(reached);
                for &ring in rings.iter().skip(1) {
                    self.manager_mut().unprotect(ring);
                }
                return None;
            }
            let next_reached = self.manager_mut().or(reached, new);
            self.manager_mut().protect(next_reached);
            self.manager_mut().protect(new);
            self.manager_mut().unprotect(reached);
            reached = next_reached;
            rings.push(new);
            hit = self.manager_mut().and(new, target);
        }

        // Pick one concrete target marking in the last ring.
        let mut current = self
            .pick_marking(hit)
            .expect("hit is non-empty, so a marking exists");
        let mut markings = vec![current.clone()];
        let mut transitions = Vec::new();

        // Backward pass: for each ring boundary find a predecessor marking
        // and the transition that was fired.
        for ring_index in (1..rings.len()).rev() {
            // `current` lives in rings[ring_index]; find (m, t) with
            // m ∈ rings[ring_index - 1] and m [t> current.
            let prev_ring = rings[ring_index - 1];
            let current_cube = self.marking_to_bdd(&current);
            let mut found = None;
            for ti in 0..self.net().num_transitions() {
                let t = TransitionId(ti as u32);
                let pre = self.pre_image(current_cube, t);
                let candidates = self.manager_mut().and(pre, prev_ring);
                if candidates != zero {
                    let m = self.pick_marking(candidates).expect("non-empty");
                    found = Some((m, t));
                    break;
                }
            }
            let (m, t) = found.expect("every ring element has a predecessor in the previous ring");
            transitions.push(t);
            markings.push(m.clone());
            current = m;
        }

        // Clean up protections added during the forward pass.
        self.manager_mut().unprotect(reached);
        for &ring in rings.iter().skip(1) {
            self.manager_mut().unprotect(ring);
        }

        markings.reverse();
        transitions.reverse();
        Some(WitnessTrace {
            markings,
            transitions,
        })
    }

    /// Extracts one concrete marking from a non-empty set of encoded
    /// markings, or `None` if the set is empty.
    pub fn pick_marking(&mut self, set: Ref) -> Option<Marking> {
        if set == self.manager().zero() {
            return None;
        }
        // Pick a satisfying assignment and complete the unconstrained
        // variables with the recursive place evaluation of the encoding.
        let partial = self.manager().pick_one(set)?;
        let current = self.current_vars().to_vec();
        let mut bits = vec![false; current.len()];
        for (var, value) in partial {
            if let Some(i) = current.iter().position(|&v| v == var) {
                bits[i] = value;
            }
        }
        // A partial assignment may leave some variables free; the chosen
        // completion (false) is only valid if it decodes to a marking whose
        // re-encoding is in the set — fall back to enumerating assignments.
        let decode = |ctx: &SymbolicContext, bits: &[bool]| -> Option<Marking> {
            let places = ctx.encoding().decode_assignment(bits)?;
            let mut m = Marking::empty(ctx.net().num_places());
            for p in places {
                m.set(p, true);
            }
            Some(m)
        };
        if let Some(m) = decode(self, &bits) {
            if self.set_contains(set, &m) {
                return Some(m);
            }
        }
        let assignments: Vec<Vec<bool>> = self
            .manager()
            .sat_assignments(set, &current)
            .take(64)
            .collect();
        for bits in assignments {
            if let Some(m) = decode(self, &bits) {
                if self.set_contains(set, &m) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Convenience: the marked places of one marking in `set`, or `None` if
    /// the set is empty (useful for reporting counterexamples).
    pub fn pick_marked_places(&mut self, set: Ref) -> Option<Vec<PlaceId>> {
        self.pick_marking(set).map(|m| m.marked_places())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use crate::mc::Property;
    use pnsym_net::nets::{dme, figure1, philosophers, DmeStyle};
    use pnsym_net::PetriNet;
    use pnsym_structural::find_smcs;

    fn contexts(net: &PetriNet) -> Vec<SymbolicContext> {
        let smcs = find_smcs(net).unwrap();
        vec![
            SymbolicContext::new(net, Encoding::sparse(net)),
            SymbolicContext::new(
                net,
                Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
            ),
        ]
    }

    #[test]
    fn witness_to_a_reachable_marking_is_valid() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            let p6 = net.place_by_name("p6").unwrap();
            let p7 = net.place_by_name("p7").unwrap();
            let target_prop = Property::all_marked(&[p6, p7]);
            let target = ctx.property_set(&target_prop);
            let trace = ctx.witness_trace(target).expect("M7 is reachable");
            assert!(trace.validate(&net), "trace must replay on the token game");
            assert!(trace.witness().is_marked(p6));
            assert!(trace.witness().is_marked(p7));
            // M7 = {p6, p7} is reached after 3 firings in Figure 1.b.
            assert_eq!(trace.len(), 3);
        }
    }

    #[test]
    fn empty_trace_when_initial_marking_satisfies_target() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            let p1 = net.place_by_name("p1").unwrap();
            let target = ctx.place_fn(p1);
            let trace = ctx.witness_trace(target).expect("initially satisfied");
            assert!(trace.is_empty());
            assert_eq!(trace.witness(), net.initial_marking());
        }
    }

    #[test]
    fn unreachable_target_has_no_witness() {
        let net = figure1();
        for mut ctx in contexts(&net) {
            // p2 and p4 belong to the same SMC; both marked is unreachable.
            let p2 = net.place_by_name("p2").unwrap();
            let p4 = net.place_by_name("p4").unwrap();
            let prop = Property::all_marked(&[p2, p4]);
            let target = ctx.property_set(&prop);
            assert!(ctx.witness_trace(target).is_none());
        }
    }

    #[test]
    fn deadlock_witness_for_the_philosophers() {
        let net = philosophers(2);
        for mut ctx in contexts(&net) {
            let reached = ctx.reachable_markings().reached;
            let dead = ctx.deadlocks_in(reached);
            let trace = ctx.witness_trace(dead).expect("the deadlock is reachable");
            assert!(trace.validate(&net));
            let witness = trace.witness().clone();
            assert!(net.enabled_transitions(&witness).is_empty());
            // The classic deadlocks: both philosophers hold their left fork,
            // or symmetrically both hold their right fork.
            let both_left = witness.is_marked(net.place_by_name("hasl.0").unwrap())
                && witness.is_marked(net.place_by_name("hasl.1").unwrap());
            let both_right = witness.is_marked(net.place_by_name("hasr.0").unwrap())
                && witness.is_marked(net.place_by_name("hasr.1").unwrap());
            assert!(both_left || both_right, "unexpected deadlock {witness}");
        }
    }

    #[test]
    fn witness_is_shortest_in_steps() {
        let net = dme(3, DmeStyle::Spec);
        for mut ctx in contexts(&net) {
            let cs1 = net.place_by_name("critical.1").unwrap();
            let target = ctx.place_fn(cs1);
            let trace = ctx.witness_trace(target).expect("reachable");
            assert!(trace.validate(&net));
            // Cell 1 needs: request.1, pass.0 (token from cell 0), enter.1
            // => 3 firings minimum.
            assert_eq!(trace.len(), 3);
        }
    }

    #[test]
    fn unreachable_witness_releases_all_protections() {
        // The forward pass protects one ring per BFS level; the
        // unreachable-target early return must release them all, or every
        // failed query would pin its whole fixpoint in the manager.
        let net = figure1();
        let mut ctx = SymbolicContext::new(&net, crate::encoding::Encoding::sparse(&net));
        let p2 = net.place_by_name("p2").unwrap();
        let p4 = net.place_by_name("p4").unwrap();
        let prop = Property::all_marked(&[p2, p4]);
        let target = ctx.property_set(&prop);
        ctx.manager_mut().protect(target);
        assert!(ctx.witness_trace(target).is_none());
        ctx.manager_mut().collect_garbage();
        let live = ctx.manager().live_node_count();
        assert!(ctx.witness_trace(target).is_none());
        ctx.manager_mut().collect_garbage();
        assert_eq!(
            ctx.manager().live_node_count(),
            live,
            "a failed witness query must not leave protections behind"
        );
    }

    #[test]
    fn pick_marking_returns_member_of_the_set() {
        let net = philosophers(2);
        for mut ctx in contexts(&net) {
            let reached = ctx.reachable_markings().reached;
            let m = ctx.pick_marking(reached).expect("non-empty");
            assert!(ctx.set_contains(reached, &m));
            let places = ctx.pick_marked_places(reached).expect("non-empty");
            assert!(!places.is_empty());
        }
    }
}
