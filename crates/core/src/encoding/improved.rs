//! The improved, overlap-aware SMC encoding (Section 4.4 of the paper).
//!
//! SMCs are added one at a time. A new component `S_i` whose places split
//! into `P_cov` (already covered) and `P_new` only needs
//! `⌈log2 |P_new|⌉` fresh variables: the new places receive distinct codes,
//! while the already-covered places are assigned (possibly shared) codes
//! whose ambiguity is resolved by the components that own them
//! (characteristic functions of Section 5.1).

use super::assign::{assign_codes, AssignmentStrategy};
use super::{Block, Encoding, SchemeKind};
use pnsym_net::{PetriNet, PlaceId};
use pnsym_structural::Smc;
use std::collections::BTreeSet;

pub(super) fn build(net: &PetriNet, smcs: &[Smc], assignment: AssignmentStrategy) -> Encoding {
    build_with(net, smcs, assignment, false)
}

pub(super) fn build_with(
    net: &PetriNet,
    smcs: &[Smc],
    assignment: AssignmentStrategy,
    allow_zero_width: bool,
) -> Encoding {
    // Usable components hold exactly one token.
    let usable: Vec<&Smc> = smcs.iter().filter(|s| s.initial_tokens() == 1).collect();
    let mut covered: BTreeSet<PlaceId> = BTreeSet::new();
    let mut chosen: Vec<(&Smc, Vec<bool>, u32)> = Vec::new(); // (smc, owns, width)
    let mut used: Vec<bool> = vec![false; usable.len()];

    // Greedy selection: repeatedly add the component with the lowest cost
    // per newly covered place, as long as it beats encoding the new places
    // one variable each. Following the paper, a component adding fewer than
    // two new places is never selected (its places are left to singleton
    // variables), which reproduces the 8-variable encoding of Table 1.
    // With `allow_zero_width` (an extension beyond the paper) a component
    // whose single new place is otherwise fully covered costs zero fresh
    // variables: the place's marking is implied by the rest of its SMC.
    let min_new = if allow_zero_width { 1 } else { 2 };
    loop {
        let mut best: Option<(usize, usize, u32)> = None; // (candidate, new, width)
        for (i, smc) in usable.iter().enumerate() {
            if used[i] {
                continue;
            }
            let new: Vec<PlaceId> = smc
                .places()
                .iter()
                .copied()
                .filter(|p| !covered.contains(p))
                .collect();
            if new.len() < min_new {
                continue;
            }
            let width = (new.len() as u32).next_power_of_two().trailing_zeros();
            // Only worthwhile if it uses fewer variables than singletons.
            if width as usize >= new.len() {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bnew, bwidth)) => {
                    (width as u64) * (bnew as u64) < (bwidth as u64) * (new.len() as u64)
                        || ((width as u64) * (bnew as u64) == (bwidth as u64) * (new.len() as u64)
                            && new.len() > bnew)
                }
            };
            if better {
                best = Some((i, new.len(), width));
            }
        }
        let Some((i, _, width)) = best else { break };
        used[i] = true;
        let smc = usable[i];
        let owns: Vec<bool> = smc.places().iter().map(|p| !covered.contains(p)).collect();
        covered.extend(smc.places().iter().copied());
        chosen.push((smc, owns, width));
    }

    // Materialise the blocks. Blocks (components and left-over singleton
    // places alike) are laid out in the order of their lowest owned place
    // index: the generators declare places unit by unit (stage, philosopher,
    // ring node, …), so this keeps the variables of strongly interacting
    // components adjacent in the BDD order.
    enum Pending<'a> {
        Smc(&'a Smc, Vec<bool>, u32),
        Single(PlaceId),
    }
    let mut pending: Vec<(PlaceId, Pending<'_>)> = Vec::new();
    for (smc, owns, width) in chosen {
        let anchor = smc
            .places()
            .iter()
            .zip(&owns)
            .filter(|&(_, &o)| o)
            .map(|(&p, _)| p)
            .min()
            .expect("a block owns at least one place");
        pending.push((anchor, Pending::Smc(smc, owns, width)));
    }
    for p in net.places() {
        if !covered.contains(&p) {
            pending.push((p, Pending::Single(p)));
        }
    }
    pending.sort_by_key(|&(anchor, _)| anchor);

    let mut blocks = Vec::new();
    let mut next_var = 0usize;
    for (_, item) in pending {
        match item {
            Pending::Smc(smc, owns, width) => {
                let codes = assign_codes(net, smc, &owns, width, assignment);
                let vars: Vec<usize> = (0..width as usize).map(|b| next_var + b).collect();
                next_var += width as usize;
                blocks.push(Block::Smc {
                    places: smc.places().to_vec(),
                    codes,
                    owns,
                    vars,
                    transitions: smc.transitions().to_vec(),
                });
            }
            Pending::Single(p) => {
                blocks.push(Block::Place {
                    place: p,
                    var: next_var,
                });
                next_var += 1;
            }
        }
    }
    Encoding::from_blocks(net, SchemeKind::ImprovedDense, blocks, next_var)
}

#[cfg(test)]
mod tests {
    use super::super::{AssignmentStrategy, Block, Encoding};
    use pnsym_net::nets::{dme, figure1, muller, philosophers, slotted_ring, DmeStyle};
    use pnsym_structural::{find_smcs, CoverStrategy};

    #[test]
    fn never_uses_more_variables_than_the_basic_scheme() {
        for net in [
            figure1(),
            philosophers(3),
            muller(4),
            slotted_ring(3),
            dme(3, DmeStyle::Spec),
        ] {
            let smcs = find_smcs(&net).unwrap();
            let dense =
                Encoding::dense(&net, &smcs, CoverStrategy::Greedy, AssignmentStrategy::Gray);
            let improved = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
            assert!(
                improved.num_vars() <= dense.num_vars(),
                "{}: improved {} > dense {}",
                net.name(),
                improved.num_vars(),
                dense.num_vars()
            );
            assert!(improved.num_vars() <= net.num_places());
        }
    }

    #[test]
    fn zero_width_extension_shaves_more_variables() {
        // Beyond the paper: allowing parameter-free places lets the fork
        // places of the 2-philosopher net be implied by their SMCs, giving a
        // 6-variable encoding instead of Table 1's 8.
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        let paper = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let extended = Encoding::improved_with_zero_width(&net, &smcs, AssignmentStrategy::Gray);
        assert_eq!(paper.num_vars(), 8);
        assert!(extended.num_vars() <= 6, "got {}", extended.num_vars());
        // The extended encoding still round-trips every reachable marking.
        let rg = net.explore().unwrap();
        for m in rg.markings() {
            let bits = extended.encode_marking(m);
            for p in net.places() {
                assert_eq!(extended.place_is_marked_in(&bits, p), m.is_marked(p));
            }
        }
        // And it is still injective.
        let mut seen = std::collections::HashSet::new();
        for m in rg.markings() {
            assert!(seen.insert(extended.encode_marking(m)));
        }
    }

    #[test]
    fn philosophers_match_table_1() {
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        assert_eq!(enc.num_vars(), 8, "Table 1 uses 8 variables for 14 places");
        // Two full-width blocks (2 vars), two overlap blocks (1 var),
        // two singleton forks.
        let widths: Vec<usize> = enc.blocks().iter().map(Block::width).collect();
        let twos = widths.iter().filter(|&&w| w == 2).count();
        let ones = widths.iter().filter(|&&w| w == 1).count();
        assert_eq!(twos, 2);
        assert_eq!(ones, 4);
    }

    #[test]
    fn every_place_has_exactly_one_owner() {
        let net = dme(3, DmeStyle::Circuit);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        for p in net.places() {
            let owner = enc.owner_of_place(p);
            match &enc.blocks()[owner] {
                Block::Place { place, .. } => assert_eq!(*place, p),
                Block::Smc { places, owns, .. } => {
                    let j = places.iter().position(|&q| q == p).unwrap();
                    assert!(owns[j], "owner block must own the place");
                }
            }
        }
    }

    #[test]
    fn owned_codes_are_distinct_within_each_block() {
        let net = philosophers(3);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        for block in enc.blocks() {
            if let Block::Smc { codes, owns, .. } = block {
                let owned_codes: Vec<u32> = codes
                    .iter()
                    .zip(owns)
                    .filter(|&(_, &o)| o)
                    .map(|(&c, _)| c)
                    .collect();
                let mut sorted = owned_codes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), owned_codes.len());
            }
        }
    }
}
