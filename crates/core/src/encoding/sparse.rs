//! The conventional one-variable-per-place encoding (Section 2.3).

use super::{Block, Encoding, SchemeKind};
use pnsym_net::PetriNet;

/// Builds the sparse encoding: state variable `i` holds the marking of
/// place `i`.
pub(super) fn build(net: &PetriNet) -> Encoding {
    let blocks: Vec<Block> = net
        .places()
        .map(|p| Block::Place {
            place: p,
            var: p.index(),
        })
        .collect();
    Encoding::from_blocks(net, SchemeKind::Sparse, blocks, net.num_places())
}

#[cfg(test)]
mod tests {
    use super::super::Encoding;
    use pnsym_net::nets::{figure1, muller};

    #[test]
    fn one_variable_per_place() {
        let net = muller(3);
        let enc = Encoding::sparse(&net);
        assert_eq!(enc.num_vars(), net.num_places());
        assert_eq!(enc.blocks().len(), net.num_places());
    }

    #[test]
    fn encoded_bits_equal_the_marking() {
        let net = figure1();
        let enc = Encoding::sparse(&net);
        let rg = net.explore().unwrap();
        for m in rg.markings() {
            let bits = enc.encode_marking(m);
            for p in net.places() {
                assert_eq!(bits[p.index()], m.is_marked(p));
            }
        }
    }
}
