//! State-encoding schemes for safe Petri nets (Sections 3–4 of the paper).
//!
//! An [`Encoding`] maps every marking of a net to an assignment of a set of
//! boolean *state variables*. Three schemes are provided:
//!
//! * [`Encoding::sparse`] — one variable per place (the conventional scheme
//!   the paper improves upon);
//! * [`Encoding::dense`] — the basic SMC-based scheme of Sections 4.1–4.3: a
//!   minimum-cost cover of the places by SMCs is chosen and each SMC of `k`
//!   places is encoded with `⌈log2 k⌉` variables;
//! * [`Encoding::improved`] — the overlap-aware scheme of Section 4.4, where
//!   a place already covered by an earlier SMC is not encoded again.
//!
//! The encoding itself is purely combinational data (blocks, codes and
//! variable indices); the BDD machinery that turns it into characteristic
//! functions and transition relations lives in
//! [`SymbolicContext`](crate::SymbolicContext).

mod assign;
mod dense;
mod improved;
mod sparse;

pub use assign::AssignmentStrategy;

use pnsym_net::{Marking, PetriNet, PlaceId, TransitionId};
use pnsym_structural::Smc;
use std::collections::HashMap;
use std::fmt;

/// Which encoding scheme produced an [`Encoding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// One boolean variable per place.
    Sparse,
    /// Basic SMC cover encoding (Sections 4.1–4.3).
    Dense,
    /// Improved overlap-aware SMC encoding (Section 4.4).
    ImprovedDense,
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeKind::Sparse => write!(f, "sparse"),
            SchemeKind::Dense => write!(f, "dense"),
            SchemeKind::ImprovedDense => write!(f, "improved-dense"),
        }
    }
}

/// One variable block of an encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Block {
    /// A single place encoded by a single variable (sparse scheme and
    /// left-over places of the dense schemes).
    Place {
        /// The encoded place.
        place: PlaceId,
        /// The state-variable index holding the place's marking.
        var: usize,
    },
    /// An SMC encoded logarithmically.
    Smc {
        /// The places of the component, sorted by index.
        places: Vec<PlaceId>,
        /// `codes[i]` is the code assigned to `places[i]`
        /// (bit `b` of the code corresponds to `vars[b]`).
        codes: Vec<u32>,
        /// `owns[i]` is true when this block is the owning block of
        /// `places[i]` (always true in the basic dense scheme).
        owns: Vec<bool>,
        /// The state-variable indices of this block, least-significant first.
        vars: Vec<usize>,
        /// The transitions covered by (adjacent to) the component.
        transitions: Vec<TransitionId>,
    },
}

impl Block {
    /// The state-variable indices used by this block.
    pub fn vars(&self) -> Vec<usize> {
        match self {
            Block::Place { var, .. } => vec![*var],
            Block::Smc { vars, .. } => vars.clone(),
        }
    }

    /// Number of state variables used by this block.
    pub fn width(&self) -> usize {
        match self {
            Block::Place { .. } => 1,
            Block::Smc { vars, .. } => vars.len(),
        }
    }
}

/// A complete state encoding of a safe Petri net.
///
/// See the [module documentation](self) for the available schemes.
#[derive(Debug, Clone)]
pub struct Encoding {
    scheme: SchemeKind,
    num_vars: usize,
    blocks: Vec<Block>,
    /// For every place, the indices of the blocks that mention it.
    blocks_of_place: Vec<Vec<usize>>,
    /// For every place, the index of its *owning* block.
    owner_of_place: Vec<usize>,
    /// For every transition, the indices of the blocks whose variables it
    /// may change.
    blocks_of_transition: Vec<Vec<usize>>,
}

impl Encoding {
    pub(crate) fn from_blocks(
        net: &PetriNet,
        scheme: SchemeKind,
        blocks: Vec<Block>,
        num_vars: usize,
    ) -> Self {
        let mut blocks_of_place: Vec<Vec<usize>> = vec![Vec::new(); net.num_places()];
        let mut owner_of_place: Vec<Option<usize>> = vec![None; net.num_places()];
        let mut blocks_of_transition: Vec<Vec<usize>> = vec![Vec::new(); net.num_transitions()];
        for (bi, block) in blocks.iter().enumerate() {
            match block {
                Block::Place { place, .. } => {
                    blocks_of_place[place.index()].push(bi);
                    owner_of_place[place.index()] = Some(bi);
                    for &t in net
                        .place_pre_set(*place)
                        .iter()
                        .chain(net.place_post_set(*place))
                    {
                        if !blocks_of_transition[t.index()].contains(&bi) {
                            blocks_of_transition[t.index()].push(bi);
                        }
                    }
                }
                Block::Smc {
                    places,
                    owns,
                    transitions,
                    ..
                } => {
                    for (j, &p) in places.iter().enumerate() {
                        blocks_of_place[p.index()].push(bi);
                        if owns[j] {
                            debug_assert!(
                                owner_of_place[p.index()].is_none(),
                                "place {p} owned twice"
                            );
                            owner_of_place[p.index()] = Some(bi);
                        }
                    }
                    for &t in transitions {
                        blocks_of_transition[t.index()].push(bi);
                    }
                }
            }
        }
        let owner_of_place = owner_of_place
            .into_iter()
            .enumerate()
            .map(|(p, o)| o.unwrap_or_else(|| panic!("place p{p} has no owning block")))
            .collect();
        Encoding {
            scheme,
            num_vars,
            blocks,
            blocks_of_place,
            owner_of_place,
            blocks_of_transition,
        }
    }

    /// The scheme that produced this encoding.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// Number of state variables (the `V` column of the paper's tables).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The encoding's variable blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Indices of the blocks that mention place `p`.
    pub fn blocks_of_place(&self, p: PlaceId) -> &[usize] {
        &self.blocks_of_place[p.index()]
    }

    /// Index of the block that *owns* place `p` (encodes it, in the sense of
    /// Section 4.4).
    pub fn owner_of_place(&self, p: PlaceId) -> usize {
        self.owner_of_place[p.index()]
    }

    /// Indices of the blocks whose variables transition `t` may change.
    pub fn blocks_of_transition(&self, t: TransitionId) -> &[usize] {
        &self.blocks_of_transition[t.index()]
    }

    /// The code of place `p` within block `block` (`None` if the block does
    /// not mention `p`). For `Place` blocks the code is 1 (the variable is
    /// set exactly when the place is marked).
    pub fn code_of(&self, block: usize, p: PlaceId) -> Option<u32> {
        match &self.blocks[block] {
            Block::Place { place, .. } => (*place == p).then_some(1),
            Block::Smc { places, codes, .. } => {
                places.iter().position(|&q| q == p).map(|j| codes[j])
            }
        }
    }

    /// Encodes a marking as an assignment of the state variables.
    ///
    /// # Panics
    ///
    /// Panics if the marking does not mark exactly one place of some SMC
    /// block (i.e. it is not a marking the encoding was built for).
    pub fn encode_marking(&self, m: &Marking) -> Vec<bool> {
        let mut bits = vec![false; self.num_vars];
        for block in &self.blocks {
            match block {
                Block::Place { place, var } => {
                    bits[*var] = m.is_marked(*place);
                }
                Block::Smc {
                    places,
                    codes,
                    vars,
                    ..
                } => {
                    let marked: Vec<usize> = places
                        .iter()
                        .enumerate()
                        .filter(|&(_, &p)| m.is_marked(p))
                        .map(|(j, _)| j)
                        .collect();
                    assert_eq!(
                        marked.len(),
                        1,
                        "an SMC block must hold exactly one token in every encodable marking"
                    );
                    let code = codes[marked[0]];
                    for (b, &v) in vars.iter().enumerate() {
                        bits[v] = code & (1 << b) != 0;
                    }
                }
            }
        }
        bits
    }

    /// Decodes a state-variable assignment back into the set of marked
    /// places, or `None` if the assignment is not the image of any marking
    /// (possible for the dense schemes, whose codes are not surjective).
    pub fn decode_assignment(&self, bits: &[bool]) -> Option<Vec<PlaceId>> {
        assert_eq!(bits.len(), self.num_vars, "wrong assignment width");
        let mut marked = Vec::new();
        for p in 0..self.blocks_of_place.len() {
            let place = PlaceId(p as u32);
            if self.place_is_marked_in(bits, place) {
                marked.push(place);
            }
        }
        // Validate: re-encoding must reproduce the assignment on every
        // owning block; otherwise the assignment was not a marking image.
        let mut m = Marking::empty(self.blocks_of_place.len());
        for &p in &marked {
            m.set(p, true);
        }
        for block in &self.blocks {
            if let Block::Smc { places, .. } = block {
                if places.iter().filter(|&&p| m.is_marked(p)).count() != 1 {
                    return None;
                }
            }
        }
        if self.encode_marking(&m) == bits {
            Some(marked)
        } else {
            None
        }
    }

    /// Whether place `p` is marked under the given state-variable assignment,
    /// evaluated with the (recursive) characteristic-function definition of
    /// Section 5.1.
    pub fn place_is_marked_in(&self, bits: &[bool], p: PlaceId) -> bool {
        let mut memo = HashMap::new();
        self.place_marked_rec(bits, p, &mut memo)
    }

    fn place_marked_rec(
        &self,
        bits: &[bool],
        p: PlaceId,
        memo: &mut HashMap<PlaceId, bool>,
    ) -> bool {
        if let Some(&v) = memo.get(&p) {
            return v;
        }
        let owner = self.owner_of_place(p);
        let result = match &self.blocks[owner] {
            Block::Place { var, .. } => bits[*var],
            Block::Smc {
                places,
                codes,
                vars,
                ..
            } => {
                let j = places.iter().position(|&q| q == p).expect("owner lists p");
                let code = codes[j];
                let matches = vars
                    .iter()
                    .enumerate()
                    .all(|(b, &v)| bits[v] == (code & (1 << b) != 0));
                if !matches {
                    false
                } else {
                    // Exclude the places sharing this code whose own owner
                    // says they are marked (eq. 4, in its recursive form).
                    !places.iter().enumerate().any(|(k, &q)| {
                        q != p
                            && codes[k] == code
                            && self.owner_of_place(q) != owner
                            && self.place_marked_rec(bits, q, memo)
                    })
                }
            }
        };
        memo.insert(p, result);
        result
    }

    /// Constructs the sparse one-variable-per-place encoding.
    pub fn sparse(net: &PetriNet) -> Encoding {
        sparse::build(net)
    }

    /// Constructs the basic dense SMC-cover encoding (Sections 4.1–4.3).
    ///
    /// `smcs` are the candidate components (typically from
    /// [`pnsym_structural::find_smcs`]); the cover is selected with
    /// `strategy` and codes are assigned with `assignment`.
    pub fn dense(
        net: &PetriNet,
        smcs: &[Smc],
        strategy: pnsym_structural::CoverStrategy,
        assignment: AssignmentStrategy,
    ) -> Encoding {
        dense::build(net, smcs, strategy, assignment)
    }

    /// Constructs the improved overlap-aware encoding (Section 4.4).
    pub fn improved(net: &PetriNet, smcs: &[Smc], assignment: AssignmentStrategy) -> Encoding {
        improved::build(net, smcs, assignment)
    }

    /// The improved encoding extended with *parameter-free places*: an SMC
    /// whose places are all covered except one may be added at zero cost,
    /// because the marking of the remaining place is implied by the rest of
    /// the component (exactly one place of an SMC is marked). This goes
    /// beyond the paper's Section 4.4, which always spends at least one
    /// variable per otherwise-uncovered place; see the `ablation_encoding`
    /// bench for the measured effect.
    pub fn improved_with_zero_width(
        net: &PetriNet,
        smcs: &[Smc],
        assignment: AssignmentStrategy,
    ) -> Encoding {
        improved::build_with(net, smcs, assignment, true)
    }

    /// The density of the encoding in the sense of Section 3: reachable
    /// markings per potential assignment, `|[M0⟩| / 2^num_vars`, for a known
    /// marking count.
    pub fn density(&self, num_markings: f64) -> f64 {
        num_markings / 2f64.powi(self.num_vars as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets::{figure1, philosophers};
    use pnsym_structural::{find_smcs, CoverStrategy};

    fn all_schemes(net: &PetriNet) -> Vec<Encoding> {
        let smcs = find_smcs(net).unwrap();
        vec![
            Encoding::sparse(net),
            Encoding::dense(net, &smcs, CoverStrategy::Exact, AssignmentStrategy::Gray),
            Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
        ]
    }

    #[test]
    fn variable_counts_on_figure1() {
        let net = figure1();
        let encs = all_schemes(&net);
        assert_eq!(encs[0].num_vars(), 7, "sparse: one variable per place");
        assert_eq!(encs[1].num_vars(), 4, "dense: two SMCs of 4 places");
        assert_eq!(encs[2].num_vars(), 4, "improved is never worse than dense");
    }

    #[test]
    fn figure4_improved_uses_eight_variables() {
        // Section 5.4: 14 sparse variables, 10 with the basic scheme,
        // 8 with the improved scheme (Table 1).
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        let sparse = Encoding::sparse(&net);
        let dense = Encoding::dense(&net, &smcs, CoverStrategy::Exact, AssignmentStrategy::Gray);
        let improved = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        assert_eq!(sparse.num_vars(), 14);
        assert!(dense.num_vars() <= 10, "basic cover needs at most 10 vars");
        assert_eq!(improved.num_vars(), 8, "Table 1 uses 8 variables");
    }

    #[test]
    fn every_reachable_marking_round_trips() {
        for net in [figure1(), philosophers(2)] {
            let rg = net.explore().unwrap();
            for enc in all_schemes(&net) {
                for m in rg.markings() {
                    let bits = enc.encode_marking(m);
                    assert_eq!(bits.len(), enc.num_vars());
                    // The characteristic evaluation agrees with the marking.
                    for p in net.places() {
                        assert_eq!(
                            enc.place_is_marked_in(&bits, p),
                            m.is_marked(p),
                            "scheme {:?}, place {p}, marking {m}",
                            enc.scheme()
                        );
                    }
                    // And the decoder recovers the marking.
                    let decoded = enc.decode_assignment(&bits).expect("valid image");
                    assert_eq!(decoded, m.marked_places());
                }
            }
        }
    }

    #[test]
    fn encoding_is_injective_on_reachable_markings() {
        for net in [figure1(), philosophers(2)] {
            let rg = net.explore().unwrap();
            for enc in all_schemes(&net) {
                let mut seen = std::collections::HashSet::new();
                for m in rg.markings() {
                    assert!(
                        seen.insert(enc.encode_marking(m)),
                        "two markings share a code under {:?}",
                        enc.scheme()
                    );
                }
            }
        }
    }

    #[test]
    fn density_improves_with_denser_schemes() {
        let net = figure1();
        let encs = all_schemes(&net);
        let markings = net.explore().unwrap().num_markings() as f64;
        let sparse_density = encs[0].density(markings);
        let dense_density = encs[2].density(markings);
        assert!(dense_density > sparse_density);
        assert_eq!(dense_density, 8.0 / 16.0);
    }

    #[test]
    fn decode_rejects_non_images() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        // Count how many of the 2^4 assignments decode successfully: exactly
        // the number of "potentially reachable" codes, which is at least the
        // number of reachable markings.
        let valid = (0u32..16)
            .filter(|bits| {
                let assignment: Vec<bool> = (0..4).map(|b| bits & (1 << b) != 0).collect();
                enc.decode_assignment(&assignment).is_some()
            })
            .count();
        assert!(valid >= 8);
        assert!(valid <= 16);
    }

    #[test]
    fn transition_block_index_is_consistent() {
        let net = figure1();
        for enc in all_schemes(&net) {
            for t in net.transitions() {
                let blocks = enc.blocks_of_transition(t);
                // Every place adjacent to t must have its owner in the list.
                for &p in net.pre_set(t).iter().chain(net.post_set(t)) {
                    assert!(blocks.contains(&enc.owner_of_place(p)));
                }
            }
        }
    }
}
