//! The basic SMC-cover encoding (Sections 4.1–4.3 of the paper).
//!
//! A minimum-cost cover of the places by SMCs is selected (unate covering,
//! Section 4.2); every chosen SMC of `k` places receives `⌈log2 k⌉`
//! variables and an injective code over *all* of its places; places covered
//! by no chosen SMC keep one variable each.

use super::assign::{assign_codes, AssignmentStrategy};
use super::{Block, Encoding, SchemeKind};
use pnsym_net::{PetriNet, PlaceId};
use pnsym_structural::{select_smc_cover, CoverStrategy, Smc};
use std::collections::BTreeSet;

pub(super) fn build(
    net: &PetriNet,
    smcs: &[Smc],
    strategy: CoverStrategy,
    assignment: AssignmentStrategy,
) -> Encoding {
    let cover = select_smc_cover(net, smcs, strategy);
    let mut blocks = Vec::new();
    let mut next_var = 0usize;
    let mut owned_places: BTreeSet<PlaceId> = BTreeSet::new();

    // Lay the chosen components and the singleton places out by their lowest
    // place index so that the variables of strongly interacting components
    // stay adjacent (the generators declare places unit by unit).
    enum Pending {
        Smc(usize),
        Single(PlaceId),
    }
    let mut pending: Vec<(PlaceId, Pending)> = cover
        .chosen
        .iter()
        .map(|&i| {
            let anchor = smcs[i]
                .places()
                .iter()
                .copied()
                .min()
                .expect("non-empty SMC");
            (anchor, Pending::Smc(i))
        })
        .collect();
    pending.extend(
        cover
            .singleton_places
            .iter()
            .map(|&p| (p, Pending::Single(p))),
    );
    pending.sort_by_key(|&(anchor, _)| anchor);

    for (_, item) in pending {
        match item {
            Pending::Smc(smc_index) => {
                let smc = &smcs[smc_index];
                let width = smc.encoding_cost();
                // All places of the block get distinct codes; ownership goes
                // to the first laid-out block containing the place.
                let all_owned = vec![true; smc.len()];
                let codes = assign_codes(net, smc, &all_owned, width, assignment);
                let owns: Vec<bool> = smc
                    .places()
                    .iter()
                    .map(|&p| owned_places.insert(p))
                    .collect();
                let vars: Vec<usize> = (0..width as usize).map(|b| next_var + b).collect();
                next_var += width as usize;
                blocks.push(Block::Smc {
                    places: smc.places().to_vec(),
                    codes,
                    owns,
                    vars,
                    transitions: smc.transitions().to_vec(),
                });
            }
            Pending::Single(p) => {
                blocks.push(Block::Place {
                    place: p,
                    var: next_var,
                });
                next_var += 1;
            }
        }
    }
    Encoding::from_blocks(net, SchemeKind::Dense, blocks, next_var)
}

#[cfg(test)]
mod tests {
    use super::super::{AssignmentStrategy, Block, Encoding};
    use pnsym_net::nets::{dme, figure1, muller, DmeStyle};
    use pnsym_structural::{find_smcs, CoverStrategy};

    #[test]
    fn figure1_dense_uses_two_blocks_of_two_bits() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::dense(&net, &smcs, CoverStrategy::Exact, AssignmentStrategy::Gray);
        assert_eq!(enc.num_vars(), 4);
        let smc_blocks = enc
            .blocks()
            .iter()
            .filter(|b| matches!(b, Block::Smc { .. }))
            .count();
        assert_eq!(smc_blocks, 2);
    }

    #[test]
    fn muller_dense_halves_variable_count() {
        let net = muller(5);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::dense(&net, &smcs, CoverStrategy::Greedy, AssignmentStrategy::Gray);
        assert_eq!(enc.num_vars(), 10);
        assert_eq!(Encoding::sparse(&net).num_vars(), 20);
    }

    #[test]
    fn codes_are_injective_within_each_block() {
        let net = dme(3, DmeStyle::Spec);
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::dense(&net, &smcs, CoverStrategy::Greedy, AssignmentStrategy::Gray);
        for block in enc.blocks() {
            if let Block::Smc { codes, .. } = block {
                let mut sorted = codes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), codes.len());
            }
        }
    }

    #[test]
    fn sequential_assignment_also_round_trips() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::dense(
            &net,
            &smcs,
            CoverStrategy::Exact,
            AssignmentStrategy::Sequential,
        );
        let rg = net.explore().unwrap();
        for m in rg.markings() {
            let bits = enc.encode_marking(m);
            for p in net.places() {
                assert_eq!(enc.place_is_marked_in(&bits, p), m.is_marked(p));
            }
        }
    }
}
