//! Code assignment within an SMC block (Section 5.2 of the paper).
//!
//! The firing of a transition covered by an SMC moves the component's token
//! from the transition's input place to its output place; the variables of
//! the block switch from one code to the other. Assigning *Gray-like* codes
//! along the component's cycle keeps the number of toggled bits per firing
//! low, which speeds up the toggle-style BDD updates the paper relies on.

use pnsym_net::{PetriNet, PlaceId};
use pnsym_structural::Smc;
use std::collections::{BTreeMap, BTreeSet};

/// Strategy for assigning codes to the places of an SMC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AssignmentStrategy {
    /// Walk the component's state graph and assign binary-reflected Gray
    /// codes along the walk, so consecutive places differ in one bit
    /// (the paper's choice, Section 5.2).
    #[default]
    Gray,
    /// Assign plain binary codes in place-index order (the ablation
    /// baseline).
    Sequential,
}

/// Assigns a code to every place of `smc`.
///
/// `owned[j]` marks the places that must receive *distinct* codes (all of
/// them for the basic scheme; only the newly covered places for the improved
/// scheme). `width` is the number of code bits; it must satisfy
/// `2^width >= #owned`.
///
/// Non-owned places receive the code of the nearest preceding owned place
/// along the walk (sharing codes with their neighbours keeps toggling low
/// and is explicitly allowed by Section 4.4).
///
/// # Panics
///
/// Panics if `owned.len() != smc.len()`, if no place is owned, or if `width`
/// is too small for the owned places.
pub fn assign_codes(
    net: &PetriNet,
    smc: &Smc,
    owned: &[bool],
    width: u32,
    strategy: AssignmentStrategy,
) -> Vec<u32> {
    assert_eq!(owned.len(), smc.len(), "one ownership flag per place");
    let num_owned = owned.iter().filter(|&&o| o).count();
    assert!(num_owned >= 1, "a block must own at least one place");
    assert!(
        1usize << width >= num_owned,
        "width {width} cannot give {num_owned} distinct codes"
    );

    let order = match strategy {
        AssignmentStrategy::Gray => walk_order(net, smc, owned),
        AssignmentStrategy::Sequential => (0..smc.len()).collect(),
    };

    // Assign slots along the walk: owned places take successive slots,
    // non-owned places repeat the most recent slot.
    let mut slot_of = vec![0usize; smc.len()];
    let mut next_slot = 0usize;
    let mut current = 0usize;
    for &j in &order {
        if owned[j] {
            slot_of[j] = next_slot;
            current = next_slot;
            next_slot += 1;
        } else {
            slot_of[j] = current;
        }
    }

    slot_of
        .into_iter()
        .map(|slot| match strategy {
            AssignmentStrategy::Gray => gray_code(slot as u32),
            AssignmentStrategy::Sequential => slot as u32,
        })
        .collect()
}

/// The binary-reflected Gray code of `n`.
pub fn gray_code(n: u32) -> u32 {
    n ^ (n >> 1)
}

/// Orders the places of the component by walking its state graph, starting
/// from an owned place and preferring unvisited successors, so that the walk
/// follows the token's possible paths.
fn walk_order(net: &PetriNet, smc: &Smc, owned: &[bool]) -> Vec<usize> {
    let places = smc.places();
    let index_of: BTreeMap<PlaceId, usize> =
        places.iter().enumerate().map(|(j, &p)| (p, j)).collect();
    // Successor places within the component.
    let mut succ: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); places.len()];
    for &t in smc.transitions() {
        if let (Some(input), Some(output)) =
            (smc.input_place_of(net, t), smc.output_place_of(net, t))
        {
            succ[index_of[&input]].insert(index_of[&output]);
        }
    }
    let start = owned.iter().position(|&o| o).unwrap_or(0);
    let mut visited = vec![false; places.len()];
    let mut order = Vec::with_capacity(places.len());
    let mut stack = vec![start];
    while let Some(j) = stack.pop() {
        if visited[j] {
            continue;
        }
        visited[j] = true;
        order.push(j);
        // Push successors in reverse so the smallest-index successor is
        // visited first (deterministic walks).
        for &s in succ[j].iter().rev() {
            if !visited[s] {
                stack.push(s);
            }
        }
    }
    // Strong connectivity should make everything reachable; defensively
    // append anything left.
    for (j, seen) in visited.iter().enumerate() {
        if !seen {
            order.push(j);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnsym_net::nets::figure1;
    use pnsym_structural::find_smcs;

    #[test]
    fn gray_code_neighbours_differ_in_one_bit() {
        for n in 0u32..31 {
            let diff = gray_code(n) ^ gray_code(n + 1);
            assert_eq!(diff.count_ones(), 1, "gray({n}) vs gray({})", n + 1);
        }
    }

    #[test]
    fn owned_places_get_distinct_codes() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        for smc in &smcs {
            let owned = vec![true; smc.len()];
            for strategy in [AssignmentStrategy::Gray, AssignmentStrategy::Sequential] {
                let codes = assign_codes(&net, smc, &owned, 2, strategy);
                let mut sorted = codes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), smc.len(), "codes must be injective");
                assert!(codes.iter().all(|&c| c < 4));
            }
        }
    }

    #[test]
    fn gray_assignment_reduces_cycle_toggling() {
        // On the 4-place cycle SMCs of figure1, the Gray walk produces codes
        // where consecutive places along the cycle differ in exactly one bit.
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let smc = &smcs[0];
        let owned = vec![true; smc.len()];
        let codes = assign_codes(&net, smc, &owned, 2, AssignmentStrategy::Gray);
        // Count the per-transition toggles within the component.
        let mut total = 0u32;
        for &t in smc.transitions() {
            let input = smc.input_place_of(&net, t).unwrap();
            let output = smc.output_place_of(&net, t).unwrap();
            let ji = smc.places().iter().position(|&p| p == input).unwrap();
            let jo = smc.places().iter().position(|&p| p == output).unwrap();
            total += (codes[ji] ^ codes[jo]).count_ones();
        }
        // A 4-place SMC of figure1 covers 4 transitions; a Gray cycle would
        // use 4 single-bit toggles but the component is not a pure cycle
        // (p1 branches), so allow a small margin.
        assert!(total <= 6, "gray toggling too high: {total}");
    }

    #[test]
    fn shared_codes_for_non_owned_places() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let smc = &smcs[0];
        // Only two owned places -> width 1 suffices; the other two share.
        let mut owned = vec![false; smc.len()];
        owned[0] = true;
        owned[2] = true;
        let codes = assign_codes(&net, smc, &owned, 1, AssignmentStrategy::Gray);
        assert!(codes.iter().all(|&c| c < 2));
        assert_ne!(codes[0], codes[2], "owned places must differ");
    }

    #[test]
    #[should_panic(expected = "cannot give")]
    fn too_small_width_panics() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let owned = vec![true; smcs[0].len()];
        let _ = assign_codes(&net, &smcs[0], &owned, 1, AssignmentStrategy::Gray);
    }
}
