//! Precomputed image plans: the per-transition BDD artefacts of the
//! efficient image computation (Sections 5.2–5.3) built **once** per
//! context instead of once per call of every traversal iteration.
//!
//! Under every encoding of this crate a transition drives the variables it
//! writes to constants (eq. 6), so its image is
//! `(∃W_t. S ∧ E_t) ∧ T_t` where `W_t` is the written-variable set and
//! `T_t` the cube of target constants. The naive engine rebuilt `W_t` and
//! `T_t` on every call; the [`ImagePlan`] precomputes the enabling function,
//! the quantification cube and the target cube per transition, protects
//! them across garbage collection, and groups transitions whose written
//! sets coincide into [`ImageCluster`]s so the shared quantification cube
//! is built (and its variables quantified) once per cluster.
//!
//! The plan also carries the *static chaining order*: a transition ordering
//! derived from the net structure (breadth-first distance of each
//! transition's pre-set from the initially marked places) that approximates
//! the firing order. The chained fixpoint strategy fires clusters in this
//! order, folding each partial image into the reached set within a pass —
//! the technique mature Petri-net model checkers use instead of strict BFS.

use crate::context::SymbolicContext;
use pnsym_bdd::{Ref, VarId};
use pnsym_net::{PetriNet, TransitionId};
use std::collections::HashMap;

/// One transition's precomputed image artefacts inside a cluster.
#[derive(Debug, Clone, Copy)]
pub struct PlannedTransition {
    /// The transition.
    pub transition: TransitionId,
    /// Its enabling function `E_t` (eq. 5), over the current variables.
    pub enabling: Ref,
    /// The cube of target constants `T_t` (eq. 6), over the current
    /// variables the transition writes.
    pub target: Ref,
}

/// A group of transitions writing exactly the same set of state variables.
///
/// Members share one positive quantification cube over the written
/// variables, so the cube is built once and the shared variables are
/// quantified out of `S ∧ E_t` through a single cube walk per member.
#[derive(Debug, Clone)]
pub struct ImageCluster {
    /// The written state-variable indices, sorted ascending.
    pub var_indices: Vec<usize>,
    /// Positive cube over the written *current* BDD variables, used as the
    /// quantification set of the relational product.
    pub quant_cube: Ref,
    /// The member transitions, in ascending transition order.
    pub members: Vec<PlannedTransition>,
    /// Structural rank of the cluster: the minimum breadth-first distance
    /// of any member's pre-set from the initially marked places. Clusters
    /// are fired in ascending rank under the chained strategy.
    pub rank: usize,
}

/// The per-context image plan: clusters of precomputed transition
/// artefacts plus the static chaining order.
///
/// Built once by [`SymbolicContext::image_plan`]; every [`Ref`] it holds is
/// protected in the context's manager, so the plan survives garbage
/// collection and dynamic reordering for the lifetime of the context.
#[derive(Debug, Clone)]
pub struct ImagePlan {
    clusters: Vec<ImageCluster>,
    /// Cluster indices sorted by structural rank (the chaining order).
    structural_order: Vec<usize>,
    /// `location_of[t] = (cluster, member)` for every transition `t`.
    location_of: Vec<(usize, usize)>,
    /// Per-cluster place bitsets (one `u64` word per 64 places): the union
    /// of the members' pre-sets and post-sets, backing the O(words)
    /// [`ImagePlan::cluster_feeds`] test of the saturation scheduler.
    pre_places: Vec<Vec<u64>>,
    post_places: Vec<Vec<u64>>,
}

impl ImagePlan {
    /// Builds the plan for `ctx`: one cluster per distinct written-variable
    /// set, with enabling functions, quantification cubes and target cubes
    /// precomputed and protected in the context's manager.
    pub(crate) fn build(ctx: &mut SymbolicContext) -> ImagePlan {
        let num_transitions = ctx.net().num_transitions();
        let ranks = structural_transition_ranks(ctx.net());

        // Group transitions by their written-variable set.
        let mut groups: HashMap<Vec<usize>, Vec<TransitionId>> = HashMap::new();
        for ti in 0..num_transitions {
            let t = TransitionId(ti as u32);
            let written: Vec<usize> = ctx
                .transition_effect(t)
                .assignments
                .iter()
                .map(|&(i, _)| i)
                .collect();
            groups.entry(written).or_default().push(t);
        }
        let mut keyed: Vec<(Vec<usize>, Vec<TransitionId>)> = groups.into_iter().collect();
        // Deterministic cluster order: by first member transition.
        keyed.sort_by_key(|(_, ts)| ts.iter().map(|t| t.index()).min());

        let mut clusters = Vec::with_capacity(keyed.len());
        let mut location_of = vec![(0usize, 0usize); num_transitions];
        for (var_indices, transitions) in keyed {
            let quant_vars: Vec<VarId> =
                var_indices.iter().map(|&i| ctx.current_vars()[i]).collect();
            let quant_cube = {
                let m = ctx.manager_mut();
                let cube = m.var_cube(&quant_vars);
                m.protect(cube);
                cube
            };
            let mut members = Vec::with_capacity(transitions.len());
            let mut rank = usize::MAX;
            for t in transitions {
                let enabling = ctx.enabling_fn(t);
                let lits: Vec<(VarId, bool)> = ctx
                    .transition_effect(t)
                    .assignments
                    .iter()
                    .map(|&(i, value)| (ctx.current_vars()[i], value))
                    .collect();
                let target = {
                    let m = ctx.manager_mut();
                    let cube = m.cube(&lits);
                    m.protect(cube);
                    cube
                };
                rank = rank.min(ranks[t.index()]);
                location_of[t.index()] = (clusters.len(), members.len());
                members.push(PlannedTransition {
                    transition: t,
                    enabling,
                    target,
                });
            }
            clusters.push(ImageCluster {
                var_indices,
                quant_cube,
                members,
                rank,
            });
        }

        let mut structural_order: Vec<usize> = (0..clusters.len()).collect();
        structural_order.sort_by_key(|&c| (clusters[c].rank, c));

        let words = ctx.net().num_places().div_ceil(64);
        let mut pre_places = vec![vec![0u64; words]; clusters.len()];
        let mut post_places = vec![vec![0u64; words]; clusters.len()];
        for (ci, cluster) in clusters.iter().enumerate() {
            for member in &cluster.members {
                for p in ctx.net().pre_set(member.transition) {
                    pre_places[ci][p.index() / 64] |= 1 << (p.index() % 64);
                }
                for p in ctx.net().post_set(member.transition) {
                    post_places[ci][p.index() / 64] |= 1 << (p.index() % 64);
                }
            }
        }

        ImagePlan {
            clusters,
            structural_order,
            location_of,
            pre_places,
            post_places,
        }
    }

    /// The clusters, in ascending first-member transition order.
    pub fn clusters(&self) -> &[ImageCluster] {
        &self.clusters
    }

    /// Number of clusters (distinct written-variable sets).
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Cluster indices in the static chaining order (ascending structural
    /// rank; see [`ImageCluster::rank`]).
    pub fn structural_order(&self) -> &[usize] {
        &self.structural_order
    }

    /// The `(cluster, member)` location of transition `t` in the plan.
    pub fn location_of(&self, t: TransitionId) -> (usize, usize) {
        self.location_of[t.index()]
    }

    /// The planned artefacts of transition `t`.
    pub fn planned(&self, t: TransitionId) -> (&ImageCluster, &PlannedTransition) {
        let (c, m) = self.location_of(t);
        (&self.clusters[c], &self.clusters[c].members[m])
    }

    /// Whether firing a member of cluster `from` can newly enable a member
    /// of cluster `to` (structurally: `from`'s post-set intersects `to`'s
    /// pre-set). One word-AND pass over precomputed place bitsets; the
    /// saturation scheduler calls this O(clusters²) times per traversal.
    pub fn cluster_feeds(&self, from: usize, to: usize) -> bool {
        self.post_places[from]
            .iter()
            .zip(&self.pre_places[to])
            .any(|(&p, &q)| p & q != 0)
    }
}

/// Breadth-first rank of every transition: the minimum number of firings
/// before the transition can possibly become enabled, approximated on the
/// net structure (places reachable in `k` arcs from the initially marked
/// places get rank `k`; a transition's rank is the maximum rank over its
/// pre-set, so it sorts after the transitions that feed it).
///
/// Transitions whose pre-set is unreachable in the structural sense keep
/// rank `usize::MAX - 1` and sort last.
pub fn structural_transition_ranks(net: &PetriNet) -> Vec<usize> {
    let mut place_rank = vec![usize::MAX; net.num_places()];
    let mut queue = std::collections::VecDeque::new();
    for p in net.initial_marking().marked_places() {
        place_rank[p.index()] = 0;
        queue.push_back(p);
    }
    let mut transition_rank = vec![usize::MAX; net.num_transitions()];
    while let Some(p) = queue.pop_front() {
        for &t in net.place_post_set(p) {
            if transition_rank[t.index()] != usize::MAX {
                continue;
            }
            // Fireable-in-principle once every pre-place has been reached;
            // rank = max over the pre-set (the last token to arrive).
            let mut rank = 0usize;
            let mut ready = true;
            for &q in net.pre_set(t) {
                if place_rank[q.index()] == usize::MAX {
                    ready = false;
                    break;
                }
                rank = rank.max(place_rank[q.index()]);
            }
            if !ready {
                continue;
            }
            transition_rank[t.index()] = rank;
            for &q in net.post_set(t) {
                if place_rank[q.index()] == usize::MAX {
                    place_rank[q.index()] = rank + 1;
                    queue.push_back(q);
                }
            }
        }
    }
    // A transition can become ready only after one of its pre-places was
    // discovered; sweep until no rank changes (nets are small, and each
    // sweep discovers at least one transition, so this terminates quickly).
    loop {
        let mut changed = false;
        for t in net.transitions() {
            if transition_rank[t.index()] != usize::MAX {
                continue;
            }
            let mut rank = 0usize;
            let mut ready = true;
            for &q in net.pre_set(t) {
                if place_rank[q.index()] == usize::MAX {
                    ready = false;
                    break;
                }
                rank = rank.max(place_rank[q.index()]);
            }
            if !ready {
                continue;
            }
            transition_rank[t.index()] = rank;
            changed = true;
            for &q in net.post_set(t) {
                if place_rank[q.index()] == usize::MAX {
                    place_rank[q.index()] = rank + 1;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for r in &mut transition_rank {
        if *r == usize::MAX {
            *r = usize::MAX - 1;
        }
    }
    transition_rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use pnsym_net::nets::{figure1, muller, philosophers, slotted_ring};
    use pnsym_structural::find_smcs;

    #[test]
    fn every_transition_is_planned_exactly_once() {
        let net = philosophers(2);
        let smcs = find_smcs(&net).unwrap();
        for enc in [
            Encoding::sparse(&net),
            Encoding::improved(&net, &smcs, AssignmentStrategy::Gray),
        ] {
            let mut ctx = SymbolicContext::new(&net, enc);
            let plan = ctx.image_plan();
            let total: usize = plan.clusters().iter().map(|c| c.members.len()).sum();
            assert_eq!(total, net.num_transitions());
            for t in net.transitions() {
                let (_, planned) = plan.planned(t);
                assert_eq!(planned.transition, t);
                assert_eq!(planned.enabling, ctx.enabling_fn(t));
            }
            assert_eq!(plan.structural_order().len(), plan.num_clusters());
        }
    }

    #[test]
    fn clusters_share_written_variable_sets() {
        let net = figure1();
        let smcs = find_smcs(&net).unwrap();
        let mut ctx = SymbolicContext::new(
            &net,
            Encoding::improved(&net, &smcs, AssignmentStrategy::Gray),
        );
        let plan = ctx.image_plan();
        for cluster in plan.clusters() {
            for member in &cluster.members {
                let written: Vec<usize> = ctx
                    .transition_effect(member.transition)
                    .assignments
                    .iter()
                    .map(|&(i, _)| i)
                    .collect();
                assert_eq!(written, cluster.var_indices);
            }
        }
        // figure1 under the improved encoding has two SMC blocks, so the
        // transitions must collapse into fewer clusters than transitions.
        assert!(plan.num_clusters() < net.num_transitions());
    }

    #[test]
    fn structural_ranks_follow_the_flow() {
        let net = muller(4);
        let ranks = structural_transition_ranks(&net);
        assert!(ranks.iter().all(|&r| r < usize::MAX - 1));
        // At least one transition is immediately fireable-in-principle.
        assert!(ranks.contains(&0));
        // The order is non-trivial: not all ranks coincide.
        assert!(ranks.iter().any(|&r| r > 0));
    }

    #[test]
    fn structural_ranks_cover_cyclic_nets() {
        for net in [figure1(), slotted_ring(3), philosophers(3)] {
            let ranks = structural_transition_ranks(&net);
            assert!(
                ranks.iter().all(|&r| r < usize::MAX - 1),
                "{}: every transition of a live net gets a finite rank",
                net.name()
            );
        }
    }
}
