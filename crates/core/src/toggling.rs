//! Toggling-activity metrics (Section 3 and Section 5.2 of the paper).
//!
//! Moving from one marking to an adjacent one switches some encoding
//! variables; the fewer bits toggle per firing, the cheaper the toggle-style
//! BDD updates. These metrics quantify that over the explicit reachability
//! graph, both for [`Encoding`]s and for arbitrary per-marking code tables
//! (used to reproduce the 15/11 vs 19/11 comparison of Figure 2).

use crate::encoding::Encoding;
use pnsym_net::{PetriNet, ReachabilityGraph};

/// Toggling statistics of an encoding over a reachability graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TogglingReport {
    /// Sum of the Hamming distances over all reachability-graph edges.
    pub total_bits: usize,
    /// Number of edges of the reachability graph.
    pub num_edges: usize,
    /// The largest Hamming distance over a single edge.
    pub max_bits: usize,
}

impl TogglingReport {
    /// Average number of bits toggled per firing.
    pub fn average(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.total_bits as f64 / self.num_edges as f64
        }
    }
}

/// Measures the toggling activity of `encoding` over the reachability graph
/// `rg` of `net`: for every edge, the Hamming distance between the encoded
/// source and target markings.
pub fn toggling_activity(
    net: &PetriNet,
    encoding: &Encoding,
    rg: &ReachabilityGraph,
) -> TogglingReport {
    let _ = net;
    let codes: Vec<Vec<bool>> = rg
        .markings()
        .iter()
        .map(|m| encoding.encode_marking(m))
        .collect();
    let mut total = 0usize;
    let mut max = 0usize;
    for &(src, _, dst) in rg.edges() {
        let d = hamming(&codes[src], &codes[dst]);
        total += d;
        max = max.max(d);
    }
    TogglingReport {
        total_bits: total,
        num_edges: rg.num_edges(),
        max_bits: max,
    }
}

/// Measures the toggling activity of an arbitrary per-marking code table
/// (`codes[i]` is the code of the marking with reachability-graph index
/// `i`), as used for the hand-assigned optimal encodings of Figure 2.c/d.
///
/// # Panics
///
/// Panics if `codes` does not have one entry per reachable marking.
pub fn toggling_of_state_codes(rg: &ReachabilityGraph, codes: &[u32]) -> TogglingReport {
    assert_eq!(
        codes.len(),
        rg.num_markings(),
        "one code per reachable marking"
    );
    let mut total = 0usize;
    let mut max = 0usize;
    for &(src, _, dst) in rg.edges() {
        let d = (codes[src] ^ codes[dst]).count_ones() as usize;
        total += d;
        max = max.max(d);
    }
    TogglingReport {
        total_bits: total,
        num_edges: rg.num_edges(),
        max_bits: max,
    }
}

/// Per-variable toggle counts of `encoding` over the reachability graph:
/// `counts[i]` is the number of edges across which encoding variable `i`
/// switches value.
pub fn per_variable_toggling(
    net: &PetriNet,
    encoding: &Encoding,
    rg: &ReachabilityGraph,
) -> Vec<usize> {
    let _ = net;
    let codes: Vec<Vec<bool>> = rg
        .markings()
        .iter()
        .map(|m| encoding.encode_marking(m))
        .collect();
    let mut counts = vec![0usize; encoding.num_vars()];
    for &(src, _, dst) in rg.edges() {
        for (i, count) in counts.iter_mut().enumerate() {
            if codes[src][i] != codes[dst][i] {
                *count += 1;
            }
        }
    }
    counts
}

/// A static variable order chosen by the toggling metric (Section 5.2):
/// state-variable indices sorted by *descending* toggle count, ties broken
/// by index. The most active variables — the ones every other firing
/// rewrites — sit highest in the diagram, where a changed cofactor
/// perturbs the fewest nodes below it.
///
/// The returned permutation is over encoding-variable indices
/// (`0..encoding.num_vars()`); the caller maps them onto whatever
/// current/next interleaving its manager uses.
pub fn toggling_variable_order(
    net: &PetriNet,
    encoding: &Encoding,
    rg: &ReachabilityGraph,
) -> Vec<usize> {
    let counts = per_variable_toggling(net, encoding, rg);
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));
    order
}

fn hamming(a: &[bool], b: &[bool]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::AssignmentStrategy;
    use pnsym_net::nets::figure1;
    use pnsym_net::Marking;
    use pnsym_structural::find_smcs;

    /// Maps the paper's marking names (M0..M7 of Figure 1.b) to the indices
    /// of our explicitly computed reachability graph.
    fn paper_marking_indices(net: &pnsym_net::PetriNet, rg: &ReachabilityGraph) -> Vec<usize> {
        let by_names = |names: &[&str]| -> usize {
            let places: Vec<_> = names
                .iter()
                .map(|n| net.place_by_name(n).expect("place exists"))
                .collect();
            let m = Marking::from_places(net.num_places(), &places);
            rg.index_of(&m).expect("marking reachable")
        };
        vec![
            by_names(&["p1"]),       // M0
            by_names(&["p2", "p3"]), // M1
            by_names(&["p4", "p5"]), // M2
            by_names(&["p3", "p6"]), // M3
            by_names(&["p2", "p7"]), // M4
            by_names(&["p5", "p6"]), // M5
            by_names(&["p4", "p7"]), // M6
            by_names(&["p6", "p7"]), // M7
        ]
    }

    #[test]
    fn figure_2c_assignment_toggles_15_bits() {
        // Section 3: the 3-variable assignment of Figure 2.c switches 15
        // bits over the 11 edges of the reachability graph.
        let net = figure1();
        let rg = net.explore().unwrap();
        let order = paper_marking_indices(&net, &rg);
        let paper_codes: [u32; 8] = [0b000, 0b001, 0b100, 0b011, 0b101, 0b110, 0b111, 0b010];
        let mut codes = vec![0u32; rg.num_markings()];
        for (paper_m, &rg_index) in order.iter().enumerate() {
            codes[rg_index] = paper_codes[paper_m];
        }
        let report = toggling_of_state_codes(&rg, &codes);
        assert_eq!(report.num_edges, 11);
        assert_eq!(report.total_bits, 15);
    }

    #[test]
    fn naive_sequential_assignment_is_worse() {
        // Assigning plain binary codes in BFS order toggles more bits than
        // the Figure 2.c assignment (the paper's 2.d example needs 19/11).
        let net = figure1();
        let rg = net.explore().unwrap();
        let order = paper_marking_indices(&net, &rg);
        let mut codes = vec![0u32; rg.num_markings()];
        for (paper_m, &rg_index) in order.iter().enumerate() {
            codes[rg_index] = paper_m as u32;
        }
        let report = toggling_of_state_codes(&rg, &codes);
        assert!(report.total_bits > 15);
    }

    #[test]
    fn gray_smc_encoding_beats_sequential_assignment() {
        let net = figure1();
        let rg = net.explore().unwrap();
        let smcs = find_smcs(&net).unwrap();
        let gray = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let seq = Encoding::improved(&net, &smcs, AssignmentStrategy::Sequential);
        let rg_gray = toggling_activity(&net, &gray, &rg);
        let rg_seq = toggling_activity(&net, &seq, &rg);
        assert!(rg_gray.total_bits <= rg_seq.total_bits);
        assert!(rg_gray.average() <= 2.0, "firing toggles at most both SMCs");
    }

    #[test]
    fn per_variable_counts_sum_to_the_total() {
        let net = figure1();
        let rg = net.explore().unwrap();
        let smcs = find_smcs(&net).unwrap();
        let enc = Encoding::improved(&net, &smcs, AssignmentStrategy::Gray);
        let counts = per_variable_toggling(&net, &enc, &rg);
        assert_eq!(counts.len(), enc.num_vars());
        let total: usize = counts.iter().sum();
        assert_eq!(total, toggling_activity(&net, &enc, &rg).total_bits);
    }

    #[test]
    fn toggling_order_is_a_permutation_sorted_by_activity() {
        let net = figure1();
        let rg = net.explore().unwrap();
        let enc = Encoding::sparse(&net);
        let counts = per_variable_toggling(&net, &enc, &rg);
        let order = toggling_variable_order(&net, &enc, &rg);
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..enc.num_vars()).collect::<Vec<_>>());
        for pair in order.windows(2) {
            assert!(
                counts[pair[0]] >= counts[pair[1]],
                "most active variables come first"
            );
        }
    }

    #[test]
    fn sparse_toggling_counts_token_moves() {
        // Under the sparse encoding the Hamming distance of a firing is
        // |pre ∆ post| of the fired transition.
        let net = figure1();
        let rg = net.explore().unwrap();
        let sparse = Encoding::sparse(&net);
        let report = toggling_activity(&net, &sparse, &rg);
        let mut expected = 0usize;
        for &(_, t, _) in rg.edges() {
            let pre: std::collections::BTreeSet<_> = net.pre_set(t).iter().collect();
            let post: std::collections::BTreeSet<_> = net.post_set(t).iter().collect();
            expected += pre.symmetric_difference(&post).count();
        }
        assert_eq!(report.total_bits, expected);
    }
}
