//! Symbolic model checking on top of the encodings (Section 5 of the
//! paper): pre-image computation and the standard CTL fixpoint operators,
//! evaluated over the reachable state space.
//!
//! Properties are boolean combinations of place predicates
//! ([`Property::place`]), so typical Petri-net questions — mutual exclusion,
//! reachability of a partial marking, inevitability of progress — can be
//! phrased directly against the paper's encodings.

use crate::context::SymbolicContext;
use pnsym_bdd::{Ref, VarId};
use pnsym_net::{PlaceId, TransitionId};

/// A state predicate built from place markings.
///
/// # Examples
///
/// ```
/// use pnsym_core::{Encoding, Property, SymbolicContext};
/// use pnsym_net::nets::figure1;
///
/// let net = figure1();
/// let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
/// let p2 = net.place_by_name("p2").unwrap();
/// let p3 = net.place_by_name("p3").unwrap();
/// // "p2 and p3 marked together" is reachable in Figure 1 (marking M1).
/// let both = Property::place(p2).and(Property::place(p3));
/// assert!(ctx.check_reachable(&both));
/// ```
#[derive(Debug, Clone)]
pub enum Property {
    /// The given place is marked.
    Place(PlaceId),
    /// Boolean negation.
    Not(Box<Property>),
    /// Boolean conjunction.
    And(Box<Property>, Box<Property>),
    /// Boolean disjunction.
    Or(Box<Property>, Box<Property>),
    /// The constant true predicate.
    True,
}

impl Property {
    /// The predicate "place `p` is marked".
    pub fn place(p: PlaceId) -> Property {
        Property::Place(p)
    }

    /// Negation of the predicate.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Property {
        Property::Not(Box::new(self))
    }

    /// Conjunction with another predicate.
    pub fn and(self, other: Property) -> Property {
        Property::And(Box::new(self), Box::new(other))
    }

    /// Disjunction with another predicate.
    pub fn or(self, other: Property) -> Property {
        Property::Or(Box::new(self), Box::new(other))
    }

    /// Conjunction of "marked" predicates over a set of places (a partial
    /// marking).
    pub fn all_marked(places: &[PlaceId]) -> Property {
        places
            .iter()
            .fold(Property::True, |acc, &p| acc.and(Property::place(p)))
    }
}

impl SymbolicContext {
    /// Translates a [`Property`] into a BDD over the current state
    /// variables.
    pub fn property_set(&mut self, property: &Property) -> Ref {
        match property {
            Property::Place(p) => self.place_fn(*p),
            Property::True => self.manager().one(),
            Property::Not(a) => {
                let fa = self.property_set(a);
                self.manager_mut().not(fa)
            }
            Property::And(a, b) => {
                let fa = self.property_set(a);
                let fb = self.property_set(b);
                self.manager_mut().and(fa, fb)
            }
            Property::Or(a, b) => {
                let fa = self.property_set(a);
                let fb = self.property_set(b);
                self.manager_mut().or(fa, fb)
            }
        }
    }

    /// The pre-image of `target` under transition `t`: the markings that
    /// enable `t` and reach a marking of `target` by firing it.
    pub fn pre_image(&mut self, target: Ref, t: TransitionId) -> Ref {
        let enabled = self.enabling_fn(t);
        let lits: Vec<(VarId, bool)> = self
            .transition_effect(t)
            .assignments
            .iter()
            .map(|&(i, value)| (self.current_vars()[i], value))
            .collect();
        let changed: Vec<VarId> = lits.iter().map(|&(v, _)| v).collect();
        let m = self.manager_mut();
        let consts = m.cube(&lits);
        // target[changed := consts] = ∃ changed. (target ∧ consts)
        let substituted = m.and_exists(target, consts, &changed);
        m.and(enabled, substituted)
    }

    /// The pre-image of `target` under all transitions (one backward step).
    pub fn pre_image_all(&mut self, target: Ref) -> Ref {
        let mut acc = self.manager().zero();
        for ti in 0..self.net().num_transitions() {
            let pre = self.pre_image(target, TransitionId(ti as u32));
            acc = self.manager_mut().or(acc, pre);
        }
        acc
    }

    /// CTL `EX target` restricted to `within`: states of `within` with a
    /// successor in `target`.
    pub fn ex(&mut self, target: Ref, within: Ref) -> Ref {
        let pre = self.pre_image_all(target);
        self.manager_mut().and(pre, within)
    }

    /// CTL `EF target` restricted to `within` (least fixpoint of
    /// `target ∨ EX Z`): states of `within` that can reach `target`.
    pub fn ef(&mut self, target: Ref, within: Ref) -> Ref {
        let mut z = self.manager_mut().and(target, within);
        loop {
            let pre = self.pre_image_all(z);
            let step = self.manager_mut().and(pre, within);
            let next = self.manager_mut().or(z, step);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// CTL `EG target` restricted to `within` (greatest fixpoint of
    /// `target ∧ EX Z`): states from which some infinite (or
    /// deadlock-free-prefix) path stays in `target`.
    pub fn eg(&mut self, target: Ref, within: Ref) -> Ref {
        let mut z = self.manager_mut().and(target, within);
        loop {
            let pre = self.pre_image_all(z);
            let next = self.manager_mut().and(z, pre);
            if next == z {
                return z;
            }
            z = next;
        }
    }

    /// CTL `AG target` restricted to `within`: `¬ EF ¬target`.
    pub fn ag(&mut self, target: Ref, within: Ref) -> Ref {
        let not_target = self.manager_mut().not(target);
        let bad = self.ef(not_target, within);
        self.manager_mut().diff(within, bad)
    }

    /// CTL `AF target` restricted to `within`: `¬ EG ¬target`.
    pub fn af(&mut self, target: Ref, within: Ref) -> Ref {
        let not_target = self.manager_mut().not(target);
        let avoid = self.eg(not_target, within);
        self.manager_mut().diff(within, avoid)
    }

    /// Whether some reachable marking satisfies `property`
    /// (`EF property` from the initial marking).
    pub fn check_reachable(&mut self, property: &Property) -> bool {
        let reached = self.reachable_markings().reached;
        let target = self.property_set(property);
        let hit = self.manager_mut().and(reached, target);
        hit != self.manager().zero()
    }

    /// Whether every reachable marking satisfies `property`
    /// (`AG property` from the initial marking).
    pub fn check_invariant(&mut self, property: &Property) -> bool {
        let reached = self.reachable_markings().reached;
        let target = self.property_set(property);
        let bad = self.manager_mut().diff(reached, target);
        bad == self.manager().zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use pnsym_net::nets::{dme, figure1, philosophers, DmeStyle};
    use pnsym_net::PetriNet;
    use pnsym_structural::find_smcs;

    fn dense_ctx(net: &PetriNet) -> SymbolicContext {
        let smcs = find_smcs(net).unwrap();
        SymbolicContext::new(
            net,
            Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
        )
    }

    #[test]
    fn pre_image_inverts_image_on_figure1() {
        let net = figure1();
        for mut ctx in [
            SymbolicContext::new(&net, Encoding::sparse(&net)),
            dense_ctx(&net),
        ] {
            let reached = ctx.reachable_markings().reached;
            for t in net.transitions() {
                let img = ctx.image(reached, t);
                let back = ctx.pre_image(img, t);
                // Every state that fired t is in the pre-image of its image.
                let enabled = ctx.enabling_fn(t);
                let firing_states = ctx.manager_mut().and(reached, enabled);
                let missing = ctx.manager_mut().diff(firing_states, back);
                assert_eq!(missing, ctx.manager().zero());
            }
        }
    }

    #[test]
    fn mutual_exclusion_is_an_invariant_of_dme() {
        let net = dme(3, DmeStyle::Spec);
        let mut ctx = dense_ctx(&net);
        let cs: Vec<PlaceId> = (0..3)
            .map(|i| net.place_by_name(&format!("critical.{i}")).unwrap())
            .collect();
        // No two cells in the critical section at once.
        for i in 0..3 {
            for j in i + 1..3 {
                let both = Property::place(cs[i]).and(Property::place(cs[j]));
                assert!(!ctx.check_reachable(&both));
                assert!(ctx.check_invariant(&both.not()));
            }
        }
        // Each cell can reach its critical section.
        for &c in &cs {
            assert!(ctx.check_reachable(&Property::place(c)));
        }
    }

    #[test]
    fn ef_and_ag_fixpoints_on_philosophers() {
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let reached = ctx.reachable_markings().reached;
        let eating0 = net.place_by_name("eating.0").unwrap();
        let target = ctx.place_fn(eating0);
        // From the initial marking philosopher 0 can eventually eat.
        let ef = ctx.ef(target, reached);
        let init = ctx.initial_set();
        let init_in_ef = ctx.manager_mut().and(init, ef);
        assert_ne!(init_in_ef, ctx.manager().zero());
        // But it is not inevitable: the deadlock avoids it, so AF(eating.0)
        // does not hold initially.
        let af = ctx.af(target, reached);
        let init_in_af = ctx.manager_mut().and(init, af);
        assert_eq!(init_in_af, ctx.manager().zero());
        // AG(true) is everything.
        let ag_true = ctx.ag(ctx.manager().one(), reached);
        assert_eq!(ag_true, reached);
    }

    #[test]
    fn property_combinators_translate_correctly() {
        let net = figure1();
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let p2 = net.place_by_name("p2").unwrap();
        let p4 = net.place_by_name("p4").unwrap();
        // p2 and p4 belong to the same SMC: never marked together.
        let both = Property::all_marked(&[p2, p4]);
        assert!(!ctx.check_reachable(&both));
        let either = Property::place(p2).or(Property::place(p4));
        assert!(ctx.check_reachable(&either));
        assert!(!ctx.check_invariant(&either));
        assert!(ctx.check_invariant(&Property::True));
    }

    #[test]
    fn eg_finds_the_deadlock_self_loop_free_states() {
        // In figure1 (deadlock-free, strongly connected behaviour),
        // EG(true) over the reached set is the whole reached set.
        let net = figure1();
        let mut ctx = dense_ctx(&net);
        let reached = ctx.reachable_markings().reached;
        let eg = ctx.eg(ctx.manager().one(), reached);
        assert_eq!(eg, reached);
    }
}
