//! Symbolic CTL model checking on top of the encodings (Section 5 of the
//! paper): pre-image computation through the precomputed
//! [`PreImagePlan`](crate::preplan::PreImagePlan), the full set of CTL
//! fixpoint operators (`EX EF EG AX AF AG EU AU`), and the
//! [`SymbolicContext::check_property`] entry point producing a verdict plus
//! a concrete witness or counterexample firing sequence.
//!
//! Properties come from the [`Property`](crate::Property) language (built
//! programmatically or parsed from text); atomic propositions are place
//! markings, so typical Petri-net questions — mutual exclusion,
//! reachability of a partial marking, inevitability of progress, absence of
//! deadlock (`AG EX true`) — can be phrased directly against the paper's
//! encodings.
//!
//! # Path semantics at deadlocks
//!
//! Safe Petri nets can deadlock, so the transition relation is not total
//! and the usual CTL path quantifiers need a convention. This module (and
//! the explicit-state oracle in [`crate::explicit`]) uses the standard
//! *infinite-path* semantics: `EG φ` demands an infinite run staying in
//! `φ`, so a deadlocked state never satisfies it, and dually every
//! universally quantified formula (`AX`, `AF`, `AG φ` over successors,
//! `A[φ U ψ]`) holds **vacuously** at a deadlocked state. The classical
//! dualities (`AF φ = ¬EG ¬φ`, `A[φ U ψ] = ¬(E[¬ψ U ¬φ∧¬ψ] ∨ EG ¬ψ)`) are
//! preserved under this convention and pinned by the test suite. A
//! deadlock itself is expressible inside the language as `!EX true`.

use crate::context::SymbolicContext;
use crate::property::Property;
use crate::trace::WitnessTrace;
use crate::traverse::{ReachabilityResult, TraversalOptions};
use pnsym_bdd::{Interrupt, Ref, TruncationReason};
use pnsym_net::TransitionId;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// What the optional trace attached to a [`CheckReport`] demonstrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// The trace demonstrates that the property *holds*: a firing sequence
    /// into a target state (`EF`, `EU`, `EX`) or a lasso staying in the
    /// target set (`EG`).
    Witness,
    /// The trace demonstrates that the property *fails*: a firing sequence
    /// into a violating state (`AG`, `AX`, the finite branch of `AU`) or a
    /// lasso avoiding the target forever (`AF`, the infinite branch of
    /// `AU`).
    Counterexample,
}

/// The outcome of one [`SymbolicContext::check_property`] query.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Whether the initial marking satisfies the property.
    pub holds: bool,
    /// Number of reachable markings satisfying the property.
    pub sat_markings: f64,
    /// Number of reachable markings (the model the property was evaluated
    /// over).
    pub reached_markings: f64,
    /// A concrete firing sequence explaining the verdict, when the
    /// top-level operator admits one (see [`TraceKind`]); validated against
    /// the token game by the test suite.
    pub trace: Option<WitnessTrace>,
    /// What [`CheckReport::trace`] demonstrates; `None` iff `trace` is.
    pub trace_kind: Option<TraceKind>,
    /// Why the underlying reachability fixpoint stopped early
    /// ([`TraversalOptions::max_iterations`], a budget breach, a worker
    /// loss), or `None` for a complete fixpoint. A truncated run explores
    /// only a subset of the reachable markings, so [`CheckReport::holds`]
    /// and [`CheckReport::sat_markings`] describe that explored prefix,
    /// **not a definitive verdict** over the full state space — callers
    /// must surface this instead of trusting the verdict (the bench
    /// `check` runner prints the reason and fails truncated verdicts).
    pub truncated: Option<TruncationReason>,
    /// Wall-clock time of the query (including the reachability fixpoint).
    pub duration: Duration,
}

/// The outcome of one portfolio pass
/// ([`SymbolicContext::check_portfolio`]): per-property reports plus the
/// shared-subterm cache counters that quantify how much bottom-up work the
/// portfolio amortized across its formulas.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// One [`CheckReport`] per input property, in input order.
    pub reports: Vec<CheckReport>,
    /// Subterm evaluations answered from the shared cache. Each hit is a
    /// whole sub-fixpoint (or boolean subterm) that earlier formulas of the
    /// same portfolio already computed.
    pub subterm_hits: u64,
    /// Total subterm lookups (one per node of every property AST walked).
    pub subterm_lookups: u64,
}

/// The shared-subterm cache of one portfolio pass: satisfaction sets keyed
/// by the (hashable) property subterm, valid for a single `within` set.
/// Every cached set is protected until the pass drains the cache.
#[derive(Default)]
struct SubtermCache {
    map: HashMap<Property, Ref>,
    hits: u64,
    lookups: u64,
}

/// Panic message of the infallible CTL wrappers when a budget trips under
/// them: governed callers must go through the `try_*` variants.
const GOVERNED_CTL: &str =
    "budget breached inside an infallible CTL fixpoint; governed callers must use the try_* variants";

impl SymbolicContext {
    /// Translates a [`Property`] into the BDD of its satisfying markings.
    ///
    /// Purely boolean formulas are translated over the whole encoded space
    /// (no reachability fixpoint is run); temporal formulas are evaluated
    /// over the reachable state space, i.e. this is
    /// [`SymbolicContext::sat_set`] with the reached set as the model.
    pub fn property_set(&mut self, property: &Property) -> Ref {
        if property.is_boolean() {
            return self.boolean_set(property);
        }
        let reached = self.reachable_markings().reached;
        self.sat_set(property, reached)
    }

    /// Translates a boolean (non-temporal) formula over the whole encoded
    /// space. Temporal subformulas panic; callers dispatch on
    /// [`Property::is_boolean`] first.
    fn boolean_set(&mut self, property: &Property) -> Ref {
        match property {
            Property::Place(p) => self.place_fn(*p),
            Property::True => self.manager().one(),
            Property::False => self.manager().zero(),
            Property::Not(a) => {
                let fa = self.boolean_set(a);
                self.manager_mut().not(fa)
            }
            Property::And(a, b) => {
                let fa = self.boolean_set(a);
                let fb = self.boolean_set(b);
                self.manager_mut().and(fa, fb)
            }
            Property::Or(a, b) => {
                let fa = self.boolean_set(a);
                let fb = self.boolean_set(b);
                self.manager_mut().or(fa, fb)
            }
            _ => unreachable!("boolean_set is only called on boolean formulas"),
        }
    }

    /// The set of markings of `within` satisfying the CTL formula
    /// `property`, computed by bottom-up fixpoint evaluation.
    ///
    /// `within` is the model: the set the path quantifiers range over,
    /// typically the reached set of
    /// [`SymbolicContext::reachable_markings`]. It must be closed under
    /// successors for the universal operators to be meaningful (the
    /// reached set is). The result is always a subset of `within`.
    pub fn sat_set(&mut self, property: &Property, within: Ref) -> Ref {
        match property {
            Property::Place(p) => {
                let chi = self.place_fn(*p);
                self.manager_mut().and(chi, within)
            }
            Property::True => within,
            Property::False => self.manager().zero(),
            Property::Not(a) => {
                let fa = self.sat_set(a, within);
                self.manager_mut().diff(within, fa)
            }
            Property::And(a, b) => {
                let fa = self.sat_set(a, within);
                let fb = self.sat_set(b, within);
                self.manager_mut().and(fa, fb)
            }
            Property::Or(a, b) => {
                let fa = self.sat_set(a, within);
                let fb = self.sat_set(b, within);
                self.manager_mut().or(fa, fb)
            }
            Property::Ex(a) => {
                let fa = self.sat_set(a, within);
                self.ex(fa, within)
            }
            Property::Ef(a) => {
                let fa = self.sat_set(a, within);
                self.ef(fa, within)
            }
            Property::Eg(a) => {
                let fa = self.sat_set(a, within);
                self.eg(fa, within)
            }
            Property::Ax(a) => {
                let fa = self.sat_set(a, within);
                self.ax(fa, within)
            }
            Property::Af(a) => {
                let fa = self.sat_set(a, within);
                self.af(fa, within)
            }
            Property::Ag(a) => {
                let fa = self.sat_set(a, within);
                self.ag(fa, within)
            }
            Property::Eu(a, b) => {
                let fa = self.sat_set(a, within);
                let fb = self.sat_set(b, within);
                self.eu(fa, fb, within)
            }
            Property::Au(a, b) => {
                let fa = self.sat_set(a, within);
                let fb = self.sat_set(b, within);
                self.au(fa, fb, within)
            }
        }
    }

    /// The pre-image of `target` under transition `t`: the markings that
    /// enable `t` and reach a marking of `target` by firing it.
    ///
    /// Uses the precomputed
    /// [`PreImagePlan`](crate::preplan::PreImagePlan): the enabling
    /// function, target cube and quantification cube of `t` are built once
    /// per context, not per call.
    pub fn pre_image(&mut self, target: Ref, t: TransitionId) -> Ref {
        let plan = self.pre_image_plan();
        let (cluster, planned) = plan.planned(t);
        let m = self.manager_mut();
        // target[W_t := T_t] = ∃W_t. (target ∧ T_t)
        let substituted = m.and_exists_cube(target, planned.target, cluster.quant_cube);
        if substituted == m.zero() {
            return substituted;
        }
        m.and(planned.enabling, substituted)
    }

    /// The pre-image of `target` under every transition of one pre-plan
    /// cluster: the shared quantification cube is walked once per member
    /// and the members' partial pre-images are OR-folded.
    pub fn cluster_pre_image(&mut self, cluster: usize, target: Ref) -> Ref {
        self.try_cluster_pre_image(cluster, target)
            .expect("budget breached inside an infallible pre-image; governed callers must use try_cluster_pre_image")
    }

    /// Governed [`SymbolicContext::cluster_pre_image`]: unwinds with a
    /// typed [`Interrupt`] when the installed budget trips.
    pub fn try_cluster_pre_image(&mut self, cluster: usize, target: Ref) -> Result<Ref, Interrupt> {
        let plan = self.pre_image_plan();
        let c = &plan.clusters()[cluster];
        let mut acc = self.manager().zero();
        for member in &c.members {
            let m = self.manager_mut();
            let substituted = m.try_and_exists_cube(target, member.target, c.quant_cube)?;
            if substituted == m.zero() {
                continue;
            }
            let pre = m.try_and(member.enabling, substituted)?;
            acc = m.try_or(acc, pre)?;
        }
        Ok(acc)
    }

    /// The pre-image of `target` under all transitions (one backward step),
    /// folded cluster by cluster in the plan's backward order.
    pub fn pre_image_all(&mut self, target: Ref) -> Ref {
        self.try_pre_image_all(target)
            .expect("budget breached inside an infallible pre-image; governed callers must use try_pre_image_all")
    }

    /// Governed [`SymbolicContext::pre_image_all`]: unwinds with a typed
    /// [`Interrupt`] when the installed budget trips.
    pub fn try_pre_image_all(&mut self, target: Ref) -> Result<Ref, Interrupt> {
        let plan = self.pre_image_plan();
        let mut acc = self.manager().zero();
        for &cluster in plan.backward_order() {
            let pre = self.try_cluster_pre_image(cluster, target)?;
            acc = self.manager_mut().try_or(acc, pre)?;
        }
        Ok(acc)
    }

    /// CTL `EX target` restricted to `within`: states of `within` with a
    /// successor in `target`.
    pub fn ex(&mut self, target: Ref, within: Ref) -> Ref {
        self.try_ex(target, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::ex`].
    pub fn try_ex(&mut self, target: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let pre = self.try_pre_image_all(target)?;
        self.manager_mut().try_and(pre, within)
    }

    /// CTL `AX target` restricted to `within`: states of `within` all of
    /// whose successors lie in `target` (vacuously including deadlocks).
    pub fn ax(&mut self, target: Ref, within: Ref) -> Ref {
        self.try_ax(target, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::ax`].
    pub fn try_ax(&mut self, target: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let not_target = self.manager_mut().try_diff(within, target)?;
        let ex_not = self.try_ex(not_target, within)?;
        self.manager_mut().try_diff(within, ex_not)
    }

    /// CTL `EF target` restricted to `within` (least fixpoint of
    /// `target ∨ EX Z`): states of `within` that can reach `target`.
    pub fn ef(&mut self, target: Ref, within: Ref) -> Ref {
        self.try_ef(target, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::ef`]: the budget is additionally
    /// force-checked at every fixpoint iteration, so a tiny deadline
    /// truncates deterministically even on nets too small for the
    /// amortized in-recursion check to fire.
    pub fn try_ef(&mut self, target: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let mut z = self.manager_mut().try_and(target, within)?;
        loop {
            self.manager_mut().force_checkpoint()?;
            let pre = self.try_pre_image_all(z)?;
            let step = self.manager_mut().try_and(pre, within)?;
            let next = self.manager_mut().try_or(z, step)?;
            if next == z {
                return Ok(z);
            }
            z = next;
        }
    }

    /// CTL `EG target` restricted to `within` (greatest fixpoint of
    /// `target ∧ EX Z`): states from which some infinite path stays in
    /// `target` forever. Deadlocked states drop out of the fixpoint, per
    /// the module's path semantics.
    pub fn eg(&mut self, target: Ref, within: Ref) -> Ref {
        self.try_eg(target, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::eg`] (see [`SymbolicContext::try_ef`]
    /// for the per-iteration checkpoint discipline).
    pub fn try_eg(&mut self, target: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let mut z = self.manager_mut().try_and(target, within)?;
        loop {
            self.manager_mut().force_checkpoint()?;
            let pre = self.try_pre_image_all(z)?;
            let next = self.manager_mut().try_and(z, pre)?;
            if next == z {
                return Ok(z);
            }
            z = next;
        }
    }

    /// CTL `AG target` restricted to `within`: `¬ EF ¬target`.
    pub fn ag(&mut self, target: Ref, within: Ref) -> Ref {
        self.try_ag(target, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::ag`].
    pub fn try_ag(&mut self, target: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let not_target = self.manager_mut().try_not(target)?;
        let bad = self.try_ef(not_target, within)?;
        self.manager_mut().try_diff(within, bad)
    }

    /// CTL `AF target` restricted to `within`: `¬ EG ¬target`. Deadlocked
    /// states satisfy it vacuously, per the module's path semantics.
    pub fn af(&mut self, target: Ref, within: Ref) -> Ref {
        self.try_af(target, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::af`].
    pub fn try_af(&mut self, target: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let not_target = self.manager_mut().try_not(target)?;
        let avoid = self.try_eg(not_target, within)?;
        self.manager_mut().try_diff(within, avoid)
    }

    /// CTL `E[hold U until]` restricted to `within` (least fixpoint of
    /// `until ∨ (hold ∧ EX Z)`): states with a path satisfying `hold` at
    /// every step until a state of `until` is reached.
    pub fn eu(&mut self, hold: Ref, until: Ref, within: Ref) -> Ref {
        self.try_eu(hold, until, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::eu`] (see [`SymbolicContext::try_ef`]
    /// for the per-iteration checkpoint discipline).
    pub fn try_eu(&mut self, hold: Ref, until: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let hold_w = self.manager_mut().try_and(hold, within)?;
        let mut z = self.manager_mut().try_and(until, within)?;
        loop {
            self.manager_mut().force_checkpoint()?;
            let pre = self.try_pre_image_all(z)?;
            let step = self.manager_mut().try_and(hold_w, pre)?;
            let next = self.manager_mut().try_or(z, step)?;
            if next == z {
                return Ok(z);
            }
            z = next;
        }
    }

    /// CTL `A[hold U until]` restricted to `within` (least fixpoint of
    /// `until ∨ (hold ∧ AX Z)`): states all of whose paths satisfy `hold`
    /// until they reach `until`. Deadlocked `hold`-states satisfy it
    /// vacuously, per the module's path semantics; the classical duality
    /// `A[p U q] = ¬(E[¬q U ¬p∧¬q] ∨ EG ¬q)` is preserved (and pinned by
    /// the tests).
    pub fn au(&mut self, hold: Ref, until: Ref, within: Ref) -> Ref {
        self.try_au(hold, until, within).expect(GOVERNED_CTL)
    }

    /// Governed [`SymbolicContext::au`] (see [`SymbolicContext::try_ef`]
    /// for the per-iteration checkpoint discipline).
    pub fn try_au(&mut self, hold: Ref, until: Ref, within: Ref) -> Result<Ref, Interrupt> {
        let hold_w = self.manager_mut().try_and(hold, within)?;
        let until_w = self.manager_mut().try_and(until, within)?;
        let mut z = until_w;
        loop {
            self.manager_mut().force_checkpoint()?;
            let ax_z = self.try_ax(z, within)?;
            let step = self.manager_mut().try_and(hold_w, ax_z)?;
            let next = self.manager_mut().try_or(until_w, step)?;
            if next == z {
                return Ok(z);
            }
            z = next;
        }
    }

    /// Whether some reachable marking satisfies `property`
    /// (`EF property` from the initial marking).
    pub fn check_reachable(&mut self, property: &Property) -> bool {
        let reached = self.reachable_markings().reached;
        let sat = self.sat_set(property, reached);
        sat != self.manager().zero()
    }

    /// Whether every reachable marking satisfies `property`
    /// (`AG property` from the initial marking).
    pub fn check_invariant(&mut self, property: &Property) -> bool {
        let reached = self.reachable_markings().reached;
        let sat = self.sat_set(property, reached);
        sat == reached
    }

    /// Checks `property` at the initial marking over the reachable state
    /// space and, where the top-level operator admits one, extracts a
    /// concrete witness or counterexample firing sequence.
    ///
    /// Traces are produced for: `EF`/`EU`/`EX` witnesses (a path into the
    /// target), `EG` witnesses (a lasso staying in the target set),
    /// `AG`/`AX` counterexamples (a path to a violating state), `AF`
    /// counterexamples (a lasso avoiding the target) and `AU`
    /// counterexamples (a finite `¬until` path into `¬hold ∧ ¬until`, or a
    /// `¬until` lasso). For other shapes `trace` is `None`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::{Encoding, Property, SymbolicContext};
    /// use pnsym_net::nets::philosophers;
    ///
    /// let net = philosophers(2);
    /// let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
    /// // The classic deadlock is reachable; the report carries a witness.
    /// let prop = Property::parse("EF !EX true", &net).unwrap();
    /// let report = ctx.check_property(&prop);
    /// assert!(report.holds);
    /// let trace = report.trace.unwrap();
    /// assert!(trace.validate(&net));
    /// assert!(net.enabled_transitions(trace.witness()).is_empty());
    /// ```
    pub fn check_property(&mut self, property: &Property) -> CheckReport {
        self.check_property_with(property, TraversalOptions::default())
    }

    /// [`SymbolicContext::check_property`] with explicit traversal options
    /// for the underlying reachability fixpoint (strategy, GC threshold,
    /// sifting policy).
    pub fn check_property_with(
        &mut self,
        property: &Property,
        options: TraversalOptions,
    ) -> CheckReport {
        let start = Instant::now();
        let run = self.reachable_markings_with(options);
        let reached = run.reached;
        let sat = self.sat_set(property, reached);
        let init = self.initial_set();
        let init_sat = self.manager_mut().and(init, sat);
        let holds = init_sat != self.manager().zero();
        let explained = self.explain(property, holds, sat, reached);
        let (trace, trace_kind) = match explained {
            Some((trace, kind)) => (Some(trace), Some(kind)),
            None => (None, None),
        };
        CheckReport {
            holds,
            sat_markings: self.count_markings(sat),
            reached_markings: self.count_markings(reached),
            trace,
            trace_kind,
            truncated: run.truncated,
            duration: start.elapsed(),
        }
    }

    /// Checks a *portfolio* of properties against one reached set in a
    /// single bottom-up pass with shared subterm caching.
    ///
    /// Where repeated [`SymbolicContext::check_property`] calls re-evaluate
    /// common subformulas from scratch (each call recurses over its own AST
    /// with no memory of earlier queries), the portfolio pass memoizes
    /// every subterm's satisfaction set by the subterm itself, so a shared
    /// core — e.g. the `eating.0 & eating.1` conjunction appearing under
    /// both an `AG !(...)` invariant and an `EF (...)` reachability query —
    /// is computed once. The counters on the returned [`PortfolioReport`]
    /// expose the amortization.
    ///
    /// # Examples
    ///
    /// ```
    /// use pnsym_core::{Encoding, Property, SymbolicContext};
    /// use pnsym_net::nets::philosophers;
    ///
    /// let net = philosophers(2);
    /// let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
    /// let props: Vec<Property> = [
    ///     "AG !(eating.0 & eating.1)",
    ///     "EF (eating.0 & eating.1)",
    /// ]
    /// .iter()
    /// .map(|t| Property::parse(t, &net).unwrap())
    /// .collect();
    /// let portfolio = ctx.check_portfolio(&props);
    /// assert!(portfolio.reports[0].holds);
    /// assert!(!portfolio.reports[1].holds);
    /// // The shared `eating.0 & eating.1` subterm came from the cache the
    /// // second time around (one hit short-circuits its whole subtree).
    /// assert!(portfolio.subterm_hits >= 1);
    /// ```
    pub fn check_portfolio(&mut self, properties: &[Property]) -> PortfolioReport {
        self.check_portfolio_with(properties, TraversalOptions::default())
    }

    /// [`SymbolicContext::check_portfolio`] with explicit traversal options
    /// for the underlying reachability fixpoint and the per-query budget.
    pub fn check_portfolio_with(
        &mut self,
        properties: &[Property],
        options: TraversalOptions,
    ) -> PortfolioReport {
        let run = self.reachable_markings_with(options);
        self.check_portfolio_on(properties, &run, options)
    }

    /// Evaluates a portfolio over an *already computed* reachability result
    /// (the warm-context path: a server reusing one reached set across many
    /// queries skips the traversal entirely and enters here).
    ///
    /// The budget described by `options` is re-armed for the evaluation
    /// phase: every CTL fixpoint runs governed, and a breach degrades the
    /// offending property — and, since a tripped budget is sticky, every
    /// later property of the same portfolio — to a typed
    /// [`TruncationReason`] verdict instead of panicking or stalling.
    /// Witness extraction runs outside the budget (it only walks sets the
    /// governed phase already computed). The budget is disarmed and the
    /// subterm cache drained before returning, so the context stays
    /// serviceable for the next query.
    pub fn check_portfolio_on(
        &mut self,
        properties: &[Property],
        run: &ReachabilityResult,
        options: TraversalOptions,
    ) -> PortfolioReport {
        let reached = run.reached;
        let mut cache = SubtermCache::default();
        if let Some(budget) = options.budget() {
            self.manager_mut().install_budget(budget);
        }
        let mut reports = Vec::with_capacity(properties.len());
        for property in properties {
            let start = Instant::now();
            let evaluated = self
                .sat_set_memo(property, reached, &mut cache)
                .and_then(|sat| {
                    let init = self.initial_set();
                    let init_sat = self.manager_mut().try_and(init, sat)?;
                    Ok((sat, init_sat != self.manager().zero()))
                });
            let report = match evaluated {
                Ok((sat, holds)) => {
                    // Trace extraction uses the infallible ops: suspend the
                    // budget (keeping its sticky state and absolute
                    // deadline) so a late breach cannot panic mid-walk.
                    let budget = self.manager_mut().take_budget();
                    let explained = self.explain(property, holds, sat, reached);
                    if let Some(budget) = budget {
                        self.manager_mut().install_budget(budget);
                    }
                    let (trace, trace_kind) = match explained {
                        Some((trace, kind)) => (Some(trace), Some(kind)),
                        None => (None, None),
                    };
                    CheckReport {
                        holds,
                        sat_markings: self.count_markings(sat),
                        reached_markings: run.num_markings,
                        trace,
                        trace_kind,
                        truncated: run.truncated,
                        duration: start.elapsed(),
                    }
                }
                Err(interrupt) => CheckReport {
                    holds: false,
                    sat_markings: 0.0,
                    reached_markings: run.num_markings,
                    trace: None,
                    trace_kind: None,
                    truncated: Some(interrupt.reason),
                    duration: start.elapsed(),
                },
            };
            reports.push(report);
        }
        for (_, set) in cache.map.drain() {
            self.manager_mut().unprotect(set);
        }
        let _ = self.manager_mut().take_budget();
        PortfolioReport {
            reports,
            subterm_hits: cache.hits,
            subterm_lookups: cache.lookups,
        }
    }

    /// Memoized, governed [`SymbolicContext::sat_set`]: the satisfaction
    /// set of every subterm is cached (and protected) in `cache` for the
    /// duration of one portfolio pass.
    fn sat_set_memo(
        &mut self,
        property: &Property,
        within: Ref,
        cache: &mut SubtermCache,
    ) -> Result<Ref, Interrupt> {
        cache.lookups += 1;
        if let Some(&set) = cache.map.get(property) {
            cache.hits += 1;
            return Ok(set);
        }
        let result = match property {
            Property::Place(p) => {
                let chi = self.place_fn(*p);
                self.manager_mut().try_and(chi, within)?
            }
            Property::True => within,
            Property::False => self.manager().zero(),
            Property::Not(a) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                self.manager_mut().try_diff(within, fa)?
            }
            Property::And(a, b) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                let fb = self.sat_set_memo(b, within, cache)?;
                self.manager_mut().try_and(fa, fb)?
            }
            Property::Or(a, b) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                let fb = self.sat_set_memo(b, within, cache)?;
                self.manager_mut().try_or(fa, fb)?
            }
            Property::Ex(a) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                self.try_ex(fa, within)?
            }
            Property::Ef(a) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                self.try_ef(fa, within)?
            }
            Property::Eg(a) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                self.try_eg(fa, within)?
            }
            Property::Ax(a) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                self.try_ax(fa, within)?
            }
            Property::Af(a) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                self.try_af(fa, within)?
            }
            Property::Ag(a) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                self.try_ag(fa, within)?
            }
            Property::Eu(a, b) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                let fb = self.sat_set_memo(b, within, cache)?;
                self.try_eu(fa, fb, within)?
            }
            Property::Au(a, b) => {
                let fa = self.sat_set_memo(a, within, cache)?;
                let fb = self.sat_set_memo(b, within, cache)?;
                self.try_au(fa, fb, within)?
            }
        };
        self.manager_mut().protect(result);
        cache.map.insert(property.clone(), result);
        Ok(result)
    }

    /// Extracts the trace of a [`CheckReport`], dispatching on the
    /// top-level operator and the verdict. `sat` is the already-computed
    /// satisfaction set of `property`, reused where the trace needs exactly
    /// that fixpoint (the `EG` core, or its complement for failed `AF`).
    fn explain(
        &mut self,
        property: &Property,
        holds: bool,
        sat: Ref,
        reached: Ref,
    ) -> Option<(WitnessTrace, TraceKind)> {
        let zero = self.manager().zero();
        match (holds, property) {
            (true, Property::Ef(a)) => {
                let target = self.sat_set(a, reached);
                Some((self.witness_trace(target)?, TraceKind::Witness))
            }
            (true, Property::Eu(a, b)) => {
                let hold = self.sat_set(a, reached);
                let until = self.sat_set(b, reached);
                Some((self.witness_trace_in(until, hold)?, TraceKind::Witness))
            }
            (true, Property::Ex(a)) => {
                let fa = self.sat_set(a, reached);
                Some((self.one_step_trace(fa)?, TraceKind::Witness))
            }
            (true, Property::Eg(_)) => {
                // `sat` is the EG core itself.
                Some((self.lasso_from_initial(sat)?, TraceKind::Witness))
            }
            (false, Property::Ag(a)) => {
                let fa = self.sat_set(a, reached);
                let bad = self.manager_mut().diff(reached, fa);
                Some((self.witness_trace(bad)?, TraceKind::Counterexample))
            }
            (false, Property::Ax(a)) => {
                let fa = self.sat_set(a, reached);
                let not_fa = self.manager_mut().diff(reached, fa);
                Some((self.one_step_trace(not_fa)?, TraceKind::Counterexample))
            }
            (false, Property::Af(_)) => {
                // AF φ = reached \ EG ¬φ, so the EG ¬φ core is the
                // complement of `sat`.
                let core = self.manager_mut().diff(reached, sat);
                Some((self.lasso_from_initial(core)?, TraceKind::Counterexample))
            }
            (false, Property::Au(a, b)) => {
                // ¬A[a U b] = E[¬b U ¬a∧¬b] ∨ EG ¬b: prefer the finite
                // branch (a ¬b-path into a state violating both), fall back
                // to a ¬b-lasso.
                let fa = self.sat_set(a, reached);
                let fb = self.sat_set(b, reached);
                let not_b = self.manager_mut().diff(reached, fb);
                let not_ab = self.manager_mut().diff(not_b, fa);
                let finite = self.eu(not_b, not_ab, reached);
                let init = self.initial_set();
                let init_in_finite = self.manager_mut().and(init, finite);
                if init_in_finite != zero {
                    Some((
                        self.witness_trace_in(not_ab, not_b)?,
                        TraceKind::Counterexample,
                    ))
                } else {
                    let core = self.eg(not_b, reached);
                    Some((self.lasso_from_initial(core)?, TraceKind::Counterexample))
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{AssignmentStrategy, Encoding};
    use pnsym_net::nets::{dme, figure1, philosophers, DmeStyle};
    use pnsym_net::{PetriNet, PlaceId};
    use pnsym_structural::find_smcs;

    fn dense_ctx(net: &PetriNet) -> SymbolicContext {
        let smcs = find_smcs(net).unwrap();
        SymbolicContext::new(
            net,
            Encoding::improved(net, &smcs, AssignmentStrategy::Gray),
        )
    }

    #[test]
    fn pre_image_inverts_image_on_figure1() {
        let net = figure1();
        for mut ctx in [
            SymbolicContext::new(&net, Encoding::sparse(&net)),
            dense_ctx(&net),
        ] {
            let reached = ctx.reachable_markings().reached;
            for t in net.transitions() {
                let img = ctx.image(reached, t);
                let back = ctx.pre_image(img, t);
                // Every state that fired t is in the pre-image of its image.
                let enabled = ctx.enabling_fn(t);
                let firing_states = ctx.manager_mut().and(reached, enabled);
                let missing = ctx.manager_mut().diff(firing_states, back);
                assert_eq!(missing, ctx.manager().zero());
            }
        }
    }

    #[test]
    fn pre_image_all_unions_the_per_transition_pre_images() {
        let net = philosophers(2);
        for mut ctx in [
            SymbolicContext::new(&net, Encoding::sparse(&net)),
            dense_ctx(&net),
        ] {
            let reached = ctx.reachable_markings().reached;
            let full = ctx.pre_image_all(reached);
            let mut acc = ctx.manager().zero();
            for t in net.transitions() {
                let pre = ctx.pre_image(reached, t);
                acc = ctx.manager_mut().or(acc, pre);
            }
            assert_eq!(full, acc);
            // Cluster pre-images union to the same set.
            let plan = ctx.pre_image_plan();
            let mut by_cluster = ctx.manager().zero();
            for c in 0..plan.num_clusters() {
                let pre = ctx.cluster_pre_image(c, reached);
                by_cluster = ctx.manager_mut().or(by_cluster, pre);
            }
            assert_eq!(full, by_cluster);
        }
    }

    #[test]
    fn mutual_exclusion_is_an_invariant_of_dme() {
        let net = dme(3, DmeStyle::Spec);
        let mut ctx = dense_ctx(&net);
        let cs: Vec<PlaceId> = (0..3)
            .map(|i| net.place_by_name(&format!("critical.{i}")).unwrap())
            .collect();
        // No two cells in the critical section at once.
        for i in 0..3 {
            for j in i + 1..3 {
                let both = Property::place(cs[i]).and(Property::place(cs[j]));
                assert!(!ctx.check_reachable(&both));
                assert!(ctx.check_invariant(&both.not()));
            }
        }
        // Each cell can reach its critical section.
        for &c in &cs {
            assert!(ctx.check_reachable(&Property::place(c)));
        }
    }

    #[test]
    fn ef_and_ag_fixpoints_on_philosophers() {
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let reached = ctx.reachable_markings().reached;
        let eating0 = net.place_by_name("eating.0").unwrap();
        let target = ctx.place_fn(eating0);
        // From the initial marking philosopher 0 can eventually eat.
        let ef = ctx.ef(target, reached);
        let init = ctx.initial_set();
        let init_in_ef = ctx.manager_mut().and(init, ef);
        assert_ne!(init_in_ef, ctx.manager().zero());
        // But it is not inevitable: the deadlock avoids it, so AF(eating.0)
        // does not hold initially.
        let af = ctx.af(target, reached);
        let init_in_af = ctx.manager_mut().and(init, af);
        assert_eq!(init_in_af, ctx.manager().zero());
        // AG(true) is everything.
        let ag_true = ctx.ag(ctx.manager().one(), reached);
        assert_eq!(ag_true, reached);
    }

    #[test]
    fn property_combinators_translate_correctly() {
        let net = figure1();
        let mut ctx = SymbolicContext::new(&net, Encoding::sparse(&net));
        let p2 = net.place_by_name("p2").unwrap();
        let p4 = net.place_by_name("p4").unwrap();
        // p2 and p4 belong to the same SMC: never marked together.
        let both = Property::all_marked(&[p2, p4]);
        assert!(!ctx.check_reachable(&both));
        let either = Property::place(p2).or(Property::place(p4));
        assert!(ctx.check_reachable(&either));
        assert!(!ctx.check_invariant(&either));
        assert!(ctx.check_invariant(&Property::True));
    }

    #[test]
    fn eg_finds_the_deadlock_self_loop_free_states() {
        // In figure1 (deadlock-free, strongly connected behaviour),
        // EG(true) over the reached set is the whole reached set.
        let net = figure1();
        let mut ctx = dense_ctx(&net);
        let reached = ctx.reachable_markings().reached;
        let eg = ctx.eg(ctx.manager().one(), reached);
        assert_eq!(eg, reached);
    }

    #[test]
    fn until_operators_satisfy_the_classical_identities() {
        for net in [figure1(), philosophers(2), dme(3, DmeStyle::Spec)] {
            let mut ctx = dense_ctx(&net);
            let reached = ctx.reachable_markings().reached;
            let target = {
                let p = net.places().next().unwrap();
                let chi = ctx.place_fn(p);
                ctx.manager_mut().and(chi, reached)
            };
            let one = ctx.manager().one();
            // EF p = E[true U p] and AF p = A[true U p].
            let ef = ctx.ef(target, reached);
            let eu = ctx.eu(one, target, reached);
            assert_eq!(ef, eu, "{}: EF = E[true U .]", net.name());
            let af = ctx.af(target, reached);
            let au = ctx.au(one, target, reached);
            assert_eq!(af, au, "{}: AF = A[true U .]", net.name());
        }
    }

    #[test]
    fn au_duality_holds_with_deadlocks() {
        // A[p U q] = ¬(E[¬q U ¬p∧¬q] ∨ EG ¬q) must hold under the vacuous
        // deadlock convention; philosophers(2) has reachable deadlocks, so
        // this exercises the non-total relation case.
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let reached = ctx.reachable_markings().reached;
        let p = {
            let chi = ctx.place_fn(net.place_by_name("idle.0").unwrap());
            ctx.manager_mut().and(chi, reached)
        };
        let q = {
            let chi = ctx.place_fn(net.place_by_name("eating.1").unwrap());
            ctx.manager_mut().and(chi, reached)
        };
        let au = ctx.au(p, q, reached);
        let not_q = ctx.manager_mut().diff(reached, q);
        let not_pq = ctx.manager_mut().diff(not_q, p);
        let finite = ctx.eu(not_q, not_pq, reached);
        let infinite = ctx.eg(not_q, reached);
        let bad = ctx.manager_mut().or(finite, infinite);
        let dual = ctx.manager_mut().diff(reached, bad);
        assert_eq!(au, dual);
    }

    #[test]
    fn ax_is_vacuous_at_deadlocks() {
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let reached = ctx.reachable_markings().reached;
        let dead = ctx.deadlocks_in(reached);
        assert_ne!(dead, ctx.manager().zero());
        // AX false holds exactly at the deadlocked states.
        let ax_false = ctx.ax(ctx.manager().zero(), reached);
        assert_eq!(ax_false, dead);
        // EX true is its complement within the reached set.
        let ex_true = ctx.ex(reached, reached);
        let live = ctx.manager_mut().diff(reached, dead);
        assert_eq!(ex_true, live);
    }

    #[test]
    fn check_property_reports_witnesses_and_counterexamples() {
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);

        // Witness: the deadlock is reachable.
        let deadlock = Property::parse("EF !EX true", &net).unwrap();
        let report = ctx.check_property(&deadlock);
        assert!(report.holds);
        assert_eq!(report.trace_kind, Some(TraceKind::Witness));
        let trace = report.trace.expect("EF witness");
        assert!(trace.validate(&net));
        assert!(net.enabled_transitions(trace.witness()).is_empty());

        // Counterexample: "no one ever holds their left fork" is violated.
        let inv = Property::parse("AG !hasl.0", &net).unwrap();
        let report = ctx.check_property(&inv);
        assert!(!report.holds);
        assert_eq!(report.trace_kind, Some(TraceKind::Counterexample));
        let trace = report.trace.expect("AG counterexample");
        assert!(trace.validate(&net));
        assert!(trace
            .witness()
            .is_marked(net.place_by_name("hasl.0").unwrap()));

        // AF counterexample is a lasso avoiding the target.
        let fated = Property::parse("AF eating.0", &net).unwrap();
        let report = ctx.check_property(&fated);
        assert!(!report.holds);
        let trace = report.trace.expect("AF counterexample");
        assert!(trace.validate(&net));
        assert!(trace.is_lasso().is_some(), "AF counterexample is a lasso");
        let eating0 = net.place_by_name("eating.0").unwrap();
        assert!(trace.markings.iter().all(|m| !m.is_marked(eating0)));

        // EG witness: an infinite run (philosopher 1 eating forever) on
        // which philosopher 0 never eats.
        let spin = Property::parse("EG !eating.0", &net).unwrap();
        let report = ctx.check_property(&spin);
        assert!(report.holds);
        let trace = report.trace.expect("EG witness");
        assert!(trace.validate(&net));
        assert!(trace.is_lasso().is_some());
        assert!(trace.markings.iter().all(|m| !m.is_marked(eating0)));
    }

    #[test]
    fn check_property_eu_and_au_traces() {
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);

        // EU witness stays in the hold set until the target.
        let prop = Property::parse("E[!eating.1 U eating.0]", &net).unwrap();
        let report = ctx.check_property(&prop);
        assert!(report.holds);
        let trace = report.trace.expect("EU witness");
        assert!(trace.validate(&net));
        let eating0 = net.place_by_name("eating.0").unwrap();
        let eating1 = net.place_by_name("eating.1").unwrap();
        assert!(trace.witness().is_marked(eating0));
        for m in &trace.markings[..trace.markings.len() - 1] {
            assert!(!m.is_marked(eating1));
        }

        // AU fails: a path can avoid eating.0 forever (the deadlock); the
        // counterexample is a ¬eating.0 trace.
        let prop = Property::parse("A[true U eating.0]", &net).unwrap();
        let report = ctx.check_property(&prop);
        assert!(!report.holds);
        let trace = report.trace.expect("AU counterexample");
        assert!(trace.validate(&net));
        assert!(trace.markings.iter().all(|m| !m.is_marked(eating0)));
    }

    #[test]
    fn trace_extraction_keeps_protections_balanced_across_queries() {
        // `check_property` legitimately adds exactly one protection per
        // call: the freshly computed reached set, which stays valid for the
        // context's lifetime. Anything beyond that is a leak in the
        // witness/counterexample machinery (ring search, one-step evidence
        // or lasso walk).
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        // Warm the image and pre-image plans so their one-time artefact
        // protections do not show up in the per-query delta.
        let _ = ctx.check_property(&Property::parse("EF true", &net).unwrap());
        for text in [
            "EF !EX true",             // ring-search witness
            "AG !hasl.0",              // ring-search counterexample
            "AF eating.0",             // lasso counterexample
            "EG !eating.0",            // lasso witness
            "E[!eating.1 U eating.0]", // constrained-ring EU witness
            "A[true U eating.0]",      // AU counterexample (finite branch)
            "EX true",                 // one-step witness
            "AX !true",                // one-step counterexample
        ] {
            let prop = Property::parse(text, &net).unwrap();
            let before = ctx.manager().protected_root_count();
            let _ = ctx.check_property(&prop);
            assert_eq!(
                ctx.manager().protected_root_count(),
                before + 1,
                "{text}: only the reached set may stay protected after a query"
            );
        }
        // The lasso extractor is individually balanced as well.
        let reached = ctx.reachable_markings().reached;
        let eating0 = ctx.place_fn(net.place_by_name("eating.0").unwrap());
        let avoid = ctx.manager_mut().diff(reached, eating0);
        let eg = ctx.eg(avoid, reached);
        let lasso =
            crate::trace::assert_protections_balanced(&mut ctx, |ctx| ctx.lasso_from_initial(eg));
        let lasso = lasso.expect("EG !eating.0 holds initially");
        assert!(lasso.is_lasso().is_some());
    }

    #[test]
    fn truncated_reachability_is_surfaced_on_the_report() {
        // Regression: a traversal capped by `max_iterations` explores only
        // a prefix of the state space, so a verdict over it is not
        // definitive. The report used to drop that flag on the floor and
        // present the prefix verdict as final.
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let prop = Property::parse("AG !hasl.0", &net).unwrap();
        let options = TraversalOptions {
            max_iterations: Some(1),
            ..TraversalOptions::default()
        };
        let capped = ctx.check_property_with(&prop, options);
        assert_eq!(
            capped.truncated,
            Some(TruncationReason::Iterations),
            "a capped traversal must flag its verdict as non-definitive"
        );
        let full = ctx.check_property(&prop);
        assert!(full.truncated.is_none());
        assert!(!full.holds);
        assert!(
            capped.reached_markings < full.reached_markings,
            "the capped run really did truncate the state space"
        );
    }

    #[test]
    fn portfolio_pass_caches_shared_subterms() {
        // Regression for the portfolio-of-check_property pattern: the
        // mutual-exclusion core `eating.0 & eating.1` appears under both an
        // `AG !(...)` invariant and an `EF (...)` reachability query, and
        // used to be recomputed from scratch by every call. The portfolio
        // pass must answer the shared subterms (the conjunction and its two
        // place leaves) from the cache.
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let texts = [
            "AG !(eating.0 & eating.1)",
            "EF (eating.0 & eating.1)",
            "AG !(eating.0 & eating.1)",
        ];
        let props: Vec<Property> = texts
            .iter()
            .map(|t| Property::parse(t, &net).unwrap())
            .collect();
        let portfolio = ctx.check_portfolio(&props);
        assert_eq!(portfolio.reports.len(), 3);
        // A hit short-circuits the whole shared subtree: the first formula
        // walks all 5 of its nodes cold, the second hits on the shared
        // conjunction (1 hit, and its place leaves are never re-visited),
        // and the third hits on its root.
        assert_eq!(
            (portfolio.subterm_hits, portfolio.subterm_lookups),
            (2, 8),
            "shared subterms must be answered from the cache"
        );

        // Verdicts, counts and traces are bit-identical to the uncached
        // per-property path.
        for (text, report) in texts.iter().zip(&portfolio.reports) {
            let prop = Property::parse(text, &net).unwrap();
            let direct = ctx.check_property(&prop);
            assert_eq!(report.holds, direct.holds, "{text}");
            assert_eq!(report.sat_markings, direct.sat_markings, "{text}");
            assert_eq!(report.reached_markings, direct.reached_markings, "{text}");
            assert_eq!(report.trace_kind, direct.trace_kind, "{text}");
            assert_eq!(
                report.trace.as_ref().map(|t| t.len()),
                direct.trace.as_ref().map(|t| t.len()),
                "{text}"
            );
            if let Some(trace) = &report.trace {
                assert!(trace.validate(&net), "{text}");
            }
        }
    }

    #[test]
    fn portfolio_pass_keeps_protections_balanced() {
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let props: Vec<Property> = [
            "AG !(eating.0 & eating.1)",
            "EF !EX true",
            "A[true U eating.0]",
        ]
        .iter()
        .map(|t| Property::parse(t, &net).unwrap())
        .collect();
        // Warm the plans so their one-time protections don't show up.
        let _ = ctx.check_property(&props[1]);
        // A cold portfolio pass protects exactly the fresh reached set.
        let before = ctx.manager().protected_root_count();
        let _ = ctx.check_portfolio(&props);
        assert_eq!(ctx.manager().protected_root_count(), before + 1);
        // A warm pass over an existing reachability result protects nothing.
        let run = ctx.reachable_markings();
        let before = ctx.manager().protected_root_count();
        let _ = ctx.check_portfolio_on(&props, &run, TraversalOptions::default());
        assert_eq!(
            ctx.manager().protected_root_count(),
            before,
            "the subterm cache must drain its protections"
        );
    }

    #[test]
    fn governed_portfolio_degrades_to_typed_verdicts() {
        let net = philosophers(2);
        let mut ctx = dense_ctx(&net);
        let props: Vec<Property> = ["EF eating.0", "AG !(eating.0 & eating.1)"]
            .iter()
            .map(|t| Property::parse(t, &net).unwrap())
            .collect();
        let governed = TraversalOptions {
            time_budget: Some(Duration::ZERO), // already expired: trips at once
            ..TraversalOptions::default()
        };
        let portfolio = ctx.check_portfolio_with(&props, governed);
        for report in &portfolio.reports {
            assert_eq!(
                report.truncated,
                Some(TruncationReason::Deadline),
                "an expired budget degrades every verdict to a typed reason"
            );
        }
        // The budget is disarmed on return: the same context completes an
        // ungoverned pass with definitive verdicts.
        let full = ctx.check_portfolio(&props);
        assert!(full.reports.iter().all(|r| r.truncated.is_none()));
        assert!(full.reports[0].holds);
        assert!(full.reports[1].holds);
    }
}
